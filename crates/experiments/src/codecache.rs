//! `codecache_study` — capacity, sharing, and tiering behavior of the
//! managed code cache (`jrt-codecache`).
//!
//! The paper's code cache is append-only: Section 3 notes the JIT's
//! memory overhead (Table 1) *is* the code cache plus translator, and
//! Figure 1 prices translation against reuse. This study asks the
//! follow-on questions a managed cache raises:
//!
//! * **Capacity** — sweep the cache to 1/2, 1/4, and 1/8 of each
//!   benchmark's bytes-ever-translated under three eviction policies.
//!   Evicted methods fall back to interpretation until re-translated,
//!   so the re-translation overhead appears directly in the
//!   Translate-phase instruction counts.
//! * **Sharing** — ShareJIT-style content-addressed install-once
//!   dedup ([`CacheScope::Shared`]) versus one cache per green thread
//!   ([`CacheScope::PerThread`]) and the default per-VM cache, on the
//!   two multithreaded workloads (`mtrt` and the four-context `multi`
//!   harness).
//! * **Tiering** — translate-on-first-invocation versus a two-tier
//!   policy (cheap baseline tier, hot methods re-translated at a
//!   denser optimizing tier), the HotSpot-style refinement of
//!   Figure 1's when-to-translate question.
//! * **Crossover** — at a pathologically small cache the extra
//!   re-translation work exceeds everything the paper's `opt` oracle
//!   can save, bounding how small a real cache may be provisioned.
//!
//! [`CacheScope::Shared`]: jrt_vm::CacheScope::Shared
//! [`CacheScope::PerThread`]: jrt_vm::CacheScope::PerThread

use crate::jobs::{self, Workload};
use crate::report::verdict;
use crate::runner::Mode;
use crate::table::{count, Table};
use crate::tape;
use jrt_cache::SplitCaches;
use jrt_trace::{CountingSink, FanoutSink, Phase, Region};
use jrt_vm::{CacheScope, CodeCacheConfig, EvictionPolicy, ExecMode, JitPolicy, Vm, VmConfig};
use jrt_workloads::{multi, suite, Size, Spec};

/// Benchmarks swept by the capacity and tiering studies: the paper's
/// translation-heavy (`db`, `javac`), execution-heavy (`compress`),
/// and multithreaded (`mtrt`) representatives.
pub const SWEEP: [&str; 4] = ["compress", "db", "javac", "mtrt"];

/// The tiered policy under study: translate on first invocation at
/// the baseline tier, recompile at the optimizing tier once a
/// method's hotness score reaches 32.
pub const TIERED: JitPolicy = JitPolicy::Tiered { t1: 1, t2: 32 };

/// The capacity fractions swept (denominators of bytes-ever-translated).
const FRACTIONS: [(u64, &str); 3] = [(2, "1/2"), (4, "1/4"), (8, "1/8")];

/// The pathologically small absolute capacity. 384 bytes sits below
/// every swept benchmark's largest method (pinning those methods
/// uncacheable — they interpret for the whole run) *and* below the
/// per-phase working set of small hot methods, which then evict each
/// other and re-translate on re-invocation: both thrash mechanisms at
/// once.
pub const PATHOLOGICAL_CAPACITY: u64 = 384;
const PATHOLOGICAL_LABEL: &str = "384B";

/// Capacity points per (benchmark, policy): the three fractions plus
/// the pathological absolute point.
const POINTS_PER_POLICY: usize = FRACTIONS.len() + 1;

/// The `multi` harness as a [`Spec`] (it lives outside the SpecJVM98
/// suite).
pub fn multi_spec() -> Spec {
    Spec {
        name: "multi",
        build: multi::program,
        expected: multi::expected,
        multithreaded: true,
    }
}

/// Everything one measured run yields.
#[derive(Debug, Clone, Copy)]
struct Measured {
    total: u64,
    translate: u64,
    cc_write_misses: u64,
    translations: u32,
    retranslations: u64,
    evictions: u64,
    tier2: u32,
    live_bytes: u64,
    ever_bytes: u64,
    largest_bytes: u64,
}

/// Direct VM run under `cfg` with instruction counts and the paper's
/// L1 caches attached.
fn run_cfg(w: &Workload, cfg: VmConfig) -> Measured {
    let mut counts = CountingSink::new();
    let mut caches = SplitCaches::paper_l1();
    let result = {
        let mut fan = FanoutSink::new().with(&mut counts).with(&mut caches);
        Vm::new(&w.program, cfg)
            .run(&mut fan)
            .expect("workload runs clean")
    };
    w.check(&result);
    let (_i, d) = caches.into_inner();
    Measured {
        total: counts.total(),
        translate: counts.phase(Phase::Translate),
        cc_write_misses: d.region_stats(Region::CodeCache).write_misses,
        translations: result.counters.methods_translated,
        retranslations: result.counters.retranslations,
        evictions: result.counters.code_evictions,
        tier2: result.counters.tier2_recompiles,
        live_bytes: result.footprint.code_cache_bytes,
        ever_bytes: result.footprint.code_ever_bytes,
        largest_bytes: result.counters.largest_method_bytes,
    }
}

/// The unbounded baseline, served from the tape cache (no extra VM
/// run); the cache counters ride along on a replay.
fn baseline(w: &Workload, mode: Mode) -> Measured {
    let mut caches = SplitCaches::paper_l1();
    let e = tape::replay(w, mode, &mut caches);
    let (_i, d) = caches.into_inner();
    Measured {
        total: e.counts.total(),
        translate: e.counts.phase(Phase::Translate),
        cc_write_misses: d.region_stats(Region::CodeCache).write_misses,
        translations: e.result.counters.methods_translated,
        retranslations: e.result.counters.retranslations,
        evictions: e.result.counters.code_evictions,
        tier2: e.result.counters.tier2_recompiles,
        live_bytes: e.result.footprint.code_cache_bytes,
        ever_bytes: e.result.footprint.code_ever_bytes,
        largest_bytes: e.result.counters.largest_method_bytes,
    }
}

/// One row of the capacity sweep.
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Eviction policy label.
    pub policy: &'static str,
    /// Capacity label ("unbounded", "1/2", "1/4", "1/8").
    pub cap: &'static str,
    /// Total trace instructions.
    pub total: u64,
    /// Translate-phase trace instructions.
    pub translate: u64,
    /// Methods translated (including re-translations).
    pub translations: u32,
    /// Translations of previously evicted methods.
    pub retranslations: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Live arena occupancy at exit.
    pub live_bytes: u64,
    /// Bytes ever translated.
    pub ever_bytes: u64,
    /// Code-cache-region write misses in the paper's L1 D-cache.
    pub cc_write_misses: u64,
}

/// One row of the sharing comparison.
#[derive(Debug, Clone)]
pub struct SharingRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Scope label ("private", "per-vm", "shared").
    pub scope: &'static str,
    /// Total trace instructions.
    pub total: u64,
    /// Translate-phase trace instructions.
    pub translate: u64,
    /// Methods translated.
    pub translations: u32,
    /// Code-cache-region write misses.
    pub cc_write_misses: u64,
}

/// One row of the tiering comparison.
#[derive(Debug, Clone)]
pub struct TieringRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Mode label ("jit", "tiered").
    pub mode: &'static str,
    /// Total trace instructions.
    pub total: u64,
    /// Translate-phase trace instructions.
    pub translate: u64,
    /// Methods translated (tier upgrades included).
    pub translations: u32,
    /// Optimizing-tier recompiles.
    pub tier2: u32,
    /// Bytes ever translated.
    pub ever_bytes: u64,
}

/// One benchmark's thrash-vs-oracle crossover.
#[derive(Debug, Clone)]
pub struct CrossoverRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Extra instructions at the pathological 384 B capacity (LRU)
    /// over unbounded.
    pub thrash_extra: i64,
    /// Instructions the `opt` oracle saves over plain JIT.
    pub oracle_saving: i64,
}

/// The full study.
#[derive(Debug, Clone)]
pub struct CodeCacheStudy {
    /// Capacity sweep rows, benchmark-major then policy then fraction.
    pub capacity: Vec<CapacityRow>,
    /// Sharing rows, benchmark-major in scope order private → per-vm
    /// → shared.
    pub sharing: Vec<SharingRow>,
    /// Tiering rows, benchmark-major in mode order jit → tiered.
    pub tiering: Vec<TieringRow>,
    /// Crossover rows, one per swept benchmark.
    pub crossover: Vec<CrossoverRow>,
    /// The largest single translated method across the sweep — the
    /// size the pathological capacity deliberately undercuts.
    pub largest_method_bytes: u64,
}

fn sweep_specs() -> Vec<Spec> {
    suite()
        .into_iter()
        .filter(|s| SWEEP.contains(&s.name))
        .collect()
}

fn capacity_rows(loads: &[Workload]) -> (Vec<CapacityRow>, u64) {
    // The bounded runs need each benchmark's bytes-ever-translated to
    // size the cache, so the unbounded baselines come first (they are
    // tape replays — cheap and already parallel underneath).
    let bases = jobs::par_map(loads, |w| baseline(w, Mode::Jit));
    let largest = bases.iter().map(|b| b.largest_bytes).max().unwrap_or(0);

    #[derive(Clone)]
    struct Job {
        w: Workload,
        policy: EvictionPolicy,
        cap_label: &'static str,
        capacity: u64,
    }
    let mut jobs_list = Vec::new();
    for (w, base) in loads.iter().zip(&bases) {
        for policy in [
            EvictionPolicy::Lru,
            EvictionPolicy::SizeWeightedLru,
            EvictionPolicy::HotnessDecay,
        ] {
            for (den, label) in FRACTIONS {
                jobs_list.push(Job {
                    w: w.clone(),
                    policy,
                    cap_label: label,
                    capacity: (base.ever_bytes / den).max(1),
                });
            }
            jobs_list.push(Job {
                w: w.clone(),
                policy,
                cap_label: PATHOLOGICAL_LABEL,
                capacity: PATHOLOGICAL_CAPACITY,
            });
        }
    }
    let bounded = jobs::par_map(&jobs_list, |j| {
        let cfg = VmConfig::jit().with_code_cache(CodeCacheConfig::bounded(j.capacity, j.policy));
        run_cfg(&j.w, cfg)
    });

    let mut rows = Vec::new();
    let mut it = jobs_list.iter().zip(bounded);
    for (w, base) in loads.iter().zip(&bases) {
        rows.push(CapacityRow {
            name: w.spec.name,
            policy: EvictionPolicy::Unbounded.label(),
            cap: "unbounded",
            total: base.total,
            translate: base.translate,
            translations: base.translations,
            retranslations: base.retranslations,
            evictions: base.evictions,
            live_bytes: base.live_bytes,
            ever_bytes: base.ever_bytes,
            cc_write_misses: base.cc_write_misses,
        });
        for _ in 0..(3 * POINTS_PER_POLICY) {
            let (j, m) = it.next().expect("job per (bench, policy, fraction)");
            rows.push(CapacityRow {
                name: j.w.spec.name,
                policy: j.policy.label(),
                cap: j.cap_label,
                total: m.total,
                translate: m.translate,
                translations: m.translations,
                retranslations: m.retranslations,
                evictions: m.evictions,
                live_bytes: m.live_bytes,
                ever_bytes: m.ever_bytes,
                cc_write_misses: m.cc_write_misses,
            });
        }
    }
    (rows, largest)
}

fn sharing_rows(size: Size) -> Vec<SharingRow> {
    let mtrt = suite()
        .into_iter()
        .find(|s| s.name == "mtrt")
        .expect("mtrt");
    let loads = jobs::prebuild(vec![mtrt, multi_spec()], size);
    let scopes = [CacheScope::PerThread, CacheScope::PerVm, CacheScope::Shared];
    let cells = jobs::cross(&loads, &scopes);
    let measured = jobs::par_map(&cells, |(w, scope)| {
        let cfg = VmConfig::jit().with_code_cache(CodeCacheConfig::default().with_scope(*scope));
        run_cfg(w, cfg)
    });
    cells
        .iter()
        .zip(measured)
        .map(|((w, scope), m)| SharingRow {
            name: w.spec.name,
            scope: scope.label(),
            total: m.total,
            translate: m.translate,
            translations: m.translations,
            cc_write_misses: m.cc_write_misses,
        })
        .collect()
}

fn tiering_rows(loads: &[Workload]) -> Vec<TieringRow> {
    let modes: [&'static str; 2] = ["jit", "tiered"];
    let cells = jobs::cross(loads, &modes);
    let measured = jobs::par_map(&cells, |(w, mode)| match *mode {
        "jit" => baseline(w, Mode::Jit),
        _ => run_cfg(
            w,
            VmConfig {
                mode: ExecMode::Jit(TIERED),
                ..VmConfig::default()
            },
        ),
    });
    cells
        .iter()
        .zip(measured)
        .map(|((w, mode), m)| TieringRow {
            name: w.spec.name,
            mode,
            total: m.total,
            translate: m.translate,
            translations: m.translations,
            tier2: m.tier2,
            ever_bytes: m.ever_bytes,
        })
        .collect()
}

fn crossover_rows(loads: &[Workload], capacity: &[CapacityRow]) -> Vec<CrossoverRow> {
    let opts = jobs::par_map(loads, |w| baseline(w, Mode::Opt));
    loads
        .iter()
        .zip(&opts)
        .map(|(w, opt)| {
            let name = w.spec.name;
            let find = |policy: &str, cap: &str| {
                capacity
                    .iter()
                    .find(|r| r.name == name && r.policy == policy && r.cap == cap)
                    .expect("capacity row present")
            };
            let unbounded = find("unbounded", "unbounded");
            let thrash = find(EvictionPolicy::Lru.label(), PATHOLOGICAL_LABEL);
            let jit = unbounded.total as i64;
            CrossoverRow {
                name,
                thrash_extra: thrash.total as i64 - jit,
                oracle_saving: jit - opt.total as i64,
            }
        })
        .collect()
}

/// Runs the full study at `size`.
pub fn run(size: Size) -> CodeCacheStudy {
    let loads = jobs::prebuild(sweep_specs(), size);
    let (capacity, largest_method_bytes) = capacity_rows(&loads);
    let crossover = crossover_rows(&loads, &capacity);
    CodeCacheStudy {
        crossover,
        sharing: sharing_rows(size),
        tiering: tiering_rows(&loads),
        capacity,
        largest_method_bytes,
    }
}

impl CodeCacheStudy {
    /// Renders the capacity-sweep table.
    pub fn capacity_table(&self) -> Table {
        let mut t = Table::new(
            "Code cache capacity sweep (capacity as a fraction of bytes ever translated)",
            &[
                "benchmark",
                "policy",
                "capacity",
                "total insts",
                "translate insts",
                "translations",
                "re-translations",
                "evictions",
                "live bytes",
                "CC write misses",
            ],
        );
        for r in &self.capacity {
            t.row(vec![
                r.name.into(),
                r.policy.into(),
                r.cap.into(),
                count(r.total),
                count(r.translate),
                count(u64::from(r.translations)),
                count(r.retranslations),
                count(r.evictions),
                count(r.live_bytes),
                count(r.cc_write_misses),
            ]);
        }
        t
    }

    /// Renders the sharing table.
    pub fn sharing_table(&self) -> Table {
        let mut t = Table::new(
            "Shared vs private code cache (multithreaded workloads, unbounded capacity)",
            &[
                "benchmark",
                "scope",
                "total insts",
                "translate insts",
                "translations",
                "CC write misses",
            ],
        );
        for r in &self.sharing {
            t.row(vec![
                r.name.into(),
                r.scope.into(),
                count(r.total),
                count(r.translate),
                count(u64::from(r.translations)),
                count(r.cc_write_misses),
            ]);
        }
        t
    }

    /// Renders the tiering table.
    pub fn tiering_table(&self) -> Table {
        let mut t = Table::new(
            "Tiered recompilation vs translate-on-first-invocation",
            &[
                "benchmark",
                "mode",
                "total insts",
                "translate insts",
                "translations",
                "tier-2 recompiles",
                "code bytes",
            ],
        );
        for r in &self.tiering {
            t.row(vec![
                r.name.into(),
                r.mode.into(),
                count(r.total),
                count(r.translate),
                count(u64::from(r.translations)),
                count(u64::from(r.tier2)),
                count(r.ever_bytes),
            ]);
        }
        t
    }

    /// Renders the crossover table.
    pub fn crossover_table(&self) -> Table {
        let mut t = Table::new(
            "Thrash crossover: overhead of the pathological 384 B cache (LRU) vs the opt oracle's savings",
            &["benchmark", "thrash extra insts", "oracle saving insts"],
        );
        for r in &self.crossover {
            t.row(vec![
                r.name.into(),
                count(r.thrash_extra.max(0) as u64),
                count(r.oracle_saving.max(0) as u64),
            ]);
        }
        t
    }

    /// Whether every swept benchmark's thrash overhead at the
    /// pathological capacity exceeds its oracle saving. Holds from
    /// `s1` upward; at `tiny` the translation-dominated `db` run has
    /// too little execution volume to cross.
    pub fn thrash_exceeds_oracle(&self) -> bool {
        self.crossover
            .iter()
            .all(|r| r.thrash_extra > r.oracle_saving)
    }

    /// Renders the full study as the `EXPERIMENTS.md` section (also
    /// the `codecache_study` binary's output).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "## Managed code cache — capacity, sharing, tiering\n");
        let _ = writeln!(
            w,
            "*Paper:* the code cache is append-only; its size (plus the \
             translator) is the JIT's entire memory overhead (Table 1), and \
             Figure 1 shows translation cost must be won back by reuse. This \
             study manages that cache: bounded capacity with eviction (evicted \
             methods fall back to interpretation until re-translated), \
             ShareJIT-style content-addressed sharing across threads, and \
             HotSpot-style tiered recompilation.\n"
        );
        let _ = writeln!(w, "{}", self.capacity_table().to_markdown());
        let worst = self
            .capacity
            .iter()
            .filter(|r| r.cap == PATHOLOGICAL_LABEL)
            .map(|r| r.retranslations)
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            w,
            "*Measured:* bounded caches hold live occupancy at or under the \
             budget. At the fractional capacities eviction lands on one-shot \
             (class-loading) methods and on long-running frames that demote \
             to interpretation — LRU keeps the small actively re-invoked set \
             resident, so translations do not repeat. The pathological 384 B \
             point undercuts even the largest single method ({} bytes here), \
             pinning it to interpretation, and squeezes the surviving hot \
             methods into evicting each other — up to {} re-translations. \
             Both are costs the paper's append-only design never pays.\n",
            count(self.largest_method_bytes),
            count(worst)
        );
        let _ = writeln!(w, "{}", self.sharing_table().to_markdown());
        let _ = writeln!(
            w,
            "*Measured:* the shared cache does strictly less Translate-phase \
             work and takes fewer code-cache write misses than per-thread \
             private caches on both multithreaded workloads — {}.\n",
            verdict(self.shared_beats_private())
        );
        let _ = writeln!(w, "{}", self.tiering_table().to_markdown());
        let _ = writeln!(w, "{}", self.crossover_table().to_markdown());
        let _ = writeln!(
            w,
            "*Measured:* at the pathological capacity the combined \
             re-translation and interpretation-fallback overhead exceeds \
             everything the paper's `opt` oracle can save on every swept \
             benchmark — {}. (Translation-dominated `db` needs real \
             execution volume for the fallback cost to overtake the oracle, \
             so its crossover appears from `s1` upward.) A managed cache \
             must be provisioned above the thrash crossover or the \
             when-to-translate question stops mattering.\n",
            verdict(self.thrash_exceeds_oracle())
        );
        out
    }

    /// Whether the shared cache strictly beats the per-thread private
    /// caches on translate work and code-cache write misses for every
    /// sharing benchmark.
    pub fn shared_beats_private(&self) -> bool {
        let find = |name: &str, scope: &str| {
            self.sharing
                .iter()
                .find(|r| r.name == name && r.scope == scope)
                .expect("sharing row present")
        };
        ["mtrt", "multi"].iter().all(|name| {
            let private = find(name, CacheScope::PerThread.label());
            let shared = find(name, CacheScope::Shared.label());
            shared.translate < private.translate && shared.cc_write_misses < private.cc_write_misses
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_holds_at_tiny() {
        let s = run(Size::Tiny);
        assert_eq!(s.capacity.len(), SWEEP.len() * (1 + 3 * POINTS_PER_POLICY));
        assert_eq!(s.sharing.len(), 6);
        assert_eq!(s.tiering.len(), SWEEP.len() * 2);
        assert_eq!(s.crossover.len(), SWEEP.len());

        // Fractional capacities evict; LRU keeps the small hot set
        // resident, so the cost is demoted-frame interpretation
        // rather than repeated translation.
        for r in s.capacity.iter().filter(|r| r.cap == "1/8") {
            assert!(r.evictions > 0, "{}/{}: no evictions", r.name, r.policy);
            assert!(r.live_bytes <= r.ever_bytes);
        }
        // The pathological 384 B cache thrashes. On compress/db/javac
        // the surviving small hot methods evict each other and
        // re-translate; mtrt's hot methods all exceed the capacity,
        // so its cost is pinned interpretation (zero re-translations).
        for r in s.capacity.iter().filter(|r| r.cap == PATHOLOGICAL_LABEL) {
            assert!(r.live_bytes <= PATHOLOGICAL_CAPACITY);
            if r.name != "mtrt" {
                assert!(
                    r.retranslations > 0,
                    "{}/{}: no re-translations",
                    r.name,
                    r.policy
                );
            }
        }

        // ISSUE acceptance: shared strictly beats per-thread private.
        assert!(s.shared_beats_private());
        // Thrash crossover: execution-heavy benchmarks cross already
        // at tiny; translation-dominated db crosses once execution
        // volume scales (s1 and up, where EXPERIMENTS.md reports the
        // full verdict), so it is exempt here.
        for r in &s.crossover {
            if r.name != "db" {
                assert!(
                    r.thrash_extra > r.oracle_saving,
                    "{}: thrash {} did not exceed oracle saving {}",
                    r.name,
                    r.thrash_extra,
                    r.oracle_saving
                );
            }
        }
    }
}
