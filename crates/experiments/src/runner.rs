//! Shared experiment plumbing: modes, oracle derivation, runs.

use jrt_bytecode::Program;
use jrt_trace::{CountingSink, TraceSink};
use jrt_vm::{OracleDecisions, RunResult, SyncKind, Vm, VmConfig};
use jrt_workloads::{Size, Spec};

/// Execution mode of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Pure interpretation.
    Interp,
    /// Translate on first invocation (Kaffe default).
    Jit,
    /// The paper's per-method oracle ("opt").
    Opt,
}

impl Mode {
    /// The two modes compared throughout Section 4.
    pub const BOTH: [Mode; 2] = [Mode::Interp, Mode::Jit];

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Interp => "interp",
            Mode::Jit => "jit",
            Mode::Opt => "opt",
        }
    }
}

/// Derives the paper's oracle for `program` by profiling one
/// interpreter run and one JIT run.
pub fn derive_oracle(program: &Program) -> OracleDecisions {
    let interp = Vm::new(program, VmConfig::interpreter())
        .run(&mut CountingSink::new())
        .expect("profiling run (interp)");
    let jit = Vm::new(program, VmConfig::jit())
        .run(&mut CountingSink::new())
        .expect("profiling run (jit)");
    OracleDecisions::from_profiles(&interp.profile, &jit.profile)
}

/// Runs `program` under `mode`, streaming into `sink`.
///
/// # Panics
///
/// Panics if the program faults — workloads are self-checking and
/// must not fail.
pub fn run_mode(program: &Program, mode: Mode, sink: &mut impl TraceSink) -> RunResult {
    let cfg = match mode {
        Mode::Interp => VmConfig::interpreter(),
        Mode::Jit => VmConfig::jit(),
        Mode::Opt => VmConfig::oracle(derive_oracle(program)),
    };
    Vm::new(program, cfg)
        .run(sink)
        .expect("workload runs clean")
}

/// Runs `program` under `mode` with an explicit monitor scheme.
///
/// For [`Mode::Opt`] the caller should pass a pre-derived `oracle`
/// (e.g. from [`crate::tape::oracle`]); with `None` the oracle is
/// re-derived here at the cost of two extra profiling runs.
pub fn run_mode_sync(
    program: &Program,
    mode: Mode,
    sync: SyncKind,
    oracle: Option<&OracleDecisions>,
    sink: &mut impl TraceSink,
) -> RunResult {
    let cfg = match mode {
        Mode::Interp => VmConfig::interpreter(),
        Mode::Jit => VmConfig::jit(),
        Mode::Opt => match oracle {
            Some(o) => VmConfig::oracle(o.clone()),
            None => VmConfig::oracle(derive_oracle(program)),
        },
    }
    .with_sync(sync);
    Vm::new(program, cfg)
        .run(sink)
        .expect("workload runs clean")
}

/// Verifies the run returned the workload's expected checksum.
pub fn check(spec: &Spec, size: Size, result: &RunResult) {
    assert_eq!(
        result.exit_value,
        Some((spec.expected)(size)),
        "{} checksum mismatch in {} mode",
        spec.name,
        result.mode
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_workloads::hello;

    #[test]
    fn all_three_modes_agree_on_hello() {
        let p = hello::program(Size::Tiny);
        for mode in [Mode::Interp, Mode::Jit, Mode::Opt] {
            let r = run_mode(&p, mode, &mut CountingSink::new());
            assert_eq!(r.exit_value, Some(hello::expected(Size::Tiny)), "{mode:?}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Mode::Interp.label(), "interp");
        assert_eq!(Mode::Jit.label(), "jit");
        assert_eq!(Mode::Opt.label(), "opt");
    }
}
