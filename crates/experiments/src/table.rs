//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table with a title.
///
/// # Examples
///
/// ```
/// use jrt_experiments::Table;
///
/// let mut t = Table::new("demo", &["name", "value"]);
/// t.row(vec!["x".into(), "1".into()]);
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains("x"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table (for
    /// EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("**{}**\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let rendered: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "  {}", rendered.join("  "))
        };
        line(f, &self.headers)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("== t =="));
        assert!(s.contains("xxxxx"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(count(1234567), "1,234,567");
        assert_eq!(count(42), "42");
    }
}
