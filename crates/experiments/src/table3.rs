//! Table 3 — L1 cache references and misses per benchmark and mode.
//!
//! The paper's configuration: 64 KB caches, 32-byte lines, 2-way
//! I-cache, 4-way D-cache. Headline observations: interpreter I-cache
//! hit rates above 99.9% (the `switch` body fits in cache); the JIT's
//! I-cache behaves worse (method footprints); the JIT's D-cache sees
//! far fewer references (registers replace the operand stack) but
//! *more* misses (code generation/installation write misses).

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{count, pct, Table};
use crate::tape;
use jrt_cache::{CacheConfig, CacheStats, SplitSweep};
use jrt_workloads::{suite, Size};

/// One benchmark × mode row.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Execution mode.
    pub mode: Mode,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
}

/// The full Table 3 result.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows: per benchmark, interp then jit.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 3: cache performance (64K/32B, I 2-way, D 4-way)",
            &[
                "benchmark",
                "mode",
                "I-refs",
                "I-misses",
                "I-miss%",
                "D-refs",
                "D-misses",
                "D-miss%",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                r.mode.label().into(),
                count(r.icache.refs()),
                count(r.icache.misses()),
                pct(r.icache.miss_rate()),
                count(r.dcache.refs()),
                count(r.dcache.misses()),
                pct(r.dcache.miss_rate()),
            ]);
        }
        t
    }

    /// Finds a row.
    pub fn get(&self, name: &str, mode: Mode) -> Option<&Table3Row> {
        self.rows.iter().find(|r| r.name == name && r.mode == mode)
    }
}

fn run_one(w: &Workload, mode: Mode) -> Table3Row {
    let mut sweep = SplitSweep::new(
        &[CacheConfig::paper_l1_inst()],
        &[CacheConfig::paper_l1_data()],
    );
    tape::for_each_block(w, mode, |b| sweep.consume_block(b));
    Table3Row {
        name: w.spec.name,
        mode,
        icache: *sweep.icache().results()[0].stats(),
        dcache: *sweep.dcache().results()[0].stats(),
    }
}

/// Runs the Table 3 experiment, one job per benchmark × mode.
pub fn run(size: Size) -> Table3 {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    Table3 {
        rows: jobs::par_map(&work, |(w, mode)| run_one(w, *mode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_shape_matches_paper() {
        let t = run(Size::Tiny);
        assert_eq!(t.rows.len(), 14);
        for spec in suite() {
            let i = t.get(spec.name, Mode::Interp).unwrap();
            let j = t.get(spec.name, Mode::Jit).unwrap();
            // JIT D-refs are a fraction of interpreter D-refs
            // (paper band 10%-80% at s1; at Tiny the translator's own
            // data traffic keeps the ratio near the top).
            let dref_ratio = j.dcache.refs() as f64 / i.dcache.refs() as f64;
            assert!(
                dref_ratio < 1.0,
                "{}: JIT D-refs should shrink, ratio {dref_ratio}",
                spec.name
            );
            // Interpreter I-cache locality is excellent.
            assert!(
                i.icache.miss_rate() < 0.01,
                "{}: interp I-miss {}",
                spec.name,
                i.icache.miss_rate()
            );
            // JIT D-miss *rate* exceeds interp's (fewer refs, write
            // misses from installation).
            assert!(
                j.dcache.miss_rate() > i.dcache.miss_rate(),
                "{}: jit D-miss-rate {} vs interp {}",
                spec.name,
                j.dcache.miss_rate(),
                i.dcache.miss_rate()
            );
        }
    }
}
