//! Generational-GC study — collection behavior of allocation-heavy
//! workloads under the copying collector.
//!
//! The paper's heap studies treat the collector as part of the
//! runtime's architectural footprint: barrier instructions ride the
//! execution stream and collection work has its own locality. This
//! study measures exactly that on the three allocation-heavy
//! workloads ([`jrt_workloads::gc_suite`]):
//!
//! * **collection counts** — minor (nursery evacuation) and major
//!   (copying compaction) collections under the study nursery;
//! * **survival** — bytes the collector copied as a share of bytes
//!   the program allocated (the weak-generational-hypothesis check:
//!   churny workloads should stay in single digits);
//! * **barrier overhead** — card-marking write-barrier instructions
//!   per 1,000 executed bytecodes (the mutator's steady-state tax);
//! * **cache attribution** — simulated paper-L1 misses inside the
//!   `Gc` and `GcBarrier` trace slices (the sweep's dedicated phase
//!   slices), separating collector locality from mutator locality;
//! * **schedule invisibility** — the same program and size is re-run
//!   under the legacy collector, the production-shaped generational
//!   geometry, and the forcing tiny nursery, plus the interpreter
//!   reference; all observables must be byte-equal.
//!
//! The report is deterministic at any `--jobs` setting (the study
//! runs its small workload set serially). The `gc_study` binary's
//! `--sabotage-drop-barrier N` flag arms the collector's seeded
//! missed-write-barrier hook on the measured engine — the must-fail
//! CI job proves a single lost barrier breaks equivalence and exits
//! nonzero.

use crate::table::{count, pct, Table};
use jrt_cache::{CacheConfig, SplitSweep};
use jrt_trace::NullSink;
use jrt_vm::{GcConfig, Observables, Vm, VmConfig};
use jrt_workloads::{gc_suite, Size};

/// One workload's collector behavior.
#[derive(Debug, Clone)]
pub struct GcRow {
    /// Benchmark name.
    pub name: String,
    /// Executed bytecodes on the measured (JIT) engine.
    pub bytecodes: u64,
    /// Minor collections.
    pub minors: u64,
    /// Major collections.
    pub majors: u64,
    /// Bytes the program allocated on the Java heap.
    pub alloc_bytes: u64,
    /// Bytes the collector copied (evacuation + compaction).
    pub copied_bytes: u64,
    /// Collector trace instructions (`Phase::Gc`).
    pub gc_insts: u64,
    /// Write-barrier trace instructions (`Phase::GcBarrier`).
    pub barrier_insts: u64,
    /// Paper-L1 I-cache misses inside the `Gc` slice.
    pub gc_imiss: u64,
    /// Paper-L1 D-cache misses inside the `Gc` slice.
    pub gc_dmiss: u64,
    /// Paper-L1 I-cache misses inside the `GcBarrier` slice.
    pub barrier_imiss: u64,
    /// Paper-L1 D-cache misses inside the `GcBarrier` slice.
    pub barrier_dmiss: u64,
    /// Self-check passed and observables were byte-equal across the
    /// interpreter reference and all three collector configurations.
    pub equivalent: bool,
}

impl GcRow {
    /// Copied bytes as a share of allocated bytes. Approximates the
    /// survival rate when only minor collections run; forced majors
    /// re-copy tenured objects, so the ratio can exceed 100%.
    pub fn survival(&self) -> f64 {
        if self.alloc_bytes == 0 {
            0.0
        } else {
            self.copied_bytes as f64 / self.alloc_bytes as f64
        }
    }

    /// Barrier instructions per 1,000 executed bytecodes.
    pub fn barrier_per_kbc(&self) -> f64 {
        if self.bytecodes == 0 {
            0.0
        } else {
            self.barrier_insts as f64 * 1000.0 / self.bytecodes as f64
        }
    }
}

/// The full GC study.
#[derive(Debug, Clone)]
pub struct GcStudy {
    /// Nursery size of the measured configuration, in bytes.
    pub nursery_bytes: u64,
    /// Tenured budget of the measured configuration, in bytes.
    pub tenured_bytes: u64,
    /// One row per GC workload.
    pub rows: Vec<GcRow>,
}

impl GcStudy {
    /// Renders the summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "GC study: generational copying collection on allocation-heavy workloads",
            &[
                "benchmark",
                "bytecodes",
                "minors",
                "majors",
                "alloc bytes",
                "copied",
                "copied/alloc",
                "barrier insts",
                "barrier/1k bc",
                "gc misses I/D",
                "barrier misses I/D",
                "equivalent",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                count(r.bytecodes),
                r.minors.to_string(),
                r.majors.to_string(),
                count(r.alloc_bytes),
                count(r.copied_bytes),
                pct(r.survival()),
                count(r.barrier_insts),
                format!("{:.1}", r.barrier_per_kbc()),
                format!("{}/{}", count(r.gc_imiss), count(r.gc_dmiss)),
                format!("{}/{}", count(r.barrier_imiss), count(r.barrier_dmiss)),
                if r.equivalent { "yes" } else { "NO" }.into(),
            ]);
        }
        t
    }

    /// Renders the study as markdown: the table plus one summary line
    /// per row and the equivalence verdict (greppable by the CI
    /// gc-smoke job).
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## GC study — generational copying collection\n\n");
        out.push_str(&format!(
            "*Setup:* nursery {} bytes, tenured budget {} bytes; measured on the \
             first-invocation JIT; equivalence checked against the interpreter and \
             the legacy / production-geometry / tiny-nursery collectors.\n\n",
            count(self.nursery_bytes),
            count(self.tenured_bytes)
        ));
        out.push_str(&self.table().to_markdown());
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "- `{}`: {} minor and {} major collection(s) copied {} of {} \
                 allocated bytes ({} copied/alloc); the card barrier cost {} \
                 instructions ({:.1} per 1,000 bytecodes).\n",
                r.name,
                r.minors,
                r.majors,
                count(r.copied_bytes),
                count(r.alloc_bytes),
                pct(r.survival()),
                count(r.barrier_insts),
                r.barrier_per_kbc(),
            ));
        }
        let verdict = if self.all_equivalent() {
            "observationally equivalent under every collector configuration"
        } else {
            "NOT equivalent — collector schedule leaked into observables"
        };
        out.push_str(&format!("- All workloads: {verdict}.\n\n"));
        out
    }

    /// Whether every row passed the cross-collector equivalence check.
    pub fn all_equivalent(&self) -> bool {
        self.rows.iter().all(|r| r.equivalent)
    }
}

/// The measured collector geometry: always the forcing tiny nursery.
/// Even the s1/s10 suites allocate well under the production 256 KiB
/// nursery, so the production geometry would never collect — it is
/// exercised by the equivalence runs instead, while the measured run
/// keeps the collector hot at every size.
pub fn study_config(_size: Size) -> GcConfig {
    GcConfig::tiny_nursery()
}

fn run_observables(program: &jrt_bytecode::Program, cfg: VmConfig) -> Observables {
    Vm::new(program, cfg)
        .run_observed(&mut NullSink)
        .observables
}

fn run_one(spec: &jrt_workloads::Spec, size: Size, sabotage_drop: Option<u64>) -> GcRow {
    let program = (spec.build)(size);
    let study_gc = study_config(size);

    // The measured run: first-invocation JIT under the study nursery,
    // swept through the paper-L1 points for the phase-slice miss
    // attribution the new Gc/GcBarrier sweep slices expose.
    let ipoints = [CacheConfig::paper_l1_inst()];
    let dpoints = [CacheConfig::paper_l1_data()];
    let mut sweep = SplitSweep::new(&ipoints, &dpoints);
    let mut cfg = VmConfig::jit().with_gc(study_gc);
    cfg.gc_sabotage_drop_barrier = sabotage_drop;
    let run = Vm::new(&program, cfg).run_observed(&mut sweep);
    let iresults = sweep.icache().results();
    let dresults = sweep.dcache().results();
    let (i, d) = (&iresults[0], &dresults[0]);

    // Schedule invisibility: interpreter reference plus the JIT under
    // every collector configuration must observe identically.
    let reference = run_observables(&program, VmConfig::interpreter());
    let self_check = run.observables.outcome == Ok(Some((spec.expected)(size)));
    let equivalent = self_check
        && [GcConfig::Legacy, GcConfig::generational(), study_gc]
            .into_iter()
            .all(|gc| run_observables(&program, VmConfig::jit().with_gc(gc)) == reference)
        && run.observables == reference;

    GcRow {
        name: spec.name.to_string(),
        bytecodes: run.counters.bytecodes,
        minors: run.counters.gc_minor,
        majors: run.counters.gc_major,
        alloc_bytes: run.counters.heap_alloc_bytes,
        copied_bytes: run.counters.gc_copied_bytes,
        gc_insts: run.counters.gc_insts,
        barrier_insts: run.counters.gc_barrier_insts,
        gc_imiss: i.gc_stats().misses(),
        gc_dmiss: d.gc_stats().misses(),
        barrier_imiss: i.gc_barrier_stats().misses(),
        barrier_dmiss: d.gc_barrier_stats().misses(),
        equivalent,
    }
}

/// Runs the GC study over [`gc_suite`] at `size`.
pub fn run(size: Size) -> GcStudy {
    run_sabotaged(size, None)
}

/// Runs the study with the seeded missed-write-barrier sabotage armed
/// on the measured engine (`None` = clean run). A sabotaged run whose
/// dropped barrier matters fails the equivalence column, which the
/// `gc_study` binary turns into a nonzero exit — the CI must-fail
/// harness self-test.
pub fn run_sabotaged(size: Size, sabotage_drop: Option<u64>) -> GcStudy {
    let (nursery_bytes, tenured_bytes) = match study_config(size) {
        GcConfig::Generational {
            nursery_bytes,
            tenured_bytes,
        } => (nursery_bytes, tenured_bytes),
        GcConfig::Legacy => unreachable!("study_config is always generational"),
    };
    GcStudy {
        nursery_bytes,
        tenured_bytes,
        rows: gc_suite()
            .iter()
            .map(|spec| run_one(spec, size, sabotage_drop))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_collects_and_stays_equivalent() {
        let study = run(Size::Tiny);
        assert_eq!(study.rows.len(), 3);
        for r in &study.rows {
            assert!(r.minors > 0, "{}: no minor collections", r.name);
            assert!(r.barrier_insts > 0, "{}: no barrier traffic", r.name);
            assert!(r.copied_bytes <= r.alloc_bytes, "{}: copy bound", r.name);
            assert!(r.equivalent, "{}: schedule leaked", r.name);
        }
        assert!(study.all_equivalent());
        let md = study.to_markdown();
        assert!(md.contains("observationally equivalent"));
    }

    #[test]
    fn seeded_missed_barrier_breaks_equivalence() {
        // The pinned must-fail parameters: dropping `stream`'s first
        // remembered-set enrollment reclaims a live kept array.
        let study = run_sabotaged(Size::Tiny, Some(0));
        assert!(
            !study.all_equivalent(),
            "sabotaged run stayed equivalent — the missed barrier was not observable"
        );
    }
}
