//! Figure 8 — effect of line size (8 KB direct-mapped, 16–128 bytes).
//!
//! The paper: larger lines monotonically help the I-cache; the D-cache
//! differs by mode — interpreted code prefers small (16 B) lines
//! (short methods, 1.8-byte bytecodes give little spatial locality
//! beyond a method), while JIT mode does best at 32–64 B (object and
//! array sizes).

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_cache::{CacheConfig, SplitSweep};
use jrt_workloads::{suite, Size};

/// Line sizes swept.
pub const LINES: [u32; 4] = [16, 32, 64, 128];

/// Aggregated miss rates per line size for one mode.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Execution mode.
    pub mode: Mode,
    /// I-cache miss rates per line size.
    pub i_miss: [f64; 4],
    /// D-cache miss rates per line size.
    pub d_miss: [f64; 4],
}

impl Fig8Row {
    /// Index of the best (lowest-miss) D-cache line size.
    pub fn best_d_line(&self) -> u32 {
        let mut best = 0;
        for k in 1..4 {
            if self.d_miss[k] < self.d_miss[best] {
                best = k;
            }
        }
        LINES[best]
    }
}

/// The full Figure 8 result.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One row per mode.
    pub rows: Vec<Fig8Row>,
}

impl Fig8 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 8: line-size sweep (8K direct-mapped), suite aggregate",
            &["mode", "cache", "16B", "32B", "64B", "128B"],
        );
        for r in &self.rows {
            t.row(vec![
                r.mode.label().into(),
                "I".into(),
                pct(r.i_miss[0]),
                pct(r.i_miss[1]),
                pct(r.i_miss[2]),
                pct(r.i_miss[3]),
            ]);
            t.row(vec![
                r.mode.label().into(),
                "D".into(),
                pct(r.d_miss[0]),
                pct(r.d_miss[1]),
                pct(r.d_miss[2]),
                pct(r.d_miss[3]),
            ]);
        }
        t
    }

    /// Row accessor.
    pub fn get(&self, mode: Mode) -> &Fig8Row {
        self.rows
            .iter()
            .find(|r| r.mode == mode)
            .expect("mode present")
    }
}

/// One benchmark × mode job. The four line sizes go into one sweep as
/// four families — the decoded stream is walked and classified once,
/// with four stack touches per access. Returns
/// `(i_refs, d_refs, i_misses, d_misses)` per line size.
fn run_one(w: &Workload, mode: Mode) -> [(u64, u64, u64, u64); 4] {
    let points: Vec<CacheConfig> = LINES
        .iter()
        .map(|&l| CacheConfig::paper_line_sweep(l))
        .collect();
    let mut sweep = SplitSweep::new(&points, &points);
    tape::for_each_block(w, mode, |b| sweep.consume_block(b));
    let iresults = sweep.icache().results();
    let dresults = sweep.dcache().results();
    let mut out = [(0, 0, 0, 0); 4];
    for (k, out_k) in out.iter_mut().enumerate() {
        let (i, d) = (&iresults[k], &dresults[k]);
        *out_k = (
            i.stats().refs(),
            d.stats().refs(),
            i.stats().misses(),
            d.stats().misses(),
        );
    }
    out
}

/// Runs the Figure 8 experiment: one job per benchmark × mode, with
/// the suite aggregate folded mode-major after collection.
pub fn run(size: Size) -> Fig8 {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    let counts = jobs::par_map(&work, |(w, mode)| run_one(w, *mode));
    let rows = Mode::BOTH
        .iter()
        .map(|&mode| {
            let mut refs = [(0u64, 0u64); 4];
            let mut misses = [(0u64, 0u64); 4];
            for ((_, m), per_line) in work.iter().zip(&counts) {
                if *m != mode {
                    continue;
                }
                for (k, &(ir, dr, im, dm)) in per_line.iter().enumerate() {
                    refs[k].0 += ir;
                    refs[k].1 += dr;
                    misses[k].0 += im;
                    misses[k].1 += dm;
                }
            }
            let mut i_miss = [0.0; 4];
            let mut d_miss = [0.0; 4];
            for k in 0..4 {
                i_miss[k] = misses[k].0 as f64 / refs[k].0.max(1) as f64;
                d_miss[k] = misses[k].1 as f64 / refs[k].1.max(1) as f64;
            }
            Fig8Row {
                mode,
                i_miss,
                d_miss,
            }
        })
        .collect();
    Fig8 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_size_preferences_differ_by_mode() {
        let f = run(Size::Tiny);
        for r in &f.rows {
            // I-cache: larger lines help monotonically.
            for k in 1..4 {
                assert!(
                    r.i_miss[k] <= r.i_miss[k - 1] * 1.05,
                    "{:?}: I {} vs {}",
                    r.mode,
                    r.i_miss[k],
                    r.i_miss[k - 1]
                );
            }
        }
        // Growing D-cache lines pays off less for interpreted code
        // than for JIT code (the paper's small-method/bytecode-size
        // argument); the exact best-line points appear in the s1
        // report.
        let gain = |r: &Fig8Row| r.d_miss[0] / r.d_miss[3].max(1e-12);
        let interp_gain = gain(f.get(Mode::Interp));
        let jit_gain = gain(f.get(Mode::Jit));
        assert!(
            interp_gain < jit_gain * 1.2,
            "interp 16B/128B gain {interp_gain} vs jit {jit_gain}"
        );
    }
}
