//! Parallel experiment scheduler.
//!
//! Every experiment in this crate is trace-driven and embarrassingly
//! parallel: the unit of work is one `(experiment, workload, mode)`
//! simulation with its own thread-local sinks (caches, predictors,
//! pipelines), so the full cross-product fans out over a work-queue
//! of OS threads and merges back **in canonical job order**. That
//! ordering rule is what keeps `EXPERIMENTS.md` bit-identical across
//! worker counts (DESIGN.md §5.4): workers may finish in any order,
//! but results are collected into the slot of the job that produced
//! them, and every aggregation (instruction-mix merges, miss-count
//! sums, float averages) runs over the collected vector in job order
//! — exactly the order the sequential loops used.
//!
//! Worker count: the `JRT_JOBS` environment variable if set (a
//! process-wide [`set_jobs`] override wins over it), otherwise
//! [`std::thread::available_parallelism`]. A count of 1 runs jobs
//! inline on the calling thread — that *is* the sequential path.
//!
//! # Examples
//!
//! ```
//! use jrt_experiments::jobs;
//!
//! let squares = jobs::par_map(&[1u64, 2, 3, 4], |&n| n * n);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use jrt_bytecode::Program;
use jrt_workloads::{Size, Spec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide worker-count override; 0 means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequent [`par_map`] in
/// this process (stronger than `JRT_JOBS`). Pass 0 to clear.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count the scheduler will use: [`set_jobs`] override,
/// then `JRT_JOBS`, then [`std::thread::available_parallelism`].
pub fn worker_count() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var("JRT_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Returns the process arguments (program name skipped) with
/// `--jobs N` / `--jobs=N` consumed into [`set_jobs`]. Experiment
/// binaries call this instead of touching `std::env::args` so every
/// one of them understands the same jobs flag.
pub fn cli_args() -> Vec<String> {
    let mut out = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let n = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                });
            set_jobs(n);
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => set_jobs(n),
                _ => {
                    eprintln!("--jobs expects a positive integer");
                    std::process::exit(2);
                }
            }
        } else {
            out.push(arg);
        }
    }
    out
}

/// Maps `f` over `items` on a work-queue of [`worker_count`] threads,
/// returning results **in input order** regardless of which worker
/// ran which item or when it finished.
///
/// With one worker (or one item) this degenerates to a plain
/// sequential `map` on the calling thread. A panic in any job
/// propagates to the caller after the scope joins.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran")
        })
        .collect()
}

/// A benchmark with its program built once and shared immutably
/// across every job that simulates it (`Program` is `Sync`; each
/// worker runs its own `Vm` against the shared instance).
#[derive(Debug, Clone)]
pub struct Workload {
    /// The benchmark descriptor.
    pub spec: Spec,
    /// The assembled program, shared across jobs.
    pub program: Arc<Program>,
    /// The size it was built at.
    pub size: Size,
}

impl Workload {
    /// Asserts `result` carries this workload's expected checksum.
    pub fn check(&self, result: &jrt_vm::RunResult) {
        crate::runner::check(&self.spec, self.size, result);
    }
}

/// Builds every program of `specs` at `size` — itself in parallel —
/// and wraps them for job fan-out. Programs come from the
/// [`crate::tape`] memo, so across the seventeen drivers of a
/// `run_all` each benchmark is assembled exactly once.
pub fn prebuild(specs: Vec<Spec>, size: Size) -> Vec<Workload> {
    par_map(&specs, |spec| crate::tape::workload(spec, size))
}

/// The canonical-order cross-product `a × b` (`a`-major, matching the
/// nested `for` loops the sequential drivers used).
pub fn cross<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_mode, Mode};
    use jrt_trace::CountingSink;
    use jrt_workloads::hello;

    /// `set_jobs` is process-global; tests that touch it serialize
    /// here so the harness's own parallelism can't interleave them.
    static GLOBAL_JOBS: Mutex<()> = Mutex::new(());

    fn jobs_lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_JOBS.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn par_map_preserves_input_order() {
        let _g = jobs_lock();
        for forced in [1, 2, 8] {
            set_jobs(forced);
            let out = par_map(&(0..100u64).collect::<Vec<_>>(), |&n| n * 2);
            assert_eq!(out, (0..100).map(|n| n * 2).collect::<Vec<_>>());
        }
        set_jobs(0);
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let _g = jobs_lock();
        set_jobs(4);
        let hits = AtomicUsize::new(0);
        let out = par_map(&[5u32; 37], |&v| {
            hits.fetch_add(1, Ordering::Relaxed);
            v
        });
        set_jobs(0);
        assert_eq!(out.len(), 37);
        assert_eq!(hits.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn cross_is_a_major() {
        let c = cross(&['a', 'b'], &[1, 2]);
        assert_eq!(c, vec![('a', 1), ('a', 2), ('b', 1), ('b', 2)]);
    }

    #[test]
    fn worker_count_override_wins() {
        let _g = jobs_lock();
        set_jobs(3);
        assert_eq!(worker_count(), 3);
        set_jobs(0);
        assert!(worker_count() >= 1);
    }

    #[test]
    fn shared_program_runs_identically_across_workers() {
        let loads = prebuild(
            vec![Spec {
                name: "hello",
                build: hello::program,
                expected: hello::expected,
                multithreaded: false,
            }],
            Size::Tiny,
        );
        let jobs = cross(&loads, &Mode::BOTH);
        let _g = jobs_lock();
        set_jobs(2);
        let totals = par_map(&jobs, |(w, mode)| {
            let mut sink = CountingSink::new();
            let r = run_mode(&w.program, *mode, &mut sink);
            w.check(&r);
            sink.total()
        });
        set_jobs(0);
        assert_eq!(totals.len(), 2);
        assert!(totals.iter().all(|&t| t > 0));
    }
}
