//! The paper's recommendation, quantified: a predictor tailored for
//! indirect branches under interpretation.
//!
//! Table 2's conclusion is that JIT mode is fine with conventional
//! predictors while interpreted mode needs an indirect-branch
//! predictor (the paper cites target-cache style designs). This
//! experiment runs both modes with the plain BTB and with a
//! path-history target cache of the same entry count, and reports the
//! misprediction reduction.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_bpred::{BranchEval, Gshare};
use jrt_workloads::{suite, Size};

/// BTB-vs-target-cache rates for one benchmark × mode.
#[derive(Debug, Clone, Copy)]
pub struct IndirectRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Execution mode.
    pub mode: Mode,
    /// Overall misprediction with the plain BTB.
    pub btb_rate: f64,
    /// Overall misprediction with the target cache.
    pub tc_rate: f64,
    /// Indirect-only misprediction with the plain BTB.
    pub btb_indirect: f64,
    /// Indirect-only misprediction with the target cache.
    pub tc_indirect: f64,
}

/// The full study.
#[derive(Debug, Clone)]
pub struct Indirect {
    /// Rows: per benchmark, interp then jit.
    pub rows: Vec<IndirectRow>,
}

impl Indirect {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Indirect-branch predictor study (Gshare directions; 1K-entry target structures)",
            &[
                "benchmark",
                "mode",
                "overall (BTB)",
                "overall (target cache)",
                "indirect (BTB)",
                "indirect (target cache)",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                r.mode.label().into(),
                pct(r.btb_rate),
                pct(r.tc_rate),
                pct(r.btb_indirect),
                pct(r.tc_indirect),
            ]);
        }
        t
    }

    /// Mean overall misprediction for a mode under each scheme.
    pub fn means(&self, mode: Mode) -> (f64, f64) {
        let v: Vec<&IndirectRow> = self.rows.iter().filter(|r| r.mode == mode).collect();
        let n = v.len() as f64;
        (
            v.iter().map(|r| r.btb_rate).sum::<f64>() / n,
            v.iter().map(|r| r.tc_rate).sum::<f64>() / n,
        )
    }
}

fn run_one(w: &Workload, mode: Mode) -> IndirectRow {
    let mut evals = vec![
        BranchEval::new(Box::new(Gshare::paper())),
        BranchEval::new(Box::new(Gshare::paper())).with_target_cache(),
    ];
    tape::replay(w, mode, &mut evals);
    IndirectRow {
        name: w.spec.name,
        mode,
        btb_rate: evals[0].stats().overall_rate(),
        tc_rate: evals[1].stats().overall_rate(),
        btb_indirect: evals[0].stats().indirect_rate(),
        tc_indirect: evals[1].stats().indirect_rate(),
    }
}

/// Runs the study, one job per benchmark × mode.
pub fn run(size: Size) -> Indirect {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    Indirect {
        rows: jobs::par_map(&work, |(w, mode)| run_one(w, *mode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_cache_rescues_the_interpreter() {
        let f = run(Size::Tiny);
        let (btb_i, tc_i) = f.means(Mode::Interp);
        // The tailored predictor removes a substantial share of the
        // interpreter's mispredictions…
        assert!(
            tc_i < btb_i * 0.85,
            "interp: target cache {tc_i} vs BTB {btb_i}"
        );
        // …while JIT mode barely cares (its indirects are rare).
        let (btb_j, tc_j) = f.means(Mode::Jit);
        assert!((btb_j - tc_j).abs() < 0.05, "jit: {btb_j} vs {tc_j}");
    }
}
