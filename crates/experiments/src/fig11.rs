//! Figure 11 — synchronization: access cases and lock-scheme costs.
//!
//! (i) Classifies every `monitorenter` into the paper's four cases:
//! (a) unlocked, (b) shallow recursion, (c) deep recursion,
//! (d) contended — finding (a) and (b) dominate, with (a) alone above
//! 80%. (ii) Compares the JDK 1.1.6 monitor cache against thin locks
//! (≈2× faster overall) and the paper's 1-bit variant.

use crate::jobs;
use crate::runner::{run_mode_sync, Mode};
use crate::table::{count, pct, Table};
use jrt_sync::{SyncCase, SyncStats};
use jrt_trace::NullSink;
use jrt_vm::SyncKind;
use jrt_workloads::{suite, Size};

/// Case mix for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct CaseRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Sync statistics (canonical classification).
    pub stats: SyncStats,
}

/// Cost comparison for one scheme, suite aggregate.
#[derive(Debug, Clone, Copy)]
pub struct SchemeRow {
    /// Monitor scheme.
    pub scheme: SyncKind,
    /// Total modelled lock cycles over the suite.
    pub total_cycles: u64,
    /// Mean cycles per synchronization operation.
    pub cycles_per_op: f64,
    /// Header bits required per object.
    pub header_bits: u32,
}

/// The full Figure 11 result.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// (i) per-benchmark case mixes.
    pub cases: Vec<CaseRow>,
    /// (ii) per-scheme costs.
    pub schemes: Vec<SchemeRow>,
}

impl Fig11 {
    /// Renders the case-mix table.
    pub fn case_table(&self) -> Table {
        let mut t = Table::new(
            "Figure 11(i): monitorenter case mix",
            &[
                "benchmark",
                "enters",
                "(a) unlocked",
                "(b) shallow-rec",
                "(c) deep-rec",
                "(d) contended",
            ],
        );
        for r in &self.cases {
            t.row(vec![
                r.name.into(),
                count(r.stats.enters()),
                pct(r.stats.case_fraction(SyncCase::Unlocked)),
                pct(r.stats.case_fraction(SyncCase::ShallowRecursive)),
                pct(r.stats.case_fraction(SyncCase::DeepRecursive)),
                pct(r.stats.case_fraction(SyncCase::Contended)),
            ]);
        }
        t
    }

    /// Renders the scheme-cost table.
    pub fn scheme_table(&self) -> Table {
        let fat = self.scheme(SyncKind::MonitorCache).total_cycles as f64;
        let mut t = Table::new(
            "Figure 11(ii): lock-scheme cost (suite aggregate)",
            &[
                "scheme",
                "header bits",
                "lock cycles",
                "cycles/op",
                "speedup vs monitor-cache",
            ],
        );
        for r in &self.schemes {
            t.row(vec![
                match r.scheme {
                    SyncKind::MonitorCache => "monitor-cache (JDK 1.1.6)".into(),
                    SyncKind::ThinLock => "thin locks (24-bit)".into(),
                    SyncKind::OneBit => "1-bit locks".into(),
                },
                r.header_bits.to_string(),
                count(r.total_cycles),
                format!("{:.1}", r.cycles_per_op),
                format!("{:.2}x", fat / r.total_cycles as f64),
            ]);
        }
        t
    }

    /// Scheme accessor.
    pub fn scheme(&self, kind: SyncKind) -> &SchemeRow {
        self.schemes
            .iter()
            .find(|r| r.scheme == kind)
            .expect("scheme present")
    }

    /// Suite-wide fraction of enters in case (a).
    pub fn case_a_fraction(&self) -> f64 {
        let total: u64 = self.cases.iter().map(|r| r.stats.enters()).sum();
        let a: u64 = self.cases.iter().map(|r| r.stats.case_counts[0]).sum();
        a as f64 / total.max(1) as f64
    }

    /// Speedup of thin locks over the monitor cache.
    pub fn thin_speedup(&self) -> f64 {
        self.scheme(SyncKind::MonitorCache).total_cycles as f64
            / self.scheme(SyncKind::ThinLock).total_cycles as f64
    }
}

fn header_bits(kind: SyncKind) -> u32 {
    match kind {
        SyncKind::MonitorCache => 0,
        SyncKind::ThinLock => 24,
        SyncKind::OneBit => 1,
    }
}

/// Runs the Figure 11 experiment: one cost job per scheme ×
/// benchmark, folded kind-major. The per-benchmark case mixes reuse
/// the thin-lock rows of that same cross-product (the case
/// classification is canonical across schemes), so no benchmark runs
/// twice.
pub fn run(size: Size) -> Fig11 {
    let loads = jobs::prebuild(suite(), size);
    let work = jobs::cross(&SyncKind::ALL, &loads);
    let stats = jobs::par_map(&work, |(kind, w)| {
        // Sync traces differ per scheme, so these stay direct VM runs
        // (Jit mode — no oracle needed).
        let r = run_mode_sync(&w.program, Mode::Jit, *kind, None, &mut NullSink);
        w.check(&r);
        r.sync_stats
    });
    let cases = work
        .iter()
        .zip(&stats)
        .filter(|((kind, _), _)| *kind == SyncKind::ThinLock)
        .map(|((_, w), s)| CaseRow {
            name: w.spec.name,
            stats: *s,
        })
        .collect();
    let schemes = SyncKind::ALL
        .iter()
        .map(|&kind| {
            let mut total = 0u64;
            let mut ops = 0u64;
            for ((k, _), s) in work.iter().zip(&stats) {
                if *k != kind {
                    continue;
                }
                total += s.total_cycles;
                ops += s.enters() + s.exits;
            }
            SchemeRow {
                scheme: kind,
                total_cycles: total,
                cycles_per_op: total as f64 / ops.max(1) as f64,
                header_bits: header_bits(kind),
            }
        })
        .collect();
    Fig11 { cases, schemes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_shape_matches_paper() {
        let f = run(Size::Tiny);
        // Case (a) covers >80% of accesses (the 1-bit motivation).
        assert!(f.case_a_fraction() > 0.8, "got {}", f.case_a_fraction());
        // Thin locks are about twice as fast as the monitor cache.
        let s = f.thin_speedup();
        assert!(s > 1.8, "thin-lock speedup {s}");
        // The 1-bit variant captures most of the benefit with 1 bit.
        let one = f.scheme(SyncKind::OneBit);
        let fat = f.scheme(SyncKind::MonitorCache);
        assert!(one.total_cycles < fat.total_cycles);
        assert_eq!(one.header_bits, 1);
        // mtrt (multithreaded) shows contention.
        let mtrt = f.cases.iter().find(|r| r.name == "mtrt").unwrap();
        assert!(mtrt.stats.enters() > 0);
    }
}
