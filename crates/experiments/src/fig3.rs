//! Figure 3 — percentage of data-cache misses that are writes.
//!
//! Direct-mapped 64 KB cache, 32-byte lines. The paper finds that in
//! JIT mode 50–90% of data misses are writes (code generation and
//! installation), far more than in interpreter mode.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_cache::{CacheConfig, SplitCaches};
use jrt_workloads::{suite, Size};

/// One benchmark × mode measurement.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Execution mode.
    pub mode: Mode,
    /// Fraction of D-cache misses that are write misses.
    pub write_fraction: f64,
}

/// The full Figure 3 result.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Rows per benchmark and mode.
    pub rows: Vec<Fig3Row>,
}

impl Fig3 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 3: share of data misses that are writes (64K DM, 32B lines)",
            &["benchmark", "interp", "jit"],
        );
        for spec_rows in self.rows.chunks(2) {
            t.row(vec![
                spec_rows[0].name.into(),
                pct(spec_rows[0].write_fraction),
                pct(spec_rows[1].write_fraction),
            ]);
        }
        t
    }

    /// Mean write fraction for a mode.
    pub fn mean(&self, mode: Mode) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.write_fraction)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn run_one(w: &Workload, mode: Mode) -> Fig3Row {
    let mut caches = SplitCaches::new(
        CacheConfig::paper_write_study(),
        CacheConfig::paper_write_study(),
    );
    tape::replay(w, mode, &mut caches);
    Fig3Row {
        name: w.spec.name,
        mode,
        write_fraction: caches.dcache().stats().write_miss_fraction(),
    }
}

/// Runs the Figure 3 experiment, one job per benchmark × mode.
pub fn run(size: Size) -> Fig3 {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    Fig3 {
        rows: jobs::par_map(&work, |(w, mode)| run_one(w, *mode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_write_misses_dominate() {
        let f = run(Size::Tiny);
        let ji = f.mean(Mode::Jit);
        let ii = f.mean(Mode::Interp);
        assert!(ji > ii, "jit {ji} should exceed interp {ii}");
        assert!(ji > 0.35, "paper band is 50-90%, got {ji}");
    }
}
