//! Out-of-core scale study — sharded parallel replay of one big tape.
//!
//! The paper's pipeline recorded a Shade trace once and fed it to many
//! simulators; the s10-class traces were far larger than RAM, so the
//! tooling had to stream them from disk. This study reproduces that
//! regime end to end:
//!
//! 1. a base workload tape is **tiled** ([`jrt_trace::Tape::tiled`])
//!    into an s10-class synthetic tape — the same code stream repeated
//!    with the data working set shifted per tile — and persisted as a
//!    [`DiskTape`] (segmented, independently decodable chunks);
//! 2. the in-memory tape is dropped, and every replay from here on
//!    streams from disk — nothing ever materializes the full trace;
//! 3. the tape is split at segment boundaries into 1/2/4/8 shards,
//!    each shard replayed by a worker into its own
//!    [`SplitSweepShard`] + [`InstMix`], and the per-shard results are
//!    stitched by serial reconciliation ([`SplitSweep::absorb`]);
//! 4. every stitched result is checked **exactly** (per-point,
//!    per-slice, per-region hit/miss counts and the full instruction
//!    mix) against a serial streamed reference.
//!
//! The report table is deterministic at any `--jobs` setting;
//! wall-clock throughput (events/sec per worker count) goes to stderr
//! only, so CI can diff the markdown across worker counts.

use std::time::Instant;

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{count, Table};
use crate::tape;
use jrt_cache::{CacheConfig, CacheStats, SplitSweep, SplitSweepShard};
use jrt_trace::{DiskTape, InstMix, Region};
use jrt_workloads::{suite, Size};

/// Worker counts swept by the scaling study.
pub const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Address stride between tiles: 1 MiB keeps every tile's shifted data
/// working set inside its source region (regions are 256 MiB apart).
pub const ADDR_STRIDE: u64 = 1 << 20;

/// Exactness outcome for one worker count.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Number of shards (and the worker-count cap for this run).
    pub workers: usize,
    /// Stitched result identical to the serial streamed reference.
    pub exact: bool,
}

/// One workload's tiled tape and its shard-scaling results.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Benchmark name.
    pub name: String,
    /// Number of tiles the base tape was repeated.
    pub tiles: usize,
    /// Total events in the tiled tape.
    pub events: u64,
    /// Segments in the on-disk tape (shard split points).
    pub segments: usize,
    /// Packed bytes on disk.
    pub disk_bytes: u64,
    /// Whether the tape exceeds the RAM tape budget (out-of-core).
    pub exceeds_budget: bool,
    /// One exactness point per entry of [`WORKERS`].
    pub shards: Vec<ShardPoint>,
}

/// The full scale study.
#[derive(Debug, Clone)]
pub struct ScaleStudy {
    /// The RAM tape budget the run was performed under.
    pub budget: u64,
    /// One row per workload.
    pub rows: Vec<ScaleRow>,
}

impl ScaleStudy {
    /// Renders the summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Out-of-core scale study: sharded single-tape replay vs serial",
            &[
                "benchmark",
                "tiles",
                "events",
                "segments",
                "disk bytes",
                "exact@1",
                "exact@2",
                "exact@4",
                "exact@8",
            ],
        );
        for r in &self.rows {
            let mut row = vec![
                r.name.clone(),
                r.tiles.to_string(),
                count(r.events),
                r.segments.to_string(),
                count(r.disk_bytes),
            ];
            for p in &r.shards {
                row.push(if p.exact { "yes" } else { "NO" }.into());
            }
            t.row(row);
        }
        t
    }

    /// Renders the study as markdown: the table plus one budget line
    /// per row (greppable by the CI scale-smoke job).
    pub fn to_markdown(&self) -> String {
        let mut out = self.table().to_markdown();
        for r in &self.rows {
            let verdict = if r.exceeds_budget {
                "exceeds the RAM tape budget"
            } else {
                "fits within the RAM tape budget"
            };
            out.push_str(&format!(
                "- `{}`: {} packed bytes {} ({} bytes); replay streams from disk in {} segments.\n",
                r.name,
                count(r.disk_bytes),
                verdict,
                self.budget,
                r.segments
            ));
        }
        out.push('\n');
        out
    }
}

/// The sweep-point families used for the exactness check: the paper's
/// L1 points plus an associativity-sweep point per side, so stitching
/// is exercised across more than one set-group geometry.
fn points() -> (Vec<CacheConfig>, Vec<CacheConfig>) {
    let ipoints = vec![
        CacheConfig::paper_l1_inst(),
        CacheConfig::paper_assoc_sweep(4),
    ];
    let dpoints = vec![
        CacheConfig::paper_l1_data(),
        CacheConfig::paper_assoc_sweep(2),
    ];
    (ipoints, dpoints)
}

/// Flattens every per-point, per-slice, per-region counter of a sweep
/// into one comparable vector ([`SweepResult`](jrt_cache::SweepResult)
/// itself doesn't implement `PartialEq`).
fn signature(sweep: &SplitSweep) -> Vec<CacheStats> {
    let mut out = Vec::new();
    for side in [sweep.icache(), sweep.dcache()] {
        for r in side.results() {
            out.push(*r.stats());
            out.push(*r.translate_stats());
            out.push(*r.rest_stats());
            for &region in Region::ALL.iter() {
                out.push(*r.region_stats(region));
            }
        }
    }
    out
}

/// Splits `n` segments into at most `parts` contiguous, disjoint,
/// covering ranges.
fn partition(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.min(n).max(1);
    (0..parts)
        .map(|k| k * n / parts..(k + 1) * n / parts)
        .collect()
}

/// Tiling factor per requested study size: `tiny` keeps CI fast, `s1`
/// is a mid-size check, and `s10` tiles the s1 tape 100× into a tape
/// roughly two decades past the base recording.
fn plan(size: Size) -> (Size, usize) {
    match size {
        Size::Tiny => (Size::Tiny, 10),
        Size::S1 => (Size::S1, 10),
        Size::S10 => (Size::S1, 100),
    }
}

fn run_one(w: &Workload, tiles: usize) -> ScaleRow {
    let entry = tape::recorded(w, Mode::Jit);
    let tiled = entry.tape.tiled(tiles, ADDR_STRIDE);
    let dir = tape::disk_dir()
        .expect("tape spill directory unavailable")
        .clone();
    let path = dir.join(format!("scale-{}-x{}.tape", w.spec.name, tiles));
    let disk = DiskTape::write(&path, &tiled).expect("persist tiled tape");
    let events = disk.len();
    let segments = disk.segments().len();
    let disk_bytes = disk.size_bytes();
    // From here on everything streams from disk: drop the in-memory
    // tiled tape (and don't hold the recorded entry either).
    drop(tiled);
    drop(entry);

    let (ipoints, dpoints) = points();

    let t0 = Instant::now();
    let mut serial = (SplitSweep::new(&ipoints, &dpoints), InstMix::new());
    disk.replay(&mut serial).expect("serial streamed replay");
    let (serial_sweep, serial_mix) = serial;
    report_rate(w.spec.name, "serial", events, t0.elapsed().as_secs_f64());
    let serial_sig = signature(&serial_sweep);

    let proto = SplitSweep::new(&ipoints, &dpoints);
    let mut shards = Vec::new();
    for &workers in WORKERS.iter() {
        let ranges = partition(segments, workers);
        let t0 = Instant::now();
        let parts: Vec<(SplitSweepShard, InstMix)> = jobs::par_map(&ranges, |r| {
            let mut sink = (proto.shard(), InstMix::new());
            disk.replay_range(r.clone(), &mut sink)
                .expect("shard streamed replay");
            sink
        });
        let mut stitched = SplitSweep::new(&ipoints, &dpoints);
        let mut mix = InstMix::new();
        for (shard, part_mix) in &parts {
            stitched.absorb(shard);
            mix.merge(part_mix);
        }
        report_rate(
            w.spec.name,
            &format!("{workers} shard(s)"),
            events,
            t0.elapsed().as_secs_f64(),
        );
        let exact = signature(&stitched) == serial_sig && mix == serial_mix;
        shards.push(ShardPoint { workers, exact });
    }

    ScaleRow {
        name: w.spec.name.to_string(),
        tiles,
        events,
        segments,
        disk_bytes,
        exceeds_budget: disk_bytes > tape::budget_bytes(),
        shards,
    }
}

/// Wall-clock throughput to stderr only, keeping the report
/// byte-identical at any `--jobs` setting.
fn report_rate(name: &str, label: &str, events: u64, secs: f64) {
    if secs > 0.0 {
        eprintln!(
            "[scale] {name} {label}: {events} events in {secs:.3}s ({:.1} M events/s)",
            events as f64 / secs / 1e6
        );
    }
}

/// Runs the scale study: `db` and `jess` tapes tiled into s10-class
/// synthetic tapes, persisted on disk, and replayed sharded 1/2/4/8.
pub fn run(size: Size) -> ScaleStudy {
    let (base, tiles) = plan(size);
    let specs = suite()
        .into_iter()
        .filter(|s| s.name == "db" || s.name == "jess")
        .collect();
    let loads = jobs::prebuild(specs, base);
    let rows = loads.iter().map(|w| run_one(w, tiles)).collect();
    ScaleStudy {
        budget: tape::budget_bytes(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_and_covering() {
        for n in [0usize, 1, 3, 7, 8, 40] {
            for parts in [1usize, 2, 4, 8] {
                let ranges = partition(n, parts);
                assert!(!ranges.is_empty());
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn tiny_scale_study_is_exact_at_every_worker_count() {
        let study = run(Size::Tiny);
        assert_eq!(study.rows.len(), 2);
        for row in &study.rows {
            assert!(row.events > 0);
            assert_eq!(row.tiles, 10);
            assert!(row.segments >= WORKERS[WORKERS.len() - 1]);
            for p in &row.shards {
                assert!(p.exact, "{} not exact at {} workers", row.name, p.workers);
            }
        }
    }
}
