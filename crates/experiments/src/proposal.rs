//! Section 6 proposal — generating code directly into the I-cache.
//!
//! The paper's architectural-implications section proposes letting the
//! JIT write generated code straight into a (write-capable, preferably
//! write-back) I-cache: a write-allocate D-cache otherwise fetches the
//! line from memory just to overwrite it, and the freshly written
//! instructions then migrate D-cache → I-cache on first fetch
//! (double-caching). This experiment implements the proposal in the
//! cache model and measures what it saves in JIT mode.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{count, pct, Table};
use crate::tape;
use jrt_cache::SplitCaches;
use jrt_workloads::{suite, Size};

/// Baseline-vs-proposal miss counts for one benchmark (JIT mode).
#[derive(Debug, Clone, Copy)]
pub struct ProposalRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Total L1 misses (I + D), conventional caches.
    pub base_misses: u64,
    /// D-cache write misses at baseline (the cost being attacked).
    pub base_write_misses: u64,
    /// Total L1 misses with install-into-I-cache.
    pub prop_misses: u64,
}

impl ProposalRow {
    /// Fraction of all misses removed by the proposal.
    pub fn savings(&self) -> f64 {
        1.0 - self.prop_misses as f64 / self.base_misses.max(1) as f64
    }
}

/// The full proposal study.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Rows in suite order.
    pub rows: Vec<ProposalRow>,
}

impl Proposal {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Section 6 proposal: JIT installs code directly into the I-cache",
            &[
                "benchmark",
                "base misses (I+D)",
                "base D write-misses",
                "proposal misses",
                "misses removed",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                count(r.base_misses),
                count(r.base_write_misses),
                count(r.prop_misses),
                pct(r.savings()),
            ]);
        }
        t
    }

    /// Mean savings across the suite.
    pub fn mean_savings(&self) -> f64 {
        self.rows.iter().map(ProposalRow::savings).sum::<f64>() / self.rows.len() as f64
    }
}

fn run_one(w: &Workload) -> ProposalRow {
    // One replay drives both configurations.
    let mut sinks = (
        SplitCaches::paper_l1(),
        SplitCaches::paper_l1().with_install_into_icache(),
    );
    tape::replay(w, Mode::Jit, &mut sinks);
    let (base, prop) = sinks;
    ProposalRow {
        name: w.spec.name,
        base_misses: base.icache().stats().misses() + base.dcache().stats().misses(),
        base_write_misses: base.dcache().stats().write_misses,
        prop_misses: prop.icache().stats().misses() + prop.dcache().stats().misses(),
    }
}

/// Runs the proposal study (JIT mode only; the proposal does not
/// apply to the interpreter), one job per benchmark.
pub fn run(size: Size) -> Proposal {
    Proposal {
        rows: jobs::par_map(&jobs::prebuild(suite(), size), run_one),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposal_removes_misses_everywhere() {
        let p = run(Size::Tiny);
        for r in &p.rows {
            assert!(
                r.prop_misses < r.base_misses,
                "{}: {} -> {}",
                r.name,
                r.base_misses,
                r.prop_misses
            );
        }
        // Installation write misses are a large target at small inputs,
        // so the proposal should save a double-digit share somewhere.
        assert!(p.mean_savings() > 0.05, "got {}", p.mean_savings());
    }
}
