//! Figure 4 — average miss rates vs. a C-like execution.
//!
//! The paper compares SpecJVM98 under both JVM modes against SPECint
//! and C++ programs. We have no 1990s C binaries, so the C-like
//! comparator is an **AOT proxy**: the same programs' JIT-mode traces
//! with the translation and class-loading phases removed — i.e., the
//! execution of compiled code alone, which is what an ahead-of-time
//! compiled C program of the same algorithm would run. The paper's
//! shape: the interpreter has the best locality on both caches; JIT
//! I-cache behaviour is close to compiled code; JIT D-cache is the
//! worst of all (write misses).

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_cache::SplitCaches;
use jrt_trace::{Phase, PhaseFilter};
use jrt_workloads::{suite, Size};

/// Average miss rates for one execution style.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Style label.
    pub label: &'static str,
    /// Mean I-cache miss rate over the suite.
    pub i_miss: f64,
    /// Mean D-cache miss rate over the suite.
    pub d_miss: f64,
}

/// The full Figure 4 result.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// interp / jit / C-like rows.
    pub rows: Vec<Fig4Row>,
}

impl Fig4 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 4: average miss rates (64K/32B; C-like = AOT proxy)",
            &["execution", "I-miss", "D-miss"],
        );
        for r in &self.rows {
            t.row(vec![r.label.into(), pct(r.i_miss), pct(r.d_miss)]);
        }
        t
    }

    /// Row accessor.
    pub fn get(&self, label: &str) -> Option<&Fig4Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

fn is_app_phase(p: Phase) -> bool {
    !matches!(p, Phase::Translate | Phase::ClassLoad)
}

/// The three execution styles of one benchmark, each its own job.
fn run_one(w: &Workload, style: &'static str) -> (f64, f64) {
    match style {
        "interp" | "jit" => {
            let mode = if style == "interp" {
                Mode::Interp
            } else {
                Mode::Jit
            };
            let mut caches = SplitCaches::paper_l1();
            tape::replay(w, mode, &mut caches);
            (
                caches.icache().stats().miss_rate(),
                caches.dcache().stats().miss_rate(),
            )
        }
        // AOT proxy: the cached JIT tape with translate/class-load
        // filtered out before the caches.
        _ => {
            let mut filtered = PhaseFilter::new(SplitCaches::paper_l1(), is_app_phase);
            tape::replay(w, Mode::Jit, &mut filtered);
            (
                filtered.inner().icache().stats().miss_rate(),
                filtered.inner().dcache().stats().miss_rate(),
            )
        }
    }
}

/// Runs the Figure 4 experiment: one job per benchmark × style, float
/// averages summed in canonical (suite-major) order after collection.
pub fn run(size: Size) -> Fig4 {
    let styles = ["interp", "jit", "c-like"];
    let work = jobs::cross(&jobs::prebuild(suite(), size), &styles);
    let rates = jobs::par_map(&work, |(w, style)| run_one(w, style));

    let (mut ii, mut id, mut ji, mut jd, mut ci, mut cd) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let n = suite().len() as f64;
    for ((_, style), (i_rate, d_rate)) in work.iter().zip(&rates) {
        match *style {
            "interp" => {
                ii += i_rate;
                id += d_rate;
            }
            "jit" => {
                ji += i_rate;
                jd += d_rate;
            }
            _ => {
                ci += i_rate;
                cd += d_rate;
            }
        }
    }
    Fig4 {
        rows: vec![
            Fig4Row {
                label: "interp",
                i_miss: ii / n,
                d_miss: id / n,
            },
            Fig4Row {
                label: "jit",
                i_miss: ji / n,
                d_miss: jd / n,
            },
            Fig4Row {
                label: "c-like",
                i_miss: ci / n,
                d_miss: cd / n,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_locality_is_best_jit_dcache_worst() {
        let f = run(Size::Tiny);
        let interp = f.get("interp").unwrap();
        let jit = f.get("jit").unwrap();
        let c = f.get("c-like").unwrap();
        // Interpreter beats both on the I-cache.
        assert!(interp.i_miss < jit.i_miss);
        assert!(interp.i_miss < c.i_miss);
        // JIT D-cache is the worst of the three (write misses).
        assert!(jit.d_miss >= c.d_miss);
        assert!(jit.d_miss > interp.d_miss);
        assert_eq!(f.table().len(), 3);
    }
}
