//! Full reproduction run: executes every experiment and renders the
//! `EXPERIMENTS.md` paper-vs-measured report.
//!
//! Every section is optional ([`run_filtered`] skips the ones whose
//! name doesn't match the filter), so `run_all --filter fig1` can
//! regenerate one section in isolation; [`Report::to_markdown`]
//! renders whatever subset is present.

use crate::runner::Mode;
use crate::{
    codecache, fig1, fig11, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table1, table2, table3,
};
use jrt_workloads::Size;
use std::fmt::Write as _;

/// All experiment results. Each section is `None` when filtered out
/// by [`run_filtered`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Input size used.
    pub size: Size,
    /// Figure 1.
    pub fig1: Option<fig1::Fig1>,
    /// Table 1.
    pub table1: Option<table1::Table1>,
    /// Figure 2.
    pub fig2: Option<fig2::Fig2>,
    /// Table 2.
    pub table2: Option<table2::Table2>,
    /// Table 3.
    pub table3: Option<table3::Table3>,
    /// Figure 3.
    pub fig3: Option<fig3::Fig3>,
    /// Figure 4.
    pub fig4: Option<fig4::Fig4>,
    /// Figure 5.
    pub fig5: Option<fig5::Fig5>,
    /// Figure 6.
    pub fig6: Option<fig6::Fig6>,
    /// Figure 7.
    pub fig7: Option<fig7::Fig7>,
    /// Figure 8.
    pub fig8: Option<fig8::Fig8>,
    /// Figures 9 & 10.
    pub fig9: Option<fig9::Fig9>,
    /// Figure 11.
    pub fig11: Option<fig11::Fig11>,
    /// Indirect-predictor study (Table 2's recommendation).
    pub indirect: Option<crate::indirect::Indirect>,
    /// Interpreter folding study (Section 4.4's suggestion).
    pub folding: Option<crate::folding::Folding>,
    /// Section 6 proposal study.
    pub proposal: Option<crate::proposal::Proposal>,
    /// Register-IR tier study (stack vs register dispatch).
    pub regir: Option<crate::ir::IrStudy>,
    /// Input-size sweep (Section 2 observation).
    pub sizes: Option<crate::sizes::Sizes>,
    /// Managed code-cache study (capacity, sharing, tiering).
    pub codecache: Option<codecache::CodeCacheStudy>,
    /// Multi-tenant VM fleet study (admission, fuel, shared cache).
    pub serve: Option<crate::serve::ServeStudy>,
    /// Out-of-core scale study (disk-tier tapes, sharded replay).
    pub scale: Option<crate::scale::ScaleStudy>,
    /// Generational-GC study (collections, barriers, equivalence).
    pub gc: Option<crate::gc_study::GcStudy>,
}

/// Section names accepted by [`run_filtered`]'s filter, in run order.
/// The filter matches by substring, so `fig` selects every figure and
/// `table` every table.
pub const SECTIONS: [&str; 22] = [
    "fig1",
    "table1",
    "fig2",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig11",
    "indirect",
    "folding",
    "proposal",
    "regir",
    "sizes",
    "codecache",
    "serve",
    "scale",
    "gc",
];

/// Returns the sections a filter would run — the same substring rule
/// [`run_filtered`] applies. Empty means the filter matches nothing
/// (callers should reject it rather than emit an empty report).
pub fn matching_sections(filter: &str) -> Vec<&'static str> {
    SECTIONS
        .iter()
        .copied()
        .filter(|s| s.contains(filter))
        .collect()
}

/// Runs every experiment at `size`, logging progress to stderr.
pub fn run_all(size: Size) -> Report {
    run_filtered(size, None)
}

/// Runs the experiments whose name contains `filter` (all of them
/// when `filter` is `None`), logging progress to stderr. Skipped
/// sections are `None` in the returned [`Report`] and absent from its
/// markdown.
pub fn run_filtered(size: Size, filter: Option<&str>) -> Report {
    let enabled = |name: &str| filter.is_none_or(|f| name.contains(f));
    macro_rules! step {
        ($name:literal, $e:expr) => {{
            if enabled($name) {
                eprintln!("[run_all] {} ...", $name);
                let t = std::time::Instant::now();
                let v = $e;
                eprintln!("[run_all] {} done in {:.1?}", $name, t.elapsed());
                Some(v)
            } else {
                None
            }
        }};
    }
    Report {
        size,
        fig1: step!("fig1", fig1::run(size)),
        table1: step!("table1", table1::run(size)),
        fig2: step!("fig2", fig2::run(size)),
        table2: step!("table2", table2::run(size)),
        table3: step!("table3", table3::run(size)),
        fig3: step!("fig3", fig3::run(size)),
        fig4: step!("fig4", fig4::run(size)),
        fig5: step!("fig5", fig5::run(size)),
        fig6: step!("fig6", fig6::run(size)),
        fig7: step!("fig7", fig7::run(size)),
        fig8: step!("fig8", fig8::run(size)),
        fig9: step!("fig9", fig9::run(size)),
        fig11: step!("fig11", fig11::run(size)),
        indirect: step!("indirect", crate::indirect::run(size)),
        folding: step!("folding", crate::folding::run(size)),
        proposal: step!("proposal", crate::proposal::run(size)),
        regir: step!("regir", crate::ir::run(size)),
        sizes: step!("sizes", crate::sizes::run()),
        codecache: step!("codecache", codecache::run(size)),
        serve: step!("serve", crate::serve::run(size)),
        scale: step!("scale", crate::scale::run(size)),
        gc: step!("gc", crate::gc_study::run(size)),
    }
}

impl Report {
    /// Renders the EXPERIMENTS.md document (sections filtered out at
    /// run time are simply absent).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(w, "# EXPERIMENTS — paper vs. measured\n");
        let _ = writeln!(
            w,
            "Reproduction of every table and figure of *Architectural Issues in \
             Java Runtime Systems* (HPCA 2000) on the `javart` substrate \
             (synthetic SPARC-like traces, SpecJVM98-analog workloads, size `{:?}`).\n\
             Absolute numbers are not expected to match the 1999 testbed; each \
             section states the paper's finding and whether the measured *shape* \
             reproduces it. Regenerate with `cargo run --release -p \
             jrt-experiments --bin run_all`.\n",
            self.size
        );

        if let Some(fig1) = &self.fig1 {
            let _ = writeln!(w, "## Figure 1 — when or whether to translate\n");
            let _ = writeln!(
                w,
                "*Paper:* translation dominates `hello`/`db`; execution dominates \
                 `compress`/`jack`; JIT beats interpretation throughout; a perfect \
                 per-method oracle (`opt`) saves at most 10–15%.\n"
            );
            let _ = writeln!(w, "{}", fig1.table().to_markdown());
            let _ = writeln!(
                w,
                "*Measured:* best oracle saving {:.1}% — {}.\n",
                fig1.best_savings() * 100.0,
                verdict(fig1.best_savings() > 0.05 && fig1.best_savings() < 0.25)
            );
        }

        if let Some(table1) = &self.table1 {
            let _ = writeln!(w, "## Table 1 — memory footprint\n");
            let _ = writeln!(
                w,
                "*Paper:* the JIT needs 10–33% more memory than the interpreter \
                 (code cache + translator), proportionally more for small programs.\n"
            );
            let _ = writeln!(w, "{}", table1.table().to_markdown());
            let over: Vec<f64> = table1
                .rows
                .iter()
                .map(table1::Table1Row::overhead)
                .collect();
            let (mn, mx) = (
                over.iter().cloned().fold(f64::MAX, f64::min),
                over.iter().cloned().fold(0.0, f64::max),
            );
            let _ = writeln!(
                w,
                "*Measured:* overhead band {:.0}%–{:.0}% — {}.\n",
                mn * 100.0,
                mx * 100.0,
                verdict(mn > 0.0 && mx < 0.6)
            );
        }

        if let Some(fig2) = &self.fig2 {
            let _ = writeln!(w, "## Figure 2 — instruction mix\n");
            let _ = writeln!(
                w,
                "*Paper:* 15–20% transfers and 25–40% memory accesses in both modes; \
                 interpreter ≈5 points heavier on memory (in-memory operand stack) \
                 and indirect-jump heavy; JIT heavier on branches/calls.\n"
            );
            let _ = writeln!(w, "{}", fig2.table().to_markdown());
            let _ = writeln!(
                w,
                "*Measured:* memory {:.1}% (interp) vs {:.1}% (jit); indirect share \
                 of transfers {:.0}% vs {:.0}% — {}.\n",
                fig2.interp.memory_fraction() * 100.0,
                fig2.jit.memory_fraction() * 100.0,
                fig2.interp.indirect_share_of_transfers() * 100.0,
                fig2.jit.indirect_share_of_transfers() * 100.0,
                verdict(
                    fig2.interp.memory_fraction() > fig2.jit.memory_fraction()
                        && fig2.interp.indirect_share_of_transfers()
                            > fig2.jit.indirect_share_of_transfers()
                )
            );
        }

        if let Some(table2) = &self.table2 {
            let _ = writeln!(w, "## Table 2 — branch prediction\n");
            let _ = writeln!(
                w,
                "*Paper:* interpreter misprediction is far worse (Gshare accuracy \
                 65–87% interp vs 80–92% JIT) because of indirect dispatch jumps; \
                 conventional two-level predictors suffice for JIT mode only.\n"
            );
            let _ = writeln!(w, "{}", table2.table().to_markdown());
            let gi = table2.mean_gshare(Mode::Interp);
            let gj = table2.mean_gshare(Mode::Jit);
            let _ = writeln!(
                w,
                "*Measured:* mean Gshare misprediction {:.1}% (interp) vs {:.1}% (jit). \
                 The interpreter lands at the top of the paper's 13–35% band (our \
                 threaded-dispatch model concentrates more of the interpreter's \
                 control flow in the dispatch jump than JDK 1.1.6's bulkier handlers \
                 did), the JIT inside its 8–20% band — {}.\n",
                gi * 100.0,
                gj * 100.0,
                verdict(gi > 2.0 * gj)
            );
        }

        if let Some(table3) = &self.table3 {
            let _ = writeln!(w, "## Table 3 — cache references and misses\n");
            let _ = writeln!(
                w,
                "*Paper:* interpreter I-cache hit rate >99.9% (switch body resident); \
                 JIT D-refs shrink to 10–80% of interp's; JIT *miss counts* exceed \
                 interp's despite fewer references.\n"
            );
            let _ = writeln!(w, "{}", table3.table().to_markdown());
            let ok = table3
                .rows
                .iter()
                .all(|r| r.mode != Mode::Interp || r.icache.miss_rate() < 0.01);
            let _ = writeln!(
                w,
                "*Measured:* interp I-miss < 1% everywhere — {}.\n",
                verdict(ok)
            );
        }

        if let Some(fig3) = &self.fig3 {
            let _ = writeln!(w, "## Figure 3 — write share of data misses\n");
            let _ = writeln!(
                w,
                "*Paper:* 50–90% of JIT-mode data misses are writes (code \
                 generation/installation).\n"
            );
            let _ = writeln!(w, "{}", fig3.table().to_markdown());
            let _ = writeln!(
                w,
                "*Measured:* mean write share {:.0}% (jit) vs {:.0}% (interp) — {}.\n",
                fig3.mean(Mode::Jit) * 100.0,
                fig3.mean(Mode::Interp) * 100.0,
                verdict(fig3.mean(Mode::Jit) > fig3.mean(Mode::Interp))
            );
        }

        if let Some(fig4) = &self.fig4 {
            let _ = writeln!(w, "## Figure 4 — comparison with C-like code\n");
            let _ = writeln!(
                w,
                "*Paper:* interpreter locality beats C/C++ and JIT on both caches; \
                 JIT I-cache ≈ compiled code; JIT D-cache is the worst. Our C \
                 comparator is an AOT proxy (JIT-mode trace minus translation and \
                 class loading).\n"
            );
            let _ = writeln!(w, "{}", fig4.table().to_markdown());
        }

        if let Some(fig5) = &self.fig5 {
            let _ = writeln!(w, "## Figure 5 — misses inside translation\n");
            let _ = writeln!(
                w,
                "*Paper:* translation contributes ~30% of I-misses and 40–80% of \
                 D-misses; ~60% of translate-portion D-misses are writes; the \
                 translator's own code has *better* I-locality than the rest \
                 (code-generation routines are heavily reused).\n"
            );
            let _ = writeln!(w, "{}", fig5.table().to_markdown());
            let ok = fig5.rows.iter().all(|r| r.write_share_in_translate > 0.5)
                && fig5
                    .rows
                    .iter()
                    .filter(|r| r.name == "db" || r.name == "javac")
                    .all(|r| r.i_rate_translate < r.i_rate_rest + 0.01);
            let _ = writeln!(
                w,
                "*Measured:* write-dominated translate misses — {}.\n",
                verdict(ok)
            );
        }

        if let Some(fig6) = &self.fig6 {
            let _ = writeln!(w, "## Figure 6 — db miss timeline\n");
            let _ = writeln!(
                w,
                "*Paper:* interpreter shows startup (class-loading) spikes then \
                 steady locality; JIT shows many more spikes, clustered where \
                 method groups get translated.\n"
            );
            let _ = writeln!(
                w,
                "*Measured (window = {} instructions):* the interpreter shows its \
                 startup spike then settles (first window {} misses vs steady-state \
                 tail); the JIT trace contains {} windows *dominated by \
                 translate-phase misses* (the clustered translation spikes; the \
                 interpreter has {}) — {}.\n",
                fig6.window,
                fig6.interp
                    .samples
                    .first()
                    .map_or(0, |s| s.i_misses + s.d_misses),
                fig6.jit.translate_clusters,
                fig6.interp.translate_clusters,
                verdict(fig6.jit.translate_clusters >= 1 && fig6.interp.translate_clusters == 0)
            );
            let _ = writeln!(w, "{}", fig6.table().to_markdown());
        }

        if let Some(fig7) = &self.fig7 {
            let _ = writeln!(w, "## Figure 7 — associativity\n");
            let _ = writeln!(
                w,
                "*Paper:* misses fall with associativity; the biggest step is \
                 1-way → 2-way.\n"
            );
            let _ = writeln!(w, "{}", fig7.table().to_markdown());
        }

        if let Some(fig8) = &self.fig8 {
            let _ = writeln!(w, "## Figure 8 — line size\n");
            let _ = writeln!(
                w,
                "*Paper:* larger lines always help the I-cache; for the D-cache, \
                 interpreted code prefers 16-byte lines (tiny methods, 1.8-byte \
                 bytecodes) while JIT mode prefers 32–64 bytes (object sizes).\n"
            );
            let _ = writeln!(w, "{}", fig8.table().to_markdown());
            let ib = fig8.get(Mode::Interp).best_d_line();
            let jb = fig8.get(Mode::Jit).best_d_line();
            let _ = writeln!(
                w,
                "*Measured:* best D-line {}B (interp) vs {}B (jit) — {}.\n",
                ib,
                jb,
                verdict(ib <= jb)
            );
        }

        if let Some(fig9) = &self.fig9 {
            let _ = writeln!(w, "## Figures 9 & 10 — ILP vs issue width\n");
            let _ = writeln!(
                w,
                "*Paper:* interpreter IPC is higher (locality + short dependence \
                 chains) but flattens at wide issue (dispatch-jump target \
                 mispredictions); the JIT scales more evenly and closes the gap.\n"
            );
            let _ = writeln!(w, "{}", fig9.table().to_markdown());
            let _ = writeln!(w, "{}", fig9.table_fig10().to_markdown());
            let exec_heavy = ["compress", "mpeg"];
            let subset_w8 = |mode: Mode| {
                let v: Vec<f64> = fig9
                    .rows
                    .iter()
                    .filter(|r| r.mode == mode && exec_heavy.contains(&r.name))
                    .map(|r| r.reports[3].ipc())
                    .collect();
                v.iter().sum::<f64>() / v.len() as f64
            };
            let _ = writeln!(
                w,
                "*Measured:* at 8-issue, mean IPC on the execution-dominated \
                 benchmarks is {:.2} (interp) vs {:.2} (jit) — {}: the JIT overtakes \
                 at wide issue where the interpreter's dispatch-target mispredictions \
                 throttle fetch. On translation-heavy runs the JIT's own translate \
                 phase (a serial emission chain) drags its trace, so interp stays \
                 ahead there in our reproduction.\n",
                subset_w8(Mode::Interp),
                subset_w8(Mode::Jit),
                verdict(subset_w8(Mode::Jit) > subset_w8(Mode::Interp))
            );
        }

        if let Some(fig11) = &self.fig11 {
            let _ = writeln!(w, "## Figure 11 — synchronization\n");
            let _ = writeln!(
                w,
                "*Paper:* cases (a)+(b) dominate monitor accesses, with (a) alone \
                 above 80%; thin locks give a ~2x sync speedup over the JDK 1.1.6 \
                 monitor cache; a 1-bit lock captures case (a) with minimal header \
                 space.\n"
            );
            let _ = writeln!(w, "{}", fig11.case_table().to_markdown());
            let _ = writeln!(w, "{}", fig11.scheme_table().to_markdown());
            let _ = writeln!(
                w,
                "*Measured:* case (a) share {:.0}%; thin-lock speedup {:.2}x — {}.\n",
                fig11.case_a_fraction() * 100.0,
                fig11.thin_speedup(),
                verdict(fig11.case_a_fraction() > 0.8 && fig11.thin_speedup() > 1.8)
            );
        }

        if let Some(indirect) = &self.indirect {
            let _ = writeln!(
                w,
                "## Table 2 recommendation — an indirect-branch predictor\n"
            );
            let _ = writeln!(
                w,
                "*Paper:* \"if the interpreter mode is used, a predictor \
                 well-tailored for indirect branches should be used.\" We \
                 implemented a path-history target cache (1K entries, same storage \
                 class as the BTB) and measured it.\n"
            );
            let _ = writeln!(w, "{}", indirect.table().to_markdown());
            let (bi, ti) = indirect.means(Mode::Interp);
            let (bj, tj) = indirect.means(Mode::Jit);
            let _ = writeln!(
                w,
                "*Measured:* interpreter misprediction falls {:.1}% → {:.1}% with \
                 the target cache, while JIT mode barely moves ({:.1}% → {:.1}%) — \
                 exactly the asymmetry the recommendation predicts.\n",
                bi * 100.0,
                ti * 100.0,
                bj * 100.0,
                tj * 100.0
            );
        }

        if let Some(folding) = &self.folding {
            let _ = writeln!(
                w,
                "## Section 4.4 suggestion — interpreter instruction folding\n"
            );
            let _ = writeln!(
                w,
                "*Paper:* suggests that an interpreter which recognizes 2–4-bytecode \
                 sequences (as the picoJava folding unit does in hardware) \
                 \"can mitigate the effect of inaccurate target prediction and scale \
                 better\". We implemented folding in the interpreter.\n"
            );
            let _ = writeln!(w, "{}", folding.table().to_markdown());
            let _ = writeln!(
                w,
                "*Measured:* mean 8-issue speedup {:.2}x from folding — the dispatch \
                 bottleneck is real and foldable, as predicted.\n",
                folding.mean_w8_speedup()
            );
        }

        if let Some(proposal) = &self.proposal {
            let _ = writeln!(w, "## Section 6 proposal — install code into the I-cache\n");
            let _ = writeln!(
                w,
                "*Paper:* proposes letting the JIT write generated code directly \
                 into a write-capable I-cache, eliminating the write-allocate fill \
                 and the D→I double-caching of freshly generated code. We \
                 implemented the proposal in the cache model.\n"
            );
            let _ = writeln!(w, "{}", proposal.table().to_markdown());
            let _ = writeln!(
                w,
                "*Measured:* mean L1 misses removed {:.1}% — the proposal pays off \
                 exactly where translation write misses concentrate.\n",
                proposal.mean_savings() * 100.0
            );
        }

        if let Some(regir) = &self.regir {
            let _ = writeln!(w, "## Register-IR tier — stack vs register dispatch\n");
            let _ = writeln!(
                w,
                "*Paper:* Sections 4.2–4.4 blame the interpreter's architectural \
                 behavior on the per-bytecode indirect dispatch jump and the \
                 in-memory operand stack. A stack→register lowering attacks both: \
                 superinstruction fusion drops dispatches below one per bytecode, \
                 register-resident operands remove the operand-stack traffic, and \
                 the IR-backed translator installs denser code (fused pcs generate \
                 nothing).\n"
            );
            let _ = writeln!(w, "{}", regir.dispatch_table().to_markdown());
            let _ = writeln!(w, "{}", regir.traffic_table().to_markdown());
            let _ = writeln!(
                w,
                "*Measured:* fusion removes {:.0}% of dispatches and {:.0}% of the \
                 interpreter's native instructions; data references fall {:.0}% at \
                 the paper's L1 point; the IR-backed JIT installs {:.0}% fewer code \
                 bytes — {}.\n",
                regir.mean_dispatch_savings() * 100.0,
                regir.mean_inst_savings() * 100.0,
                regir.mean_dref_savings() * 100.0,
                regir.mean_code_savings() * 100.0,
                verdict(
                    regir.mean_dispatch_savings() > 0.1
                        && regir.mean_inst_savings() > 0.1
                        && regir.mean_dref_savings() > 0.1
                        && regir.mean_code_savings() > 0.0
                )
            );
        }

        if let Some(sizes) = &self.sizes {
            let _ = writeln!(w, "## Section 2 note — larger inputs (s10)\n");
            let _ = writeln!(
                w,
                "*Paper:* larger datasets increase method reuse, shrinking the \
                 translation share while every conclusion stays valid.\n"
            );
            let _ = writeln!(w, "{}", sizes.table().to_markdown());
        }

        if let Some(cc) = &self.codecache {
            let _ = write!(w, "{}", cc.to_markdown());
        }

        if let Some(serve) = &self.serve {
            let _ = write!(w, "{}", serve.to_markdown());
        }

        if let Some(scale) = &self.scale {
            let _ = write!(w, "{}", scale.to_markdown());
        }
        if let Some(gc) = &self.gc {
            let _ = write!(w, "{}", gc.to_markdown());
        }

        out
    }
}

pub(crate) fn verdict(ok: bool) -> &'static str {
    if ok {
        "**reproduced**"
    } else {
        "**shape differs — see notes**"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "runs the full suite; exercised by the run_all binary"]
    fn full_report_renders() {
        let r = run_all(Size::Tiny);
        let md = r.to_markdown();
        assert!(md.contains("Figure 11"));
        assert!(md.contains("Managed code cache"));
    }

    #[test]
    fn filter_selects_sections() {
        let r = run_filtered(Size::Tiny, Some("table1"));
        assert!(r.fig1.is_none());
        assert!(r.codecache.is_none());
        let md = r.to_markdown();
        assert!(md.contains("## Table 1"));
        assert!(!md.contains("## Figure 1"));
    }

    #[test]
    fn matching_sections_follows_filter_rule() {
        assert_eq!(matching_sections("table1"), vec!["table1"]);
        assert_eq!(matching_sections("fig1"), vec!["fig1", "fig11"]);
        assert_eq!(matching_sections(""), SECTIONS.to_vec());
        assert!(matching_sections("nonexistent").is_empty());
    }

    /// `SECTIONS` must stay in lockstep with the `step!` calls in
    /// `run_filtered`: every listed name selects its own section, and
    /// a report run with that single filter contains something.
    #[test]
    fn sections_list_matches_report_fields() {
        assert_eq!(SECTIONS.len(), 22);
        for name in SECTIONS {
            assert!(
                !matching_sections(name).is_empty(),
                "{name} matches nothing"
            );
        }
    }
}
