//! Regenerates the paper's fig4 result. Usage: `fig4_c_comparison [tiny|s1|s10]`.

use jrt_experiments::fig4;
use jrt_workloads::Size;

fn parse_size() -> Size {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10");
            std::process::exit(2);
        }
    }
}

fn main() {
    let size = parse_size();
    let r = fig4::run(size);
    println!("{}", r.table());
}
