//! Runs the generational-GC study: collection counts, survival,
//! write-barrier overhead, and Gc/GcBarrier cache-slice misses on the
//! allocation-heavy workload suite, with a cross-collector
//! observational-equivalence check. Exits nonzero when any workload
//! fails its self-check or the equivalence check — the
//! `--sabotage-drop-barrier N` flag arms the collector's seeded
//! missed-write-barrier hook on the measured engine so CI can prove
//! the check actually fires (a must-fail harness self-test).
//! Usage: `gc_study [tiny|s1|s10] [output-path] [--jobs N]
//! [--sabotage-drop-barrier N]`.

use jrt_experiments::{gc_study, jobs};
use jrt_workloads::Size;

fn main() {
    let mut args = jobs::cli_args();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: gc_study [tiny|s1|s10] [output-path] [--jobs N] \
             [--sabotage-drop-barrier N]\n\
             (--sabotage-drop-barrier arms the seeded missed-write-barrier\n\
             bug on the measured engine; the run must then exit nonzero;\n\
             no output path = stdout)"
        );
        return;
    }
    let mut sabotage = None;
    if let Some(pos) = args.iter().position(|a| a == "--sabotage-drop-barrier") {
        args.remove(pos);
        let Some(n) = args.get(pos).and_then(|v| v.parse::<u64>().ok()) else {
            eprintln!("--sabotage-drop-barrier needs a numeric drop index");
            std::process::exit(2);
        };
        args.remove(pos);
        sabotage = Some(n);
    }
    let size = match args.first().map(String::as_str) {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10 (see --help)");
            std::process::exit(2);
        }
    };
    let study = gc_study::run_sabotaged(size, sabotage);
    if !study.all_equivalent() {
        eprintln!("ERROR: a collector configuration leaked into observables");
        let md = study.to_markdown();
        eprint!("{md}");
        std::process::exit(1);
    }
    let md = study.to_markdown();
    match args.get(1) {
        Some(path) => {
            std::fs::write(path, &md).expect("write study output");
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }
}
