//! Regenerates the paper's fig6 result. Usage: `fig6_timeline [tiny|s1|s10]`.

use jrt_experiments::fig6;
use jrt_workloads::Size;

fn parse_size() -> Size {
    match std::env::args().nth(1).as_deref() {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10");
            std::process::exit(2);
        }
    }
}

fn main() {
    let size = parse_size();
    let r = fig6::run(size);
    println!("{}", r.table());
}
