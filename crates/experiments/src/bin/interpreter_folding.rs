//! Measures picoJava-style interpreter folding (Section 4.4).

use jrt_experiments::folding;
use jrt_experiments::jobs;
use jrt_workloads::Size;

fn main() {
    let args = jobs::cli_args();
    let size = match args.first().map(String::as_str) {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some("--help" | "-h") => {
            println!("usage: [tiny|s1|s10] [--jobs N]   (JRT_JOBS also sets the worker count)");
            std::process::exit(0);
        }
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10 (and --jobs N for workers)");
            std::process::exit(2);
        }
    };
    let r = folding::run(size);
    println!("{}", r.table());
}
