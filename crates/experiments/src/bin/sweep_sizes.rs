//! Runs the input-size sweep (Section 2's s1/s10 observation).

use jrt_experiments::sizes;

fn main() {
    let r = sizes::run();
    println!("{}", r.table());
}
