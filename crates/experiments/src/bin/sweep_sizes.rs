//! Runs the input-size sweep (Section 2's s1/s10 observation).

use jrt_experiments::{jobs, sizes};

fn main() {
    let args = jobs::cli_args();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: sweep_sizes [--jobs N]   (JRT_JOBS also sets the worker count)");
        return;
    }
    let r = sizes::run();
    println!("{}", r.table());
}
