//! Quantifies the paper's indirect-predictor recommendation.

use jrt_experiments::indirect;
use jrt_workloads::Size;

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10");
            std::process::exit(2);
        }
    };
    let r = indirect::run(size);
    println!("{}", r.table());
}
