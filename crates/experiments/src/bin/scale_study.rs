//! Runs the out-of-core scale study: tiles workload tapes into
//! s10-class on-disk tapes, replays them sharded across 1/2/4/8
//! workers, and checks the stitched results exactly against a serial
//! streamed reference. Throughput (events/sec) goes to stderr; the
//! markdown section is byte-identical at any `--jobs` setting.
//! Usage: `scale_study [tiny|s1|s10] [output-path] [--jobs N]`.

use jrt_experiments::{jobs, scale};
use jrt_workloads::Size;

fn main() {
    let args = jobs::cli_args();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: scale_study [tiny|s1|s10] [output-path] [--jobs N]\n\
             (JRT_JOBS also sets the worker count; JRT_TAPE_BUDGET caps the\n\
             RAM tape tier; JRT_TAPE_DIR overrides the spill directory;\n\
             no output path = stdout)"
        );
        return;
    }
    let size = match args.first().map(String::as_str) {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10 (see --help)");
            std::process::exit(2);
        }
    };
    let study = scale::run(size);
    if study.rows.iter().any(|r| r.shards.iter().any(|p| !p.exact)) {
        eprintln!("ERROR: sharded replay diverged from the serial reference");
        let md = study.to_markdown();
        eprint!("{md}");
        std::process::exit(1);
    }
    let md = study.to_markdown();
    match args.get(1) {
        Some(path) => {
            std::fs::write(path, &md).expect("write study output");
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }
}
