//! Runs the multi-tenant VM fleet study (admission control, per-
//! tenant fuel, shared-cache dedup, throughput/latency scaling).
//! Usage: `serve_study [tiny|s1|s10] [output-path] [--jobs N]`.
//! Without an output path the markdown section goes to stdout.

use jrt_experiments::{jobs, serve};
use jrt_workloads::Size;

fn main() {
    let args = jobs::cli_args();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: serve_study [tiny|s1|s10] [output-path] [--jobs N]\n\
             (JRT_JOBS also sets the worker count; no output path = stdout)"
        );
        return;
    }
    let size = match args.first().map(String::as_str) {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10 (see --help)");
            std::process::exit(2);
        }
    };
    let md = serve::run(size).to_markdown();
    match args.get(1) {
        Some(path) => {
            std::fs::write(path, &md).expect("write study output");
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }
}
