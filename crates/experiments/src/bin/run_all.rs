//! Runs every experiment and writes EXPERIMENTS.md.
//! Usage: `run_all [tiny|s1|s10] [output-path] [--jobs N] [--filter SUBSTR]`.

use jrt_experiments::{jobs, report};
use jrt_workloads::Size;

const HELP: &str = "\
usage: run_all [tiny|s1|s10] [output-path] [--jobs N] [--filter SUBSTR] [--list]

Runs all 22 experiment drivers and writes the EXPERIMENTS.md report
(default path: EXPERIMENTS.md in the current directory).

Each experiment fans its (workload, mode) cross-product out over a
work-queue of OS threads; results are merged in canonical order, so
the report is byte-identical at any worker count.

  --jobs N         use N worker threads (also: the JRT_JOBS environment
                   variable; the flag wins). Default: the machine's
                   available parallelism. 1 runs fully sequentially.
  --filter SUBSTR  run only the experiments whose name contains SUBSTR
                   (e.g. fig1, table, codecache); skipped sections are
                   absent from the report (also: the JRT_FILTER
                   environment variable; the flag wins). A filter that
                   matches no section is an error.
  --list           print the section names --filter matches against,
                   one per line, and exit.";

fn main() {
    let mut args = jobs::cli_args();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--list") {
        args.remove(i);
        for s in report::SECTIONS {
            println!("{s}");
        }
        return;
    }
    let mut filter = std::env::var("JRT_FILTER").ok();
    if let Some(i) = args.iter().position(|a| a == "--filter") {
        if i + 1 >= args.len() {
            eprintln!("--filter needs a value (see --help)");
            std::process::exit(2);
        }
        args.remove(i);
        filter = Some(args.remove(i));
    }
    if let Some(f) = &filter {
        if report::matching_sections(f).is_empty() {
            eprintln!(
                "filter {f:?} matches no experiment section; valid names:\n  {}",
                report::SECTIONS.join(" ")
            );
            std::process::exit(2);
        }
    }
    let size = match args.first().map(String::as_str) {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10 (see --help)");
            std::process::exit(2);
        }
    };
    let out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "EXPERIMENTS.md".into());
    let r = report::run_filtered(size, filter.as_deref());
    let md = r.to_markdown();
    std::fs::write(&out, &md).expect("write report");
    println!("wrote {out}");
}
