//! Runs every experiment and writes EXPERIMENTS.md.
//! Usage: `run_all [tiny|s1|s10] [output-path]`.

use jrt_experiments::report;
use jrt_workloads::Size;

fn main() {
    let size = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Size::Tiny,
        Some("s10") => Size::S10,
        None | Some("s1") => Size::S1,
        Some(other) => {
            eprintln!("unknown size {other:?}; use tiny|s1|s10");
            std::process::exit(2);
        }
    };
    let out = std::env::args().nth(2).unwrap_or_else(|| "EXPERIMENTS.md".into());
    let r = report::run_all(size);
    let md = r.to_markdown();
    std::fs::write(&out, &md).expect("write report");
    println!("wrote {out}");
}
