//! Table 2 — branch misprediction rates for four predictors.
//!
//! The paper evaluates a simple 2-bit predictor, a one-level BHT,
//! Gshare (5-bit history), and GAp, each with a 1K-entry BTB, and
//! finds the interpreter's misprediction rate far worse (Gshare
//! accuracy 65–87% interp vs. 80–92% JIT) because of its indirect
//! dispatch jumps.

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_bpred::{Bht, BranchEval, GAp, Gshare, TwoBit};
use jrt_workloads::{suite, Size};

/// Misprediction rates (0–1) for the four predictors.
#[derive(Debug, Clone, Copy)]
pub struct PredictorRates {
    /// Single shared 2-bit counter.
    pub two_bit: f64,
    /// One-level 2K-entry BHT.
    pub bht: f64,
    /// Gshare, 2K entries, 5-bit global history.
    pub gshare: f64,
    /// GAp two-level.
    pub gap: f64,
}

/// One benchmark × mode row.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Execution mode.
    pub mode: Mode,
    /// Rates for the four predictors.
    pub rates: PredictorRates,
}

/// The full Table 2 result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows: per benchmark, interp then jit.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 2: branch misprediction rates",
            &["benchmark", "mode", "2bit", "bht", "gshare", "gap"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                r.mode.label().into(),
                pct(r.rates.two_bit),
                pct(r.rates.bht),
                pct(r.rates.gshare),
                pct(r.rates.gap),
            ]);
        }
        t
    }

    /// Mean Gshare misprediction rate for a mode.
    pub fn mean_gshare(&self, mode: Mode) -> f64 {
        let sel: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.mode == mode)
            .map(|r| r.rates.gshare)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    }
}

fn run_one(w: &Workload, mode: Mode) -> Table2Row {
    let mut evals = vec![
        BranchEval::new(Box::new(TwoBit::new())),
        BranchEval::new(Box::new(Bht::paper())),
        BranchEval::new(Box::new(Gshare::paper())),
        BranchEval::new(Box::new(GAp::paper())),
    ];
    tape::replay(w, mode, &mut evals);
    Table2Row {
        name: w.spec.name,
        mode,
        rates: PredictorRates {
            two_bit: evals[0].stats().overall_rate(),
            bht: evals[1].stats().overall_rate(),
            gshare: evals[2].stats().overall_rate(),
            gap: evals[3].stats().overall_rate(),
        },
    }
}

/// Runs the Table 2 experiment, one job per benchmark × mode.
pub fn run(size: Size) -> Table2 {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    Table2 {
        rows: jobs::par_map(&work, |(w, mode)| run_one(w, *mode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_mispredicts_more() {
        let t = run(Size::Tiny);
        assert_eq!(t.rows.len(), 14);
        let gi = t.mean_gshare(Mode::Interp);
        let gj = t.mean_gshare(Mode::Jit);
        assert!(gi > gj, "interp {gi} should exceed jit {gj}");
        // Paper band: interp accuracy 65-87%, jit 80-92% for gshare.
        assert!(gi > 0.08, "interp gshare miss rate too low: {gi}");
        // Tiny runs are cold-miss dominated; the S1 report lands in
        // the paper's band.
        assert!(gj < 0.35, "jit gshare miss rate too high: {gj}");
        // In JIT mode, PC-indexed prediction beats the shared 2-bit
        // counter. (Under interpretation every bytecode-level branch
        // funnels through a few handler PCs, so PC indexing degrades
        // toward global behaviour — an interpreter artifact the paper's
        // "tailor the predictor to the interpreter" conclusion points
        // at.)
        let mean = |mode: Mode, f: fn(&PredictorRates) -> f64| {
            let v: Vec<f64> = t
                .rows
                .iter()
                .filter(|r| r.mode == mode)
                .map(|r| f(&r.rates))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(Mode::Jit, |r| r.bht) <= mean(Mode::Jit, |r| r.two_bit) + 0.02,
            "jit: bht should beat 2bit on average"
        );
        assert!(
            mean(Mode::Jit, |r| r.gshare) <= mean(Mode::Jit, |r| r.bht) + 0.02,
            "jit: gshare should be competitive with bht"
        );
    }
}
