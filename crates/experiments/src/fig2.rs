//! Figure 2 — instruction mix, cumulative over the suite.
//!
//! The paper reports 15–20% control transfers and 25–40% memory
//! accesses in both modes, with the interpreter about 5 percentage
//! points heavier on memory (in-memory operand stack) and much
//! heavier on indirect jumps (`switch` dispatch), while the JIT shows
//! more direct branches and calls.

use crate::jobs;
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_trace::InstMix;
use jrt_workloads::{suite, Size};

/// Cumulative mixes for the two modes, plus the per-benchmark
/// breakdown the paper's companion report carries.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Interpreter-mode cumulative mix.
    pub interp: InstMix,
    /// JIT-mode cumulative mix.
    pub jit: InstMix,
    /// Per-benchmark (name, interp mix, jit mix).
    pub per_benchmark: Vec<(&'static str, InstMix, InstMix)>,
}

impl Fig2 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 2: instruction mix (cumulative over SpecJVM98 analogs)",
            &["category", "interp", "jit"],
        );
        let s_i = self.interp.summary();
        let s_j = self.jit.summary();
        for (name, a, b) in [
            ("ALU", s_i.alu, s_j.alu),
            ("loads", s_i.loads, s_j.loads),
            ("stores", s_i.stores, s_j.stores),
            ("memory (total)", s_i.memory, s_j.memory),
            ("cond branches", s_i.branches, s_j.branches),
            ("calls", s_i.calls, s_j.calls),
            ("indirect jumps", s_i.indirect_jumps, s_j.indirect_jumps),
            ("returns", s_i.returns, s_j.returns),
            ("transfers (total)", s_i.transfers, s_j.transfers),
            (
                "indirect share of transfers",
                self.interp.indirect_share_of_transfers(),
                self.jit.indirect_share_of_transfers(),
            ),
        ] {
            t.row(vec![name.into(), pct(a), pct(b)]);
        }
        t
    }
}

impl Fig2 {
    /// Per-benchmark mix table (the individual mixes the paper defers
    /// to its companion technical report).
    pub fn per_benchmark_table(&self) -> Table {
        let mut t = Table::new(
            "Instruction mix per benchmark",
            &[
                "benchmark",
                "mode",
                "memory",
                "transfers",
                "indirect-of-transfers",
            ],
        );
        for (name, mi, mj) in &self.per_benchmark {
            t.row(vec![
                (*name).into(),
                "interp".into(),
                pct(mi.memory_fraction()),
                pct(mi.transfer_fraction()),
                pct(mi.indirect_share_of_transfers()),
            ]);
            t.row(vec![
                (*name).into(),
                "jit".into(),
                pct(mj.memory_fraction()),
                pct(mj.transfer_fraction()),
                pct(mj.indirect_share_of_transfers()),
            ]);
        }
        t
    }
}

/// Runs the Figure 2 experiment: one job per benchmark × mode, with
/// per-mode cumulative mixes merged in canonical suite order.
pub fn run(size: Size) -> Fig2 {
    let work = jobs::cross(&jobs::prebuild(suite(), size), &Mode::BOTH);
    let mixes = jobs::par_map(&work, |(w, mode)| {
        let mut mix = InstMix::new();
        tape::replay(w, *mode, &mut mix);
        mix
    });

    let mut interp = InstMix::new();
    let mut jit = InstMix::new();
    let mut per_benchmark = Vec::new();
    for (pair, mix_pair) in work.chunks(2).zip(mixes.chunks(2)) {
        let (mi, mj) = (&mix_pair[0], &mix_pair[1]);
        interp.merge(mi);
        jit.merge(mj);
        per_benchmark.push((pair[0].0.spec.name, mi.clone(), mj.clone()));
    }
    Fig2 {
        interp,
        jit,
        per_benchmark,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_shape_matches_paper() {
        let f = run(Size::Tiny);
        // Memory heavier under interpretation.
        assert!(f.interp.memory_fraction() > f.jit.memory_fraction());
        // Both in a plausible band.
        assert!(f.interp.memory_fraction() > 0.30 && f.interp.memory_fraction() < 0.60);
        assert!(f.jit.memory_fraction() > 0.10 && f.jit.memory_fraction() < 0.45);
        // Indirect transfers dominate the interpreter's control flow.
        assert!(f.interp.indirect_share_of_transfers() > f.jit.indirect_share_of_transfers() * 1.5);
        assert_eq!(f.table().len(), 10);
    }
}
