//! Figure 5 — cache misses within the translate portion of JIT
//! execution.
//!
//! The paper isolates the translator: its I-cache misses are ~30% of
//! all I-misses (less for `jack`/`mtrt`), its D-cache misses are
//! 40–80% of all D-misses, and ~60% of the translate-portion misses
//! are writes (code generation/installation).

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::{pct, Table};
use crate::tape;
use jrt_cache::{CacheConfig, SplitSweep};
use jrt_workloads::{suite, Size};

/// One benchmark's translate-portion shares.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Translate share of all I-cache misses.
    pub i_share: f64,
    /// Translate share of all D-cache misses.
    pub d_share: f64,
    /// Write fraction of the translate portion's D-misses.
    pub write_share_in_translate: f64,
    /// I-cache miss rate inside translate.
    pub i_rate_translate: f64,
    /// I-cache miss rate outside translate.
    pub i_rate_rest: f64,
}

/// The full Figure 5 result.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Rows in suite order.
    pub rows: Vec<Fig5Row>,
}

impl Fig5 {
    /// Renders the table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 5: misses within the translate portion (JIT mode, 64K caches)",
            &[
                "benchmark",
                "I-miss share",
                "D-miss share",
                "writes in xlate D-misses",
                "I-rate xlate",
                "I-rate rest",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.into(),
                pct(r.i_share),
                pct(r.d_share),
                pct(r.write_share_in_translate),
                pct(r.i_rate_translate),
                pct(r.i_rate_rest),
            ]);
        }
        t
    }
}

fn run_one(w: &Workload) -> Fig5Row {
    let mut sweep = SplitSweep::new(
        &[CacheConfig::paper_l1_inst()],
        &[CacheConfig::paper_l1_data()],
    );
    tape::for_each_block(w, Mode::Jit, |b| sweep.consume_block(b));
    let i = &sweep.icache().results()[0];
    let d = &sweep.dcache().results()[0];
    Fig5Row {
        name: w.spec.name,
        i_share: i.translate_stats().misses() as f64 / i.stats().misses().max(1) as f64,
        d_share: d.translate_stats().misses() as f64 / d.stats().misses().max(1) as f64,
        write_share_in_translate: d.translate_stats().write_miss_fraction(),
        i_rate_translate: i.translate_stats().miss_rate(),
        i_rate_rest: i.rest_stats().miss_rate(),
    }
}

/// Runs the Figure 5 experiment, one JIT-mode job per benchmark.
pub fn run(size: Size) -> Fig5 {
    Fig5 {
        rows: jobs::par_map(&jobs::prebuild(suite(), size), run_one),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_dominated_by_write_misses() {
        let f = run(Size::Tiny);
        for r in &f.rows {
            // Code installation makes translate D-misses mostly writes.
            assert!(
                r.write_share_in_translate > 0.5,
                "{}: {}",
                r.name,
                r.write_share_in_translate
            );
            // The translator contributes a real share of all D misses.
            assert!(r.d_share > 0.1, "{}: {}", r.name, r.d_share);
        }
        // Translation-heavy benchmarks contribute a large share; at
        // Tiny the app footprints are cache-resident so even mpeg's
        // share is high — the S1 report shows the ordering.
    }
}
