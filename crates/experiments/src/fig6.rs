//! Figure 6 — cache-miss behaviour over time for `db`.
//!
//! The paper plots windowed miss counts over the course of execution:
//! the interpreter shows initial class-loading spikes then settles
//! into consistent locality, while the JIT shows many more spikes,
//! clustered where groups of methods get translated (write misses).

use crate::jobs::{self, Workload};
use crate::runner::Mode;
use crate::table::Table;
use crate::tape;
use jrt_cache::{SplitCaches, TimelineSample};
use jrt_workloads::{suite, Size};

/// Timeline for one mode.
#[derive(Debug, Clone)]
pub struct ModeTimeline {
    /// Execution mode.
    pub mode: Mode,
    /// Windowed samples.
    pub samples: Vec<TimelineSample>,
    /// Windows whose miss count exceeds 2× the mean.
    pub spikes: usize,
    /// Windows dominated by translate-phase misses (the clustered
    /// translation spikes; always zero under interpretation).
    pub translate_clusters: usize,
}

/// The full Figure 6 result.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Window size in instructions.
    pub window: u64,
    /// Interpreter timeline.
    pub interp: ModeTimeline,
    /// JIT timeline.
    pub jit: ModeTimeline,
}

impl Fig6 {
    /// Renders a compact table (one row per sampled window, capped).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Figure 6: db miss counts per window (D-cache misses)",
            &["window#", "interp", "jit"],
        );
        let n = self
            .interp
            .samples
            .len()
            .max(self.jit.samples.len())
            .min(40);
        for k in 0..n {
            let g = |s: &[TimelineSample]| {
                s.get(k)
                    .map_or("-".to_string(), |x| (x.d_misses + x.i_misses).to_string())
            };
            t.row(vec![
                k.to_string(),
                g(&self.interp.samples),
                g(&self.jit.samples),
            ]);
        }
        t
    }
}

fn run_one(w: &Workload, mode: Mode, window: u64) -> ModeTimeline {
    let mut caches = SplitCaches::paper_l1().with_timeline(window);
    tape::replay(w, mode, &mut caches);
    let timeline = caches.timeline().expect("timeline enabled").clone();
    ModeTimeline {
        mode,
        spikes: timeline.spike_count(2.0),
        translate_clusters: timeline.translate_clusters(),
        samples: timeline.samples().to_vec(),
    }
}

/// Runs the Figure 6 experiment. The window is fine-grained enough
/// that translation bursts are not diluted by surrounding class-load
/// and execution traffic (the paper samples at comparable
/// granularity).
pub fn run(size: Size) -> Fig6 {
    let window = match size {
        Size::Tiny => 10_000,
        _ => 20_000,
    };
    let spec = suite()
        .into_iter()
        .find(|s| s.name == "db")
        .expect("db in suite");
    let w = tape::workload(&spec, size);
    let mut timelines = jobs::par_map(&Mode::BOTH, |&mode| run_one(&w, mode, window));
    let jit = timelines.pop().expect("jit timeline");
    let interp = timelines.pop().expect("interp timeline");
    Fig6 {
        window,
        interp,
        jit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jit_timeline_is_spikier() {
        let f = run(Size::Tiny);
        assert!(f.interp.samples.len() > 3);
        assert!(f.jit.samples.len() > 3);
        // The interpreter's miss mass concentrates at startup (class
        // loading); the JIT shows translation spikes as well.
        assert!(f.jit.spikes >= 1, "jit spikes: {}", f.jit.spikes);
        // Translation clusters exist only under the JIT.
        assert!(f.jit.translate_clusters >= 1);
        assert_eq!(f.interp.translate_clusters, 0);
        // Startup window dominates the interpreter's tail windows.
        let first = f.interp.samples.first().unwrap();
        let tail = &f.interp.samples[f.interp.samples.len() / 2..];
        let tail_mean =
            tail.iter().map(|s| s.d_misses + s.i_misses).sum::<u64>() / tail.len() as u64;
        assert!(
            first.d_misses + first.i_misses > tail_mean,
            "startup {} vs steady {}",
            first.d_misses + first.i_misses,
            tail_mean
        );
    }
}
