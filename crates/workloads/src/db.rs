//! `db` — an in-memory record store (the SPEC `209.db` analog).
//!
//! A table of small `Record` objects serves a script of add / find /
//! modify / remove operations with periodic sorts. Like the original,
//! the program is made of many short methods operating on a small
//! database that is reused heavily — at `s1` the translation cost of
//! all those little methods is a large share of JIT execution time
//! (Figure 1's `db` bar). The container methods are `synchronized`,
//! mirroring the original's use of `java.util.Vector` — this is where
//! most of the suite's monitor traffic comes from (Section 5).

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 11;
const ID_SPACE: i32 = 512;

fn capacity(size: Size) -> i32 {
    size.scale(96)
}

fn num_ops(size: Size) -> i32 {
    size.scale(320)
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let cap = capacity(size);
    let ops = num_ops(size);

    let mut rec = ClassAsm::new("Record");
    rec.add_field("id");
    rec.add_field("val");

    let mut c = ClassAsm::new("Db");
    add_rng(&mut c);
    c.add_static_field("table");
    c.add_static_field("count");
    c.add_static_field("hits");

    // add(id, val)
    {
        let mut m = MethodAsm::new("add", 2).synchronized();
        let (id, val, r) = (0u8, 1u8, 2u8);
        m.new_obj("Record").astore(r);
        m.aload(r).iload(id).putfield("Record", "id");
        m.aload(r).iload(val).putfield("Record", "val");
        m.getstatic("Db", "table")
            .getstatic("Db", "count")
            .aload(r)
            .aastore();
        m.getstatic("Db", "count")
            .iconst(1)
            .iadd()
            .putstatic("Db", "count");
        m.ret();
        c.add_method(m);
    }

    // find(id) -> index or -1 (linear scan, like 209.db's Vector scans)
    {
        let mut m = MethodAsm::new("find", 1)
            .returns(RetKind::Int)
            .synchronized();
        let (id, i) = (0u8, 1u8);
        let top = m.new_label();
        let miss = m.new_label();
        let next = m.new_label();
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).getstatic("Db", "count").if_icmp_ge(miss);
        m.getstatic("Db", "table")
            .iload(i)
            .aaload()
            .getfield("Record", "id");
        m.iload(id).if_icmp_ne(next);
        m.iload(i).ireturn();
        m.bind(next);
        m.iinc(i, 1).goto(top);
        m.bind(miss);
        m.iconst(-1).ireturn();
        c.add_method(m);
    }

    // modify(id, dv): find and bump val; counts a hit on success
    {
        let mut m = MethodAsm::new("modify", 2).synchronized();
        let (id, dv, k, r) = (0u8, 1u8, 2u8, 3u8);
        let out = m.new_label();
        m.iload(id)
            .invokestatic("Db", "find", 1, RetKind::Int)
            .istore(k);
        m.iload(k).if_lt(out);
        m.getstatic("Db", "table").iload(k).aaload().astore(r);
        m.aload(r)
            .aload(r)
            .getfield("Record", "val")
            .iload(dv)
            .iadd()
            .putfield("Record", "val");
        m.getstatic("Db", "hits")
            .iconst(1)
            .iadd()
            .putstatic("Db", "hits");
        m.bind(out);
        m.ret();
        c.add_method(m);
    }

    // remove(id): find; replace with the last record
    {
        let mut m = MethodAsm::new("remove", 1).synchronized();
        let (id, k) = (0u8, 1u8);
        let out = m.new_label();
        m.iload(id)
            .invokestatic("Db", "find", 1, RetKind::Int)
            .istore(k);
        m.iload(k).if_lt(out);
        m.getstatic("Db", "count")
            .iconst(1)
            .isub()
            .putstatic("Db", "count");
        m.getstatic("Db", "table").iload(k);
        m.getstatic("Db", "table").getstatic("Db", "count").aaload();
        m.aastore();
        m.bind(out);
        m.ret();
        c.add_method(m);
    }

    // sort(): insertion sort by val then id (stable total order)
    {
        let mut m = MethodAsm::new("sort", 0);
        let (i, j, r) = (0u8, 1u8, 2u8);
        let top = m.new_label();
        let done = m.new_label();
        let inner = m.new_label();
        let inner_done = m.new_label();
        let shift = m.new_label();
        m.iconst(1).istore(i);
        m.bind(top);
        m.iload(i).getstatic("Db", "count").if_icmp_ge(done);
        m.getstatic("Db", "table").iload(i).aaload().astore(r);
        m.iload(i).iconst(1).isub().istore(j);
        m.bind(inner);
        m.iload(j).if_lt(inner_done);
        // key(table[j]) > key(r) ? shift : done
        m.getstatic("Db", "table")
            .iload(j)
            .aaload()
            .invokestatic("Db", "key", 1, RetKind::Int);
        m.aload(r).invokestatic("Db", "key", 1, RetKind::Int);
        m.if_icmp_gt(shift);
        m.goto(inner_done);
        m.bind(shift);
        m.getstatic("Db", "table").iload(j).iconst(1).iadd();
        m.getstatic("Db", "table").iload(j).aaload();
        m.aastore();
        m.iinc(j, -1).goto(inner);
        m.bind(inner_done);
        m.getstatic("Db", "table")
            .iload(j)
            .iconst(1)
            .iadd()
            .aload(r)
            .aastore();
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.ret();
        c.add_method(m);
    }

    // key(rec) -> sort key
    {
        let mut m = MethodAsm::new("key", 1).returns(RetKind::Int);
        m.aload(0).getfield("Record", "val").iconst(ID_SPACE).imul();
        m.aload(0).getfield("Record", "id").iadd();
        m.ireturn();
        c.add_method(m);
    }

    // checksum() over the table
    {
        let mut m = MethodAsm::new("checksum", 0).returns(RetKind::Int);
        let (s, i, r) = (0u8, 1u8, 2u8);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(s).iconst(0).istore(i);
        m.bind(top);
        m.iload(i).getstatic("Db", "count").if_icmp_ge(done);
        m.getstatic("Db", "table").iload(i).aaload().astore(r);
        m.iload(s).iconst(31).imul();
        m.aload(r).getfield("Record", "id").iadd();
        m.iconst(7).imul();
        m.aload(r).getfield("Record", "val").iadd();
        m.istore(s);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.iload(s).ireturn();
        c.add_method(m);
    }

    // main: drive the op script
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (k, op, lib) = (0u8, 1u8, 2u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(cap)
            .newarray(ArrayKind::Ref)
            .putstatic("Db", "table");
        m.iconst(SEED).invokestatic("Db", "srand", 1, RetKind::Void);
        let top = m.new_label();
        let done = m.new_label();
        let do_add = m.new_label();
        let do_find = m.new_label();
        let do_remove = m.new_label();
        let do_modify = m.new_label();
        let after = m.new_label();
        let no_sort = m.new_label();
        let add_full = m.new_label();
        m.iconst(0).istore(k);
        m.bind(top);
        m.iload(k).iconst(ops).if_icmp_ge(done);
        m.iconst(4)
            .invokestatic("Db", "next", 1, RetKind::Int)
            .istore(op);
        m.iload(op)
            .tableswitch(0, after, &[do_add, do_find, do_remove, do_modify]);
        m.bind(do_add);
        m.getstatic("Db", "count").iconst(cap).if_icmp_ge(add_full);
        m.iconst(ID_SPACE)
            .invokestatic("Db", "next", 1, RetKind::Int);
        m.iconst(1000).invokestatic("Db", "next", 1, RetKind::Int);
        m.invokestatic("Db", "add", 2, RetKind::Void);
        m.goto(after);
        m.bind(add_full);
        m.iconst(ID_SPACE)
            .invokestatic("Db", "next", 1, RetKind::Int);
        m.invokestatic("Db", "remove", 1, RetKind::Void);
        m.goto(after);
        m.bind(do_find);
        m.iconst(ID_SPACE)
            .invokestatic("Db", "next", 1, RetKind::Int);
        m.invokestatic("Db", "find", 1, RetKind::Int);
        m.pop();
        m.goto(after);
        m.bind(do_remove);
        m.iconst(ID_SPACE)
            .invokestatic("Db", "next", 1, RetKind::Int);
        m.invokestatic("Db", "remove", 1, RetKind::Void);
        m.goto(after);
        m.bind(do_modify);
        m.iconst(ID_SPACE)
            .invokestatic("Db", "next", 1, RetKind::Int);
        m.iconst(100).invokestatic("Db", "next", 1, RetKind::Int);
        m.invokestatic("Db", "modify", 2, RetKind::Void);
        m.goto(after);
        m.bind(after);
        // periodic sort
        m.iload(k).iconst(63).iand().if_ne(no_sort);
        m.invokestatic("Db", "sort", 0, RetKind::Void);
        m.bind(no_sort);
        m.iinc(k, 1).goto(top);
        m.bind(done);
        m.invokestatic("Db", "sort", 0, RetKind::Void);
        m.invokestatic("Db", "checksum", 0, RetKind::Int);
        m.getstatic("Db", "hits").iconst(16).ishl().ixor();
        m.iload(lib).ixor();
        m.ireturn();
        c.add_method(m);
    }

    let mut classes = vec![rec, c];
    classes.extend(library(size));
    Program::build(classes, "Db", "main").expect("db assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let cap = capacity(size) as usize;
    let ops = num_ops(size);
    let mut rng = HostRng::new(SEED);
    let mut table: Vec<(i32, i32)> = Vec::with_capacity(cap); // (id, val)
    let mut hits = 0i32;

    let key = |r: (i32, i32)| r.1 * ID_SPACE + r.0;
    let find = |table: &[(i32, i32)], id: i32| table.iter().position(|r| r.0 == id);

    for k in 0..ops {
        let op = rng.next(4);
        match op {
            0 => {
                if table.len() < cap {
                    let id = rng.next(ID_SPACE);
                    let val = rng.next(1000);
                    table.push((id, val));
                } else {
                    let id = rng.next(ID_SPACE);
                    if let Some(i) = find(&table, id) {
                        table.swap_remove(i);
                    }
                }
            }
            1 => {
                let _ = rng.next(ID_SPACE);
            }
            2 => {
                let id = rng.next(ID_SPACE);
                if let Some(i) = find(&table, id) {
                    table.swap_remove(i);
                }
            }
            _ => {
                let id = rng.next(ID_SPACE);
                let dv = rng.next(100);
                if let Some(i) = find(&table, id) {
                    table[i].1 += dv;
                    hits += 1;
                }
            }
        }
        if k & 63 == 0 {
            // Insertion sort matches the bytecode's stability.
            table.sort_by_key(|&r| key(r));
        }
    }
    table.sort_by_key(|&r| key(r));

    let mut s = 0i32;
    for &(id, val) in &table {
        s = s
            .wrapping_mul(31)
            .wrapping_add(id)
            .wrapping_mul(7)
            .wrapping_add(val);
    }
    s ^ (hits << 16) ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }
}
