//! `stream` — large-array streaming allocation.
//!
//! Each round allocates a fresh integer array, fills it from the
//! seeded LCG, folds it into a running checksum, and drops it; every
//! eighth array is parked in a small static `keep` table instead. The
//! arrays are large relative to a generational nursery, so this
//! workload exercises the allocator's size spectrum: rounds that fit
//! bump-allocate and die young, rounds that overflow mid-step are
//! pretenured straight into the old space, and the `keep` survivors
//! measure copy cost for bulky objects. Barrier traffic is low (one
//! `aastore`/`putstatic` per kept array) — the contrast with
//! [`churn`](crate::churn) separates copy cost from barrier cost in
//! the `gc_study` report.

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 37;
const KEEP: i32 = 4;

fn num_rounds(size: Size) -> i32 {
    size.scale(512)
}

fn len_of(r: i32) -> i32 {
    16 + (r * 11) % 48
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let rounds = num_rounds(size);

    let mut c = ClassAsm::new("Stream");
    add_rng(&mut c);
    c.add_static_field("keep");
    c.add_static_field("acc");

    // sum(arr) -> folded contents
    {
        let mut m = MethodAsm::new("sum", 1).returns(RetKind::Int);
        let (a, s, i) = (0u8, 1u8, 2u8);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(s).iconst(0).istore(i);
        m.bind(top);
        m.iload(i).aload(a).arraylength().if_icmp_ge(done);
        m.iload(s).iconst(31).imul();
        m.aload(a).iload(i).iaload().iadd().istore(s);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.iload(s).ireturn();
        c.add_method(m);
    }

    // main: the streaming loop
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (r, i, a, len, lib) = (0u8, 1u8, 2u8, 3u8, 4u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(KEEP)
            .newarray(ArrayKind::Ref)
            .putstatic("Stream", "keep");
        m.iconst(SEED)
            .invokestatic("Stream", "srand", 1, RetKind::Void);
        let top = m.new_label();
        let done = m.new_label();
        let fill = m.new_label();
        let fill_done = m.new_label();
        let no_keep = m.new_label();
        m.iconst(0).istore(r);
        m.bind(top);
        m.iload(r).iconst(rounds).if_icmp_ge(done);
        // len = 16 + (r * 11) % 48; a = new int[len]
        m.iload(r)
            .iconst(11)
            .imul()
            .iconst(48)
            .irem()
            .iconst(16)
            .iadd()
            .istore(len);
        m.iload(len).newarray(ArrayKind::Int).astore(a);
        // fill from the LCG
        m.iconst(0).istore(i);
        m.bind(fill);
        m.iload(i).iload(len).if_icmp_ge(fill_done);
        m.aload(a).iload(i);
        m.iconst(256)
            .invokestatic("Stream", "next", 1, RetKind::Int);
        m.iastore();
        m.iinc(i, 1).goto(fill);
        m.bind(fill_done);
        // acc = acc * 17 ^ sum(a)
        m.getstatic("Stream", "acc").iconst(17).imul();
        m.aload(a).invokestatic("Stream", "sum", 1, RetKind::Int);
        m.ixor().putstatic("Stream", "acc");
        // every 8th array survives in the keep table
        m.iload(r).iconst(7).iand().if_ne(no_keep);
        m.getstatic("Stream", "keep");
        m.iload(r).iconst(3).ishr().iconst(KEEP).irem();
        m.aload(a).aastore();
        m.bind(no_keep);
        m.iinc(r, 1).goto(top);
        m.bind(done);
        // fold the kept arrays once more — they must survive collection
        let ktop = m.new_label();
        let kdone = m.new_label();
        let kskip = m.new_label();
        m.iconst(0).istore(i);
        m.bind(ktop);
        m.iload(i).iconst(KEEP).if_icmp_ge(kdone);
        m.getstatic("Stream", "keep").iload(i).aaload();
        m.ifnull(kskip);
        m.getstatic("Stream", "acc");
        m.getstatic("Stream", "keep")
            .iload(i)
            .aaload()
            .invokestatic("Stream", "sum", 1, RetKind::Int);
        m.ixor().putstatic("Stream", "acc");
        m.bind(kskip);
        m.iinc(i, 1).goto(ktop);
        m.bind(kdone);
        m.getstatic("Stream", "acc").iload(lib).ixor().ireturn();
        c.add_method(m);
    }

    let mut classes = vec![c];
    classes.extend(library(size));
    Program::build(classes, "Stream", "main").expect("stream assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let rounds = num_rounds(size);
    let mut rng = HostRng::new(SEED);
    let mut keep: Vec<Option<Vec<i32>>> = vec![None; KEEP as usize];
    let mut acc = 0i32;

    let sum = |a: &[i32]| {
        a.iter()
            .fold(0i32, |s, &v| s.wrapping_mul(31).wrapping_add(v))
    };

    for r in 0..rounds {
        let len = len_of(r);
        let a: Vec<i32> = (0..len).map(|_| rng.next(256)).collect();
        acc = acc.wrapping_mul(17) ^ sum(&a);
        if r & 7 == 0 {
            keep[((r >> 3) % KEEP) as usize] = Some(a);
        }
    }
    for a in keep.iter().flatten() {
        acc ^= sum(a);
    }
    acc ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{GcConfig, Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn copies_bytes_under_tiny_nursery() {
        let p = program(Size::Tiny);
        let cfg = VmConfig::interpreter().with_gc(GcConfig::tiny_nursery());
        let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
        assert_eq!(r.exit_value, Some(expected(Size::Tiny)));
        assert!(r.counters.gc_minor > 0, "stream must overflow the nursery");
    }
}
