//! `graphmut` — pointer-chasing graph mutation.
//!
//! A ring of `Node` objects is built up front and survives the whole
//! run — after the first minor collection it lives in the old space.
//! The mutation loop then splices freshly allocated (young) nodes into
//! the ring: every splice writes an old-object `next` field to point
//! at a nursery node, which is exactly the old→young edge the
//! card-marking write barrier and remembered set exist to catch. The
//! interleaved pointer-chasing walks read through those edges, so a
//! missed barrier is not a silent slowdown but a wrong checksum. This
//! is the adversarial workload for remembered-set correctness; it also
//! has the highest barrier-per-bytecode ratio of the three GC
//! workloads.

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 43;
const HOPS: i32 = 8;

fn ring_size(size: Size) -> i32 {
    size.scale(128)
}

fn num_ops(size: Size) -> i32 {
    size.scale(4096)
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let n = ring_size(size);
    let ops = num_ops(size);

    let mut node = ClassAsm::new("Node");
    node.add_field("next");
    node.add_field("val");

    let mut c = ClassAsm::new("Graph");
    add_rng(&mut c);
    c.add_static_field("nodes");
    c.add_static_field("acc");

    // walk(start): chase `next` for HOPS hops, folding val into acc
    {
        let mut m = MethodAsm::new("walk", 1);
        let (p, i) = (0u8, 1u8);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iconst(HOPS).if_icmp_ge(done);
        m.getstatic("Graph", "acc").iconst(31).imul();
        m.aload(p).getfield("Node", "val").iadd();
        m.putstatic("Graph", "acc");
        m.aload(p).getfield("Node", "next").astore(p);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.ret();
        c.add_method(m);
    }

    // main: build the ring, then mutate and walk it
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (k, i, fresh, lib) = (0u8, 1u8, 2u8, 3u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(n)
            .newarray(ArrayKind::Ref)
            .putstatic("Graph", "nodes");
        m.iconst(SEED)
            .invokestatic("Graph", "srand", 1, RetKind::Void);
        // build: nodes[i] = new Node { val: i * 3 }
        let btop = m.new_label();
        let bdone = m.new_label();
        m.iconst(0).istore(i);
        m.bind(btop);
        m.iload(i).iconst(n).if_icmp_ge(bdone);
        m.getstatic("Graph", "nodes").iload(i);
        m.new_obj("Node").dup();
        m.iload(i).iconst(3).imul().putfield("Node", "val");
        m.aastore();
        m.iinc(i, 1).goto(btop);
        m.bind(bdone);
        // link the ring: nodes[i].next = nodes[(i + 1) % n]
        let ltop = m.new_label();
        let ldone = m.new_label();
        m.iconst(0).istore(i);
        m.bind(ltop);
        m.iload(i).iconst(n).if_icmp_ge(ldone);
        m.getstatic("Graph", "nodes").iload(i).aaload();
        m.getstatic("Graph", "nodes");
        m.iload(i).iconst(1).iadd().iconst(n).irem();
        m.aaload();
        m.putfield("Node", "next");
        m.iinc(i, 1).goto(ltop);
        m.bind(ldone);
        // mutate: splice young nodes behind random ring anchors
        let top = m.new_label();
        let done = m.new_label();
        let no_unlink = m.new_label();
        m.iconst(0).istore(k);
        m.bind(top);
        m.iload(k).iconst(ops).if_icmp_ge(done);
        m.iconst(n)
            .invokestatic("Graph", "next", 1, RetKind::Int)
            .istore(i);
        // fresh = new Node { val: k ^ (i * 5) }
        m.new_obj("Node").astore(fresh);
        m.aload(fresh);
        m.iload(k).iload(i).iconst(5).imul().ixor();
        m.putfield("Node", "val");
        // fresh.next = nodes[i].next (young→old: no remset needed)
        m.aload(fresh);
        m.getstatic("Graph", "nodes")
            .iload(i)
            .aaload()
            .getfield("Node", "next");
        m.putfield("Node", "next");
        // nodes[i].next = fresh (old→young: THE barrier edge)
        m.getstatic("Graph", "nodes").iload(i).aaload();
        m.aload(fresh);
        m.putfield("Node", "next");
        // walk from the anchor, crossing the spliced edge
        m.getstatic("Graph", "nodes").iload(i).aaload();
        m.invokestatic("Graph", "walk", 1, RetKind::Void);
        // every 4th iteration unlinks the young node again
        m.iload(k).iconst(3).iand().if_ne(no_unlink);
        m.getstatic("Graph", "nodes").iload(i).aaload();
        m.aload(fresh).getfield("Node", "next");
        m.putfield("Node", "next");
        m.bind(no_unlink);
        m.iinc(k, 1).goto(top);
        m.bind(done);
        m.getstatic("Graph", "acc").iload(lib).ixor().ireturn();
        c.add_method(m);
    }

    let mut classes = vec![node, c];
    classes.extend(library(size));
    Program::build(classes, "Graph", "main").expect("graphmut assembles")
}

/// Host-side reference implementation. Nodes live in an arena indexed
/// by allocation order; `ring[i]` holds the arena index of ring slot
/// `i`, mirroring the bytecode's object graph exactly.
pub fn expected(size: Size) -> i32 {
    let n = ring_size(size);
    let ops = num_ops(size);
    let mut rng = HostRng::new(SEED);
    let mut acc = 0i32;

    // arena of (next, val)
    let mut next: Vec<usize> = Vec::new();
    let mut val: Vec<i32> = Vec::new();
    for i in 0..n {
        next.push(0); // linked below
        val.push(i.wrapping_mul(3));
    }
    for (i, slot) in next.iter_mut().enumerate() {
        *slot = (i + 1) % n as usize;
    }

    for k in 0..ops {
        let i = rng.next(n) as usize;
        let fresh = next.len();
        val.push(k ^ (i as i32).wrapping_mul(5));
        next.push(next[i]);
        next[i] = fresh;
        // walk
        let mut p = i;
        for _ in 0..HOPS {
            acc = acc.wrapping_mul(31).wrapping_add(val[p]);
            p = next[p];
        }
        if k & 3 == 0 {
            next[i] = next[fresh];
        }
    }
    acc ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{GcConfig, Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn survives_tiny_nursery_with_barrier_traffic() {
        let p = program(Size::Tiny);
        let cfg = VmConfig::interpreter().with_gc(GcConfig::tiny_nursery());
        let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
        assert_eq!(r.exit_value, Some(expected(Size::Tiny)));
        assert!(r.counters.gc_minor > 0, "graphmut must trigger minors");
        assert!(
            r.counters.gc_barrier_insts > 0,
            "ref stores must emit barriers"
        );
    }
}
