//! `mpeg` — fixed-point block decoding (the SPEC `222.mpegaudio`
//! analog).
//!
//! Decodes a stream of 8×8 coefficient blocks: dequantization, a
//! separable integer inverse DCT (O(N²) 1-D transforms with a scaled
//! cosine table), and saturation. Like the original, virtually all
//! time is spent in a couple of tight integer kernels that are
//! re-entered for every block — the paper's best case for method
//! reuse and JIT amortization.

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 31;
/// Cosine table scale (Q11 fixed point).
const CSCALE: i32 = 2048;

fn num_blocks(size: Size) -> i32 {
    size.scale(144)
}

/// The Q11 cosine table `round(cos((2x+1)uπ/16) * 2048)`, u-major.
fn cos_table() -> [i32; 64] {
    let mut t = [0i32; 64];
    for u in 0..8 {
        for x in 0..8 {
            let v = ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            t[u * 8 + x] = (v * f64::from(CSCALE)).round() as i32;
        }
    }
    t
}

/// Quantization table: `1 + ((u + v*2) % 12)`.
fn quant(i: usize) -> i32 {
    1 + ((i % 8) + (i / 8) * 2) as i32 % 12
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let blocks = num_blocks(size);
    let cos = cos_table();

    let mut c = ClassAsm::new("Mpeg");
    add_rng(&mut c);
    for f in ["cos", "quant", "blk", "tmp"] {
        c.add_static_field(f);
    }

    // gen(): fill blk with sparse coefficients
    {
        let mut m = MethodAsm::new("gen", 0);
        let i = 0u8;
        let top = m.new_label();
        let done = m.new_label();
        let sparse = m.new_label();
        let store = m.new_label();
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iconst(64).if_icmp_ge(done);
        // 1-in-4 coefficients nonzero (plus DC handled below)
        m.iconst(4)
            .invokestatic("Mpeg", "next", 1, RetKind::Int)
            .if_ne(sparse);
        m.iconst(512)
            .invokestatic("Mpeg", "next", 1, RetKind::Int)
            .iconst(256)
            .isub();
        m.goto(store);
        m.bind(sparse);
        m.iconst(0);
        m.bind(store);
        m.istore(1);
        m.getstatic("Mpeg", "blk").iload(i).iload(1).iastore();
        m.iinc(i, 1).goto(top);
        m.bind(done);
        // DC always present
        m.getstatic("Mpeg", "blk").iconst(0);
        m.iconst(1024)
            .invokestatic("Mpeg", "next", 1, RetKind::Int)
            .iconst(512)
            .isub();
        m.iastore();
        m.ret();
        c.add_method(m);
    }

    // dequant(): blk[i] *= quant[i]
    {
        let mut m = MethodAsm::new("dequant", 0);
        let i = 0u8;
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iconst(64).if_icmp_ge(done);
        m.getstatic("Mpeg", "blk").iload(i);
        m.getstatic("Mpeg", "blk").iload(i).iaload();
        m.getstatic("Mpeg", "quant").iload(i).iaload();
        m.imul().iastore();
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.ret();
        c.add_method(m);
    }

    // idct1d(src, dst, base, stride): dst[base + x*stride] =
    //   (sum_u cos[u*8+x] * src[base + u*stride]) >> 11
    {
        let mut m = MethodAsm::new("idct1d", 4);
        let (src, dst, base, stride, x, u, acc) = (0u8, 1u8, 2u8, 3u8, 4u8, 5u8, 6u8);
        let xloop = m.new_label();
        let xdone = m.new_label();
        let uloop = m.new_label();
        let udone = m.new_label();
        m.iconst(0).istore(x);
        m.bind(xloop);
        m.iload(x).iconst(8).if_icmp_ge(xdone);
        m.iconst(0).istore(acc);
        m.iconst(0).istore(u);
        m.bind(uloop);
        m.iload(u).iconst(8).if_icmp_ge(udone);
        m.iload(acc);
        m.getstatic("Mpeg", "cos")
            .iload(u)
            .iconst(8)
            .imul()
            .iload(x)
            .iadd()
            .iaload();
        m.aload(src)
            .iload(base)
            .iload(u)
            .iload(stride)
            .imul()
            .iadd()
            .iaload();
        m.imul().iadd().istore(acc);
        m.iinc(u, 1).goto(uloop);
        m.bind(udone);
        m.aload(dst)
            .iload(base)
            .iload(x)
            .iload(stride)
            .imul()
            .iadd();
        m.iload(acc).iconst(11).ishr();
        m.iastore();
        m.iinc(x, 1).goto(xloop);
        m.bind(xdone);
        m.ret();
        c.add_method(m);
    }

    // idct2d(): rows blk->tmp, then columns tmp->blk, then saturate
    {
        let mut m = MethodAsm::new("idct2d", 0);
        let (r, col, i, v) = (0u8, 1u8, 2u8, 3u8);
        let rows = m.new_label();
        let rdone = m.new_label();
        let cols = m.new_label();
        let cdone = m.new_label();
        m.iconst(0).istore(r);
        m.bind(rows);
        m.iload(r).iconst(8).if_icmp_ge(rdone);
        m.getstatic("Mpeg", "blk").getstatic("Mpeg", "tmp");
        m.iload(r)
            .iconst(8)
            .imul()
            .iconst(1)
            .invokestatic("Mpeg", "idct1d", 4, RetKind::Void);
        m.iinc(r, 1).goto(rows);
        m.bind(rdone);
        m.iconst(0).istore(col);
        m.bind(cols);
        m.iload(col).iconst(8).if_icmp_ge(cdone);
        m.getstatic("Mpeg", "tmp").getstatic("Mpeg", "blk");
        m.iload(col)
            .iconst(8)
            .invokestatic("Mpeg", "idct1d", 4, RetKind::Void);
        m.iinc(col, 1).goto(cols);
        m.bind(cdone);
        // saturation pass to [-256, 255]
        let sat = m.new_label();
        let sdone = m.new_label();
        let clamp_lo = m.new_label();
        let clamp_hi = m.new_label();
        let store = m.new_label();
        m.iconst(0).istore(i);
        m.bind(sat);
        m.iload(i).iconst(64).if_icmp_ge(sdone);
        m.getstatic("Mpeg", "blk").iload(i).iaload().istore(v);
        m.iload(v).iconst(-256).if_icmp_lt(clamp_lo);
        m.iload(v).iconst(255).if_icmp_gt(clamp_hi);
        m.goto(store);
        m.bind(clamp_lo);
        m.iconst(-256).istore(v);
        m.goto(store);
        m.bind(clamp_hi);
        m.iconst(255).istore(v);
        m.bind(store);
        m.getstatic("Mpeg", "blk").iload(i).iload(v).iastore();
        m.iinc(i, 1).goto(sat);
        m.bind(sdone);
        m.ret();
        c.add_method(m);
    }

    // main: decode `blocks` blocks, fold a checksum
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (b, s, i, lib) = (0u8, 1u8, 2u8, 3u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(64)
            .newarray(ArrayKind::Int)
            .putstatic("Mpeg", "cos");
        m.iconst(64)
            .newarray(ArrayKind::Int)
            .putstatic("Mpeg", "quant");
        m.iconst(64)
            .newarray(ArrayKind::Int)
            .putstatic("Mpeg", "blk");
        m.iconst(64)
            .newarray(ArrayKind::Int)
            .putstatic("Mpeg", "tmp");
        for (i, &cv) in cos.iter().enumerate() {
            m.getstatic("Mpeg", "cos")
                .iconst(i as i32)
                .iconst(cv)
                .iastore();
            m.getstatic("Mpeg", "quant")
                .iconst(i as i32)
                .iconst(quant(i))
                .iastore();
        }
        m.iconst(SEED)
            .invokestatic("Mpeg", "srand", 1, RetKind::Void);
        let top = m.new_label();
        let done = m.new_label();
        let fold = m.new_label();
        let fdone = m.new_label();
        m.iconst(0).istore(b).iconst(0).istore(s);
        m.bind(top);
        m.iload(b).iconst(blocks).if_icmp_ge(done);
        m.invokestatic("Mpeg", "gen", 0, RetKind::Void);
        m.invokestatic("Mpeg", "dequant", 0, RetKind::Void);
        m.invokestatic("Mpeg", "idct2d", 0, RetKind::Void);
        m.iconst(0).istore(i);
        m.bind(fold);
        m.iload(i).iconst(64).if_icmp_ge(fdone);
        m.iload(s).iconst(31).imul();
        m.getstatic("Mpeg", "blk").iload(i).iaload().iadd();
        m.istore(s);
        m.iinc(i, 1).goto(fold);
        m.bind(fdone);
        m.iinc(b, 1).goto(top);
        m.bind(done);
        m.iload(s).iload(lib).ixor().ireturn();
        c.add_method(m);
    }

    let mut classes = vec![c];
    classes.extend(library(size));
    Program::build(classes, "Mpeg", "main").expect("mpeg assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let blocks = num_blocks(size);
    let cos = cos_table();
    let mut rng = HostRng::new(SEED);
    let mut s = 0i32;

    for _ in 0..blocks {
        let mut blk = [0i32; 64];
        for slot in blk.iter_mut() {
            *slot = if rng.next(4) == 0 {
                rng.next(512) - 256
            } else {
                0
            };
        }
        blk[0] = rng.next(1024) - 512;
        for (i, slot) in blk.iter_mut().enumerate() {
            *slot = slot.wrapping_mul(quant(i));
        }
        // rows
        let mut tmp = [0i32; 64];
        for r in 0..8 {
            idct1d(&cos, &blk, &mut tmp, r * 8, 1);
        }
        // cols
        let mut out = [0i32; 64];
        for c in 0..8 {
            idct1d(&cos, &tmp, &mut out, c, 8);
        }
        for v in out.iter_mut() {
            *v = (*v).clamp(-256, 255);
        }
        for &v in &out {
            s = s.wrapping_mul(31).wrapping_add(v);
        }
    }
    s ^ host_lib_checksum(size)
}

fn idct1d(cos: &[i32; 64], src: &[i32; 64], dst: &mut [i32; 64], base: usize, stride: usize) {
    for x in 0..8 {
        let mut acc = 0i32;
        for u in 0..8 {
            acc = acc.wrapping_add(cos[u * 8 + x].wrapping_mul(src[base + u * stride]));
        }
        dst[base + x * stride] = acc >> 11;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn cos_table_is_symmetric_dc() {
        let t = cos_table();
        for (x, &v) in t.iter().take(8).enumerate() {
            assert_eq!(v, CSCALE, "u=0 row is flat at x={x}");
        }
    }
}
