//! `hello` — the startup-dominated micro-benchmark.
//!
//! The paper runs a `HelloWorld` program alongside SpecJVM98 to
//! observe the JVM "loading and resolving system classes during
//! system initialization": nearly all of its time is class loading
//! and, in JIT mode, translation that can never be amortized.

use crate::common::{host_lib_checksum, library, sys_class, Size};
use jrt_bytecode::{ClassAsm, MethodAsm, Program, RetKind};

/// Builds the program (`size` only affects the library scale).
pub fn program(size: Size) -> Program {
    let mut main = ClassAsm::new("Main");
    let mut greet = MethodAsm::new("greet", 0);
    for ch in "HELLO\n".chars() {
        greet
            .iconst(ch as i32)
            .invokestatic("Sys", "print_char", 1, RetKind::Void);
    }
    greet.ret();
    main.add_method(greet);

    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.invokestatic("LibInit", "boot", 0, RetKind::Int).istore(0);
    m.invokestatic("Main", "greet", 0, RetKind::Void);
    m.iconst(42).iload(0).ixor().ireturn();
    main.add_method(m);

    let mut classes = vec![main, sys_class()];
    classes.extend(library(size));
    Program::build(classes, "Main", "main").expect("hello assembles")
}

/// Expected exit value.
pub fn expected(size: Size) -> i32 {
    42 ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn prints_hello_in_both_modes() {
        let p = program(Size::S1);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(expected(Size::S1)));
            assert_eq!(r.output.chars, "HELLO\n");
        }
    }
}
