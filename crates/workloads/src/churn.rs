//! `churn` — allocation churn with a small survivor window.
//!
//! The generational-GC stress profile the paper's heap study motivates:
//! a tight loop allocates a short-lived two-field `Cell` per iteration,
//! reads it back immediately, and then drops it — the overwhelming
//! majority of objects die in the nursery. Roughly one in seven cells
//! is parked in a small static window (an `aastore` write barrier),
//! so every minor collection copies a thin survivor tail while the
//! rest of the nursery is reclaimed for free. Survival rate is the
//! lowest of the three GC workloads; minor-collection count is the
//! highest.

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 29;
const WINDOW: i32 = 16;

fn num_ops(size: Size) -> i32 {
    size.scale(8192)
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let ops = num_ops(size);

    let mut cell = ClassAsm::new("Cell");
    cell.add_field("a");
    cell.add_field("b");

    let mut c = ClassAsm::new("Churn");
    add_rng(&mut c);
    c.add_static_field("window");
    c.add_static_field("acc");

    // fold(): acc ^= window[i].a + i for every occupied window slot
    {
        let mut m = MethodAsm::new("fold", 0);
        let i = 0u8;
        let top = m.new_label();
        let done = m.new_label();
        let skip = m.new_label();
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iconst(WINDOW).if_icmp_ge(done);
        m.getstatic("Churn", "window").iload(i).aaload();
        m.ifnull(skip);
        m.getstatic("Churn", "acc");
        m.getstatic("Churn", "window")
            .iload(i)
            .aaload()
            .getfield("Cell", "a");
        m.iload(i).iadd().ixor().putstatic("Churn", "acc");
        m.bind(skip);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.ret();
        c.add_method(m);
    }

    // main: the churn loop
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (k, v, r, lib) = (0u8, 1u8, 2u8, 3u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(WINDOW)
            .newarray(ArrayKind::Ref)
            .putstatic("Churn", "window");
        m.iconst(SEED)
            .invokestatic("Churn", "srand", 1, RetKind::Void);
        let top = m.new_label();
        let done = m.new_label();
        let no_keep = m.new_label();
        let no_fold = m.new_label();
        m.iconst(0).istore(k);
        m.bind(top);
        m.iload(k).iconst(ops).if_icmp_ge(done);
        m.iconst(1000)
            .invokestatic("Churn", "next", 1, RetKind::Int)
            .istore(v);
        // r = new Cell { a: v, b: k & 255 }
        m.new_obj("Cell").astore(r);
        m.aload(r).iload(v).putfield("Cell", "a");
        m.aload(r).iload(k).iconst(255).iand().putfield("Cell", "b");
        // acc = acc * 31 + r.a + r.b — the cell is live only here
        m.getstatic("Churn", "acc").iconst(31).imul();
        m.aload(r).getfield("Cell", "a").iadd();
        m.aload(r).getfield("Cell", "b").iadd();
        m.putstatic("Churn", "acc");
        // ~1/7 of cells survive into the window (aastore barrier)
        m.iload(v).iconst(7).irem().if_ne(no_keep);
        m.getstatic("Churn", "window");
        m.iload(k).iconst(WINDOW).irem();
        m.aload(r).aastore();
        m.bind(no_keep);
        // periodic window fold keeps survivors genuinely live
        m.iload(k).iconst(63).iand().if_ne(no_fold);
        m.invokestatic("Churn", "fold", 0, RetKind::Void);
        m.bind(no_fold);
        m.iinc(k, 1).goto(top);
        m.bind(done);
        m.invokestatic("Churn", "fold", 0, RetKind::Void);
        m.getstatic("Churn", "acc").iload(lib).ixor().ireturn();
        c.add_method(m);
    }

    let mut classes = vec![cell, c];
    classes.extend(library(size));
    Program::build(classes, "Churn", "main").expect("churn assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let ops = num_ops(size);
    let mut rng = HostRng::new(SEED);
    let mut window: Vec<Option<i32>> = vec![None; WINDOW as usize]; // slot -> a
    let mut acc = 0i32;

    let fold = |window: &[Option<i32>], acc: &mut i32| {
        for (i, slot) in window.iter().enumerate() {
            if let Some(a) = slot {
                *acc ^= a.wrapping_add(i as i32);
            }
        }
    };

    for k in 0..ops {
        let v = rng.next(1000);
        let (a, b) = (v, k & 255);
        acc = acc.wrapping_mul(31).wrapping_add(a).wrapping_add(b);
        if v % 7 == 0 {
            window[(k % WINDOW) as usize] = Some(a);
        }
        if k & 63 == 0 {
            fold(&window, &mut acc);
        }
    }
    fold(&window, &mut acc);
    acc ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{GcConfig, Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn triggers_minor_collections_under_tiny_nursery() {
        let p = program(Size::Tiny);
        let cfg = VmConfig::interpreter().with_gc(GcConfig::tiny_nursery());
        let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
        assert_eq!(r.exit_value, Some(expected(Size::Tiny)));
        assert!(r.counters.gc_minor > 0, "churn must stress the nursery");
    }
}
