//! `mtrt` — a two-thread fixed-point ray tracer (the SPEC `227.mtrt`
//! analog, the suite's only multithreaded program).
//!
//! Two worker threads render disjoint halves of a small sphere scene
//! into a shared framebuffer (integer math throughout, with a
//! bit-by-bit integer square root), bumping a *synchronized* progress
//! counter per row — which makes `mtrt` the benchmark that exercises
//! monitor contention (case (d) of the Section 5 classification),
//! exactly as in the paper.

use crate::common::{add_rng, host_lib_checksum, library, sys_class, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 41;
const NSPHERES: i32 = 5;
const HEIGHT: i32 = 24;

fn width(size: Size) -> i32 {
    size.scale(96)
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let w = width(size);

    // Scene holds the spheres and framebuffer as statics, the RNG,
    // the intersection math, and the synchronized progress counter.
    let mut scene = ClassAsm::new("Scene");
    add_rng(&mut scene);
    for f in ["cx", "cy", "cz", "cr", "fb", "progress"] {
        scene.add_static_field(f);
    }

    // bump(): synchronized progress counter — the contended monitor.
    {
        let mut m = MethodAsm::new("bump", 0).synchronized();
        m.getstatic("Scene", "progress")
            .iconst(1)
            .iadd()
            .putstatic("Scene", "progress");
        m.ret();
        scene.add_method(m);
    }

    // isqrt(v): bit-by-bit integer square root
    {
        let mut m = MethodAsm::new("isqrt", 1).returns(RetKind::Int);
        let (v, res, bit) = (0u8, 1u8, 2u8);
        let shrink = m.new_label();
        let shrink_top = m.new_label();
        let loop_top = m.new_label();
        let done = m.new_label();
        let no_sub = m.new_label();
        let cont = m.new_label();
        let nonpos = m.new_label();
        m.iload(v).if_le(nonpos);
        m.iconst(0).istore(res);
        m.iconst(1 << 30).istore(bit);
        m.bind(shrink_top);
        m.iload(bit).iload(v).if_icmp_le(shrink);
        m.iload(bit).iconst(2).iushr().istore(bit);
        m.goto(shrink_top);
        m.bind(shrink);
        m.bind(loop_top);
        m.iload(bit).if_eq(done);
        m.iload(v).iload(res).iload(bit).iadd().if_icmp_lt(no_sub);
        m.iload(v).iload(res).iload(bit).iadd().isub().istore(v);
        m.iload(res).iconst(1).iushr().iload(bit).iadd().istore(res);
        m.goto(cont);
        m.bind(no_sub);
        m.iload(res).iconst(1).iushr().istore(res);
        m.bind(cont);
        m.iload(bit).iconst(2).iushr().istore(bit);
        m.goto(loop_top);
        m.bind(done);
        m.iload(res).ireturn();
        m.bind(nonpos);
        m.iconst(0).ireturn();
        scene.add_method(m);
    }

    // trace(px, py) -> pixel value
    //
    // Ray from origin (0,0,-200) with direction (px-W/2, py-H/2, 32);
    // nearest sphere by discriminant test; shade from the
    // intersection parameter, background is a cheap hash.
    {
        let mut m = MethodAsm::new("trace", 2).returns(RetKind::Int);
        let (px, py, dx, dy, dz, best, hit, s, ox, oy, oz, b, cc, disc, t) = (
            0u8, 1u8, 2u8, 3u8, 4u8, 5u8, 6u8, 7u8, 8u8, 9u8, 10u8, 11u8, 12u8, 13u8, 14u8,
        );
        let sloop = m.new_label();
        let sdone = m.new_label();
        let snext = m.new_label();
        let take = m.new_label();
        let background = m.new_label();
        m.iload(px).iconst(w / 2).isub().istore(dx);
        m.iload(py).iconst(HEIGHT / 2).isub().istore(dy);
        m.iconst(32).istore(dz);
        m.iconst(1 << 30).istore(best);
        m.iconst(-1).istore(hit);
        m.iconst(0).istore(s);
        m.bind(sloop);
        m.iload(s).iconst(NSPHERES).if_icmp_ge(sdone);
        // oc = center - origin ; origin = (0, 0, -200)
        m.getstatic("Scene", "cx").iload(s).iaload().istore(ox);
        m.getstatic("Scene", "cy").iload(s).iaload().istore(oy);
        m.getstatic("Scene", "cz")
            .iload(s)
            .iaload()
            .iconst(200)
            .iadd()
            .istore(oz);
        // b = oc . dir
        m.iload(ox).iload(dx).imul();
        m.iload(oy).iload(dy).imul().iadd();
        m.iload(oz).iload(dz).imul().iadd();
        m.istore(b);
        m.iload(b).if_le(snext); // sphere behind the ray
                                 // cc = |oc|^2 - r^2
        m.iload(ox).iload(ox).imul();
        m.iload(oy).iload(oy).imul().iadd();
        m.iload(oz).iload(oz).imul().iadd();
        m.getstatic("Scene", "cr")
            .iload(s)
            .iaload()
            .dup()
            .imul()
            .isub();
        m.istore(cc);
        // disc = b*b/|d|^2 - cc   (scaled discriminant test)
        m.iload(b).iload(b).imul();
        m.iload(dx)
            .iload(dx)
            .imul()
            .iload(dy)
            .iload(dy)
            .imul()
            .iadd()
            .iload(dz)
            .iload(dz)
            .imul()
            .iadd();
        m.idiv();
        m.iload(cc).isub();
        m.istore(disc);
        m.iload(disc).if_le(snext);
        // t = b - isqrt(disc * |d|^2-ish): use t = b - isqrt(disc)*8
        m.iload(b);
        m.iload(disc)
            .invokestatic("Scene", "isqrt", 1, RetKind::Int)
            .iconst(8)
            .imul();
        m.isub().istore(t);
        m.iload(t).if_le(snext);
        m.iload(t).iload(best).if_icmp_ge(snext);
        m.goto(take);
        m.bind(take);
        m.iload(t).istore(best);
        m.iload(s).istore(hit);
        m.bind(snext);
        m.iinc(s, 1).goto(sloop);
        m.bind(sdone);
        m.iload(hit).if_lt(background);
        // shade: mix sphere id and depth
        m.iload(hit).iconst(1).iadd().iconst(40).imul();
        m.iload(best).iconst(10).ishr().iconst(63).iand().iadd();
        m.iconst(255).iand();
        m.ireturn();
        m.bind(background);
        m.iload(px).iload(py).ixor().iconst(15).iand();
        m.ireturn();
        scene.add_method(m);
    }

    // Worker: renders rows [from, to)
    let mut worker = ClassAsm::new("Worker");
    worker.add_field("from");
    worker.add_field("to");
    {
        let mut m = MethodAsm::new_instance("run", 0);
        let (y, x) = (1u8, 2u8);
        let yloop = m.new_label();
        let ydone = m.new_label();
        let xloop = m.new_label();
        let xdone = m.new_label();
        m.aload(0).getfield("Worker", "from").istore(y);
        m.bind(yloop);
        m.iload(y)
            .aload(0)
            .getfield("Worker", "to")
            .if_icmp_ge(ydone);
        m.iconst(0).istore(x);
        m.bind(xloop);
        m.iload(x).iconst(w).if_icmp_ge(xdone);
        m.getstatic("Scene", "fb")
            .iload(y)
            .iconst(w)
            .imul()
            .iload(x)
            .iadd();
        m.iload(x)
            .iload(y)
            .invokestatic("Scene", "trace", 2, RetKind::Int);
        m.iastore();
        m.iinc(x, 1).goto(xloop);
        m.bind(xdone);
        m.invokestatic("Scene", "bump", 0, RetKind::Void);
        m.iinc(y, 1).goto(yloop);
        m.bind(ydone);
        m.ret();
        worker.add_method(m);
    }

    // Main: build scene, spawn two workers, join, checksum.
    let mut main = ClassAsm::new("Main");
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (w0, w1, t0, t1, s, i, lib) = (0u8, 1u8, 2u8, 3u8, 4u8, 5u8, 6u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        for f in ["cx", "cy", "cz", "cr"] {
            m.iconst(NSPHERES)
                .newarray(ArrayKind::Int)
                .putstatic("Scene", f);
        }
        m.iconst(w * HEIGHT)
            .newarray(ArrayKind::Int)
            .putstatic("Scene", "fb");
        m.iconst(SEED)
            .invokestatic("Scene", "srand", 1, RetKind::Void);
        let gen = m.new_label();
        let gdone = m.new_label();
        m.iconst(0).istore(i);
        m.bind(gen);
        m.iload(i).iconst(NSPHERES).if_icmp_ge(gdone);
        m.getstatic("Scene", "cx")
            .iload(i)
            .iconst(200)
            .invokestatic("Scene", "next", 1, RetKind::Int)
            .iconst(100)
            .isub()
            .iastore();
        m.getstatic("Scene", "cy")
            .iload(i)
            .iconst(200)
            .invokestatic("Scene", "next", 1, RetKind::Int)
            .iconst(100)
            .isub()
            .iastore();
        m.getstatic("Scene", "cz")
            .iload(i)
            .iconst(160)
            .invokestatic("Scene", "next", 1, RetKind::Int)
            .iconst(40)
            .iadd()
            .iastore();
        m.getstatic("Scene", "cr")
            .iload(i)
            .iconst(30)
            .invokestatic("Scene", "next", 1, RetKind::Int)
            .iconst(10)
            .iadd()
            .iastore();
        m.iinc(i, 1).goto(gen);
        m.bind(gdone);
        // two workers over the top/bottom halves
        m.new_obj("Worker").astore(w0);
        m.aload(w0).iconst(0).putfield("Worker", "from");
        m.aload(w0).iconst(HEIGHT / 2).putfield("Worker", "to");
        m.new_obj("Worker").astore(w1);
        m.aload(w1).iconst(HEIGHT / 2).putfield("Worker", "from");
        m.aload(w1).iconst(HEIGHT).putfield("Worker", "to");
        m.aload(w0)
            .invokestatic("Sys", "spawn", 1, RetKind::Int)
            .istore(t0);
        m.aload(w1)
            .invokestatic("Sys", "spawn", 1, RetKind::Int)
            .istore(t1);
        m.iload(t0).invokestatic("Sys", "join", 1, RetKind::Void);
        m.iload(t1).invokestatic("Sys", "join", 1, RetKind::Void);
        // checksum framebuffer
        let fold = m.new_label();
        let fdone = m.new_label();
        m.iconst(0).istore(s).iconst(0).istore(i);
        m.bind(fold);
        m.iload(i).iconst(w * HEIGHT).if_icmp_ge(fdone);
        m.iload(s).iconst(31).imul();
        m.getstatic("Scene", "fb").iload(i).iaload().iadd();
        m.istore(s);
        m.iinc(i, 1).goto(fold);
        m.bind(fdone);
        m.iload(s)
            .getstatic("Scene", "progress")
            .iconst(24)
            .ishl()
            .ixor();
        m.iload(lib).ixor();
        m.ireturn();
        main.add_method(m);
    }

    let mut classes = vec![scene, worker, main, sys_class()];
    classes.extend(library(size));
    Program::build(classes, "Main", "main").expect("mtrt assembles")
}

/// Host-side reference implementation (worker results are independent
/// of scheduling, so the checksum is deterministic).
pub fn expected(size: Size) -> i32 {
    let w = width(size);
    let mut rng = HostRng::new(SEED);
    let n = NSPHERES as usize;
    let (mut cx, mut cy, mut cz, mut cr) = (vec![0; n], vec![0; n], vec![0; n], vec![0; n]);
    for i in 0..n {
        cx[i] = rng.next(200) - 100;
        cy[i] = rng.next(200) - 100;
        cz[i] = rng.next(160) + 40;
        cr[i] = rng.next(30) + 10;
    }

    let isqrt = |v: i32| -> i32 {
        if v <= 0 {
            return 0;
        }
        let (mut v, mut res, mut bit) = (v, 0i32, 1i32 << 30);
        while bit > v {
            bit = ((bit as u32) >> 2) as i32;
        }
        while bit != 0 {
            if v >= res + bit {
                v -= res + bit;
                res = (((res as u32) >> 1) as i32) + bit;
            } else {
                res = ((res as u32) >> 1) as i32;
            }
            bit = ((bit as u32) >> 2) as i32;
        }
        res
    };

    let trace = |px: i32, py: i32| -> i32 {
        let dx = px - w / 2;
        let dy = py - HEIGHT / 2;
        let dz = 32;
        let mut best = 1 << 30;
        let mut hit = -1;
        for s in 0..n {
            let ox = cx[s];
            let oy = cy[s];
            let oz = cz[s] + 200;
            let b = ox
                .wrapping_mul(dx)
                .wrapping_add(oy.wrapping_mul(dy))
                .wrapping_add(oz.wrapping_mul(dz));
            if b <= 0 {
                continue;
            }
            let cc = ox
                .wrapping_mul(ox)
                .wrapping_add(oy.wrapping_mul(oy))
                .wrapping_add(oz.wrapping_mul(oz))
                .wrapping_sub(cr[s].wrapping_mul(cr[s]));
            let d2 = dx
                .wrapping_mul(dx)
                .wrapping_add(dy.wrapping_mul(dy))
                .wrapping_add(dz.wrapping_mul(dz));
            let disc = b.wrapping_mul(b).wrapping_div(d2).wrapping_sub(cc);
            if disc <= 0 {
                continue;
            }
            let t = b - isqrt(disc) * 8;
            if t <= 0 || t >= best {
                continue;
            }
            best = t;
            hit = s as i32;
        }
        if hit >= 0 {
            ((hit + 1) * 40 + ((best >> 10) & 63)) & 255
        } else {
            (px ^ py) & 15
        }
    };

    let mut s = 0i32;
    for i in 0..(w * HEIGHT) {
        let (x, y) = (i % w, i / w);
        s = s.wrapping_mul(31).wrapping_add(trace(x, y));
    }
    s ^ (HEIGHT << 24) ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{SyncKind, Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
            assert_eq!(r.counters.threads_created, 3);
        }
    }

    #[test]
    fn produces_monitor_traffic() {
        let p = program(Size::Tiny);
        let r = Vm::new(&p, VmConfig::jit().with_sync(SyncKind::ThinLock))
            .run(&mut CountingSink::new())
            .unwrap();
        assert_eq!(r.sync_stats.enters(), u64::from(HEIGHT as u32));
    }
}
