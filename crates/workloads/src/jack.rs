//! `jack` — repeated scanning passes over a grammar text (the SPEC
//! `228.jack` analog).
//!
//! The original is a parser generator that scans its own grammar over
//! and over (16 passes). The analog generates a production-rule text
//! once, then runs repeated passes that tokenize it, intern the
//! identifiers into a hash table, and fold a token-sequence checksum —
//! scan-heavy code with substantial method reuse across passes.

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 67;
const PASSES: i32 = 16;
const SYM_TABLE: i32 = 512;

fn num_rules(size: Size) -> i32 {
    size.scale(96)
}

const SYMS_PER_RULE: i32 = 5;

/// The grammar text: per rule `Name : sym sym | sym ;` with
/// single-letter names. Host-side mirror of the bytecode generator.
fn host_text(size: Size) -> Vec<i32> {
    let mut rng = HostRng::new(SEED);
    let mut text = Vec::new();
    for _ in 0..num_rules(size) {
        text.push(i32::from(b'A') + rng.next(26));
        text.push(i32::from(b':'));
        for s in 0..SYMS_PER_RULE {
            if s == 2 {
                text.push(i32::from(b'|'));
            }
            text.push(i32::from(b'a') + rng.next(26));
        }
        text.push(i32::from(b';'));
    }
    text
}

fn text_len(size: Size) -> i32 {
    num_rules(size) * (3 + SYMS_PER_RULE + 1)
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let rules = num_rules(size);
    let tlen = text_len(size);

    let mut c = ClassAsm::new("Jack");
    add_rng(&mut c);
    for f in ["text", "syms", "distinct"] {
        c.add_static_field(f);
    }

    // genText()
    {
        let mut m = MethodAsm::new("genText", 0);
        let (r, s, p) = (0u8, 1u8, 2u8);
        let rloop = m.new_label();
        let rdone = m.new_label();
        let sloop = m.new_label();
        let sdone = m.new_label();
        let no_bar = m.new_label();
        m.iconst(0).istore(p).iconst(0).istore(r);
        m.bind(rloop);
        m.iload(r).iconst(rules).if_icmp_ge(rdone);
        m.getstatic("Jack", "text").iload(p);
        m.iconst(26)
            .invokestatic("Jack", "next", 1, RetKind::Int)
            .iconst(i32::from(b'A'))
            .iadd();
        m.castore();
        m.iinc(p, 1);
        m.getstatic("Jack", "text")
            .iload(p)
            .iconst(i32::from(b':'))
            .castore();
        m.iinc(p, 1);
        m.iconst(0).istore(s);
        m.bind(sloop);
        m.iload(s).iconst(SYMS_PER_RULE).if_icmp_ge(sdone);
        m.iload(s).iconst(2).if_icmp_ne(no_bar);
        m.getstatic("Jack", "text")
            .iload(p)
            .iconst(i32::from(b'|'))
            .castore();
        m.iinc(p, 1);
        m.bind(no_bar);
        m.getstatic("Jack", "text").iload(p);
        m.iconst(26)
            .invokestatic("Jack", "next", 1, RetKind::Int)
            .iconst(i32::from(b'a'))
            .iadd();
        m.castore();
        m.iinc(p, 1);
        m.iinc(s, 1).goto(sloop);
        m.bind(sdone);
        m.getstatic("Jack", "text")
            .iload(p)
            .iconst(i32::from(b';'))
            .castore();
        m.iinc(p, 1);
        m.iinc(r, 1).goto(rloop);
        m.bind(rdone);
        m.ret();
        c.add_method(m);
    }

    // intern(h): open-addressing insert of symbol hash; counts
    // distinct symbols.
    {
        let mut m = MethodAsm::new("intern", 1).synchronized();
        let (h, slot) = (0u8, 1u8);
        let probe = m.new_label();
        let place = m.new_label();
        let dup = m.new_label();
        m.iload(h).iconst(SYM_TABLE - 1).iand().istore(slot);
        m.bind(probe);
        m.getstatic("Jack", "syms")
            .iload(slot)
            .iaload()
            .if_eq(place);
        m.getstatic("Jack", "syms")
            .iload(slot)
            .iaload()
            .iload(h)
            .if_icmp_eq(dup);
        m.iload(slot)
            .iconst(1)
            .iadd()
            .iconst(SYM_TABLE - 1)
            .iand()
            .istore(slot);
        m.goto(probe);
        m.bind(place);
        m.getstatic("Jack", "syms").iload(slot).iload(h).iastore();
        m.getstatic("Jack", "distinct")
            .iconst(1)
            .iadd()
            .putstatic("Jack", "distinct");
        m.bind(dup);
        m.ret();
        c.add_method(m);
    }

    // scan(pass) -> token checksum for this pass
    {
        let mut m = MethodAsm::new("scan", 1).returns(RetKind::Int);
        let (pass, i, ch, acc) = (0u8, 1u8, 2u8, 3u8);
        let top = m.new_label();
        let done = m.new_label();
        let upper = m.new_label();
        let lower = m.new_label();
        let punct = m.new_label();
        let cont = m.new_label();
        m.iconst(0).istore(acc).iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iconst(tlen).if_icmp_ge(done);
        m.getstatic("Jack", "text").iload(i).caload().istore(ch);
        m.iload(ch).iconst(i32::from(b'A')).if_icmp_lt(punct);
        m.iload(ch).iconst(i32::from(b'Z')).if_icmp_le(upper);
        m.iload(ch).iconst(i32::from(b'a')).if_icmp_lt(punct);
        m.iload(ch).iconst(i32::from(b'z')).if_icmp_le(lower);
        m.goto(punct);
        m.bind(upper);
        // non-terminal: intern (ch * 131 + 7)
        m.iload(ch)
            .iconst(131)
            .imul()
            .iconst(7)
            .iadd()
            .invokestatic("Jack", "intern", 1, RetKind::Void);
        m.iload(acc).iconst(31).imul().iconst(1).iadd().istore(acc);
        m.goto(cont);
        m.bind(lower);
        // terminal: intern (ch * 131 + 13 + pass-invariant)
        m.iload(ch)
            .iconst(131)
            .imul()
            .iconst(13)
            .iadd()
            .invokestatic("Jack", "intern", 1, RetKind::Void);
        m.iload(acc).iconst(31).imul().iconst(2).iadd().istore(acc);
        m.goto(cont);
        m.bind(punct);
        m.iload(acc).iconst(31).imul().iload(ch).iadd().istore(acc);
        m.bind(cont);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.iload(acc).iload(pass).ixor().ireturn();
        c.add_method(m);
    }

    // main
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (p, s, lib) = (0u8, 1u8, 2u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(tlen)
            .newarray(ArrayKind::Char)
            .putstatic("Jack", "text");
        m.iconst(SYM_TABLE)
            .newarray(ArrayKind::Int)
            .putstatic("Jack", "syms");
        m.iconst(SEED)
            .invokestatic("Jack", "srand", 1, RetKind::Void);
        m.invokestatic("Jack", "genText", 0, RetKind::Void);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(s).iconst(0).istore(p);
        m.bind(top);
        m.iload(p).iconst(PASSES).if_icmp_ge(done);
        m.iload(s).iconst(7).imul();
        m.iload(p)
            .invokestatic("Jack", "scan", 1, RetKind::Int)
            .iadd();
        m.istore(s);
        m.iinc(p, 1).goto(top);
        m.bind(done);
        m.iload(s)
            .getstatic("Jack", "distinct")
            .iconst(20)
            .ishl()
            .ixor();
        m.iload(lib).ixor();
        m.ireturn();
        c.add_method(m);
    }

    let mut classes = vec![c];
    classes.extend(library(size));
    Program::build(classes, "Jack", "main").expect("jack assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let text = host_text(size);
    let mut syms = vec![0i32; SYM_TABLE as usize];
    let mut distinct = 0i32;
    let intern = |h: i32, syms: &mut Vec<i32>, distinct: &mut i32| {
        let mut slot = (h & (SYM_TABLE - 1)) as usize;
        loop {
            if syms[slot] == 0 {
                syms[slot] = h;
                *distinct += 1;
                return;
            }
            if syms[slot] == h {
                return;
            }
            slot = (slot + 1) & (SYM_TABLE - 1) as usize;
        }
    };

    let mut s = 0i32;
    for pass in 0..PASSES {
        let mut acc = 0i32;
        for &ch in &text {
            let b = ch as u8;
            match b {
                b'A'..=b'Z' => {
                    intern(
                        ch.wrapping_mul(131).wrapping_add(7),
                        &mut syms,
                        &mut distinct,
                    );
                    acc = acc.wrapping_mul(31).wrapping_add(1);
                }
                b'a'..=b'z' => {
                    intern(
                        ch.wrapping_mul(131).wrapping_add(13),
                        &mut syms,
                        &mut distinct,
                    );
                    acc = acc.wrapping_mul(31).wrapping_add(2);
                }
                _ => {
                    acc = acc.wrapping_mul(31).wrapping_add(ch);
                }
            }
        }
        s = s.wrapping_mul(7).wrapping_add(acc ^ pass);
    }
    s ^ (distinct << 20) ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn text_shape() {
        let t = host_text(Size::Tiny);
        assert_eq!(t.len(), text_len(Size::Tiny) as usize);
        assert!(t.contains(&i32::from(b'|')));
        assert!(t.contains(&i32::from(b';')));
    }
}
