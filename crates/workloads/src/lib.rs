//! SpecJVM98-analog benchmark programs, written in `javart` bytecode.
//!
//! The paper evaluates seven SpecJVM98 programs plus a `HelloWorld`
//! micro-benchmark at the `s1` input size. SpecJVM98 is proprietary,
//! so this crate provides deterministic analogs that preserve the
//! property each benchmark contributes to the study:
//!
//! | program | analog | preserved property |
//! |---|---|---|
//! | `compress` | LZW compress + expand over generated data | few hot methods, massive reuse — execution-dominated |
//! | `jess` | forward-chaining fact/rule engine | pattern-match loops, mixed method sizes |
//! | `db` | in-memory record store: add/delete/find/sort | many short methods on small data — translation-significant at s1 |
//! | `javac` | tokenizer/parser/code generator for a toy language | many methods, low reuse — translation-heavy |
//! | `mpeg` | fixed-point 8×8 IDCT + dequantization over many blocks | tight integer kernels, extreme method reuse |
//! | `mtrt` | two-thread fixed-point ray tracer | the suite's multithreaded member |
//! | `jack` | repeated scanning passes over a grammar text | scan-heavy, moderate reuse |
//! | `hello` | prints `HELLO`, returns | class-loading/startup dominated |
//!
//! Outside the suite, [`multi`] runs four byte-identical execution
//! contexts on four threads — the harness for the shared-code-cache
//! study (`codecache_study` in `jrt-experiments`).
//!
//! Every program is pure bytecode (inputs generated in-program by a
//! seeded linear congruential generator), self-checking (returns a
//! checksum the tests pin), and runs identically under the
//! interpreter and the JIT.
//!
//! # Examples
//!
//! ```
//! use jrt_trace::CountingSink;
//! use jrt_vm::{Vm, VmConfig};
//! use jrt_workloads::{compress, Size};
//!
//! let program = compress::program(Size::Tiny);
//! let result = Vm::new(&program, VmConfig::jit()).run(&mut CountingSink::new())?;
//! assert_eq!(result.exit_value, Some(compress::expected(Size::Tiny)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
mod common;
pub mod compress;
pub mod db;
pub mod graphmut;
pub mod hello;
pub mod jack;
pub mod javac;
pub mod jess;
pub mod mpeg;
pub mod mtrt;
pub mod multi;
pub mod stream;

pub use common::{
    add_rng, host_lib_checksum, library, sys_class, HostRng, Size, LIB_CLASSES_S1, LIB_METHODS,
};

use jrt_bytecode::Program;

/// A named benchmark in the suite.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Benchmark name, matching the paper's tables.
    pub name: &'static str,
    /// Builds the program at the given size.
    pub build: fn(Size) -> Program,
    /// Expected exit value (self-check) at the given size.
    pub expected: fn(Size) -> i32,
    /// Whether the program is multithreaded.
    pub multithreaded: bool,
}

/// The full suite in the paper's order: the seven SpecJVM98 analogs.
pub fn suite() -> Vec<Spec> {
    vec![
        Spec {
            name: "compress",
            build: compress::program,
            expected: compress::expected,
            multithreaded: false,
        },
        Spec {
            name: "jess",
            build: jess::program,
            expected: jess::expected,
            multithreaded: false,
        },
        Spec {
            name: "db",
            build: db::program,
            expected: db::expected,
            multithreaded: false,
        },
        Spec {
            name: "javac",
            build: javac::program,
            expected: javac::expected,
            multithreaded: false,
        },
        Spec {
            name: "mpeg",
            build: mpeg::program,
            expected: mpeg::expected,
            multithreaded: false,
        },
        Spec {
            name: "mtrt",
            build: mtrt::program,
            expected: mtrt::expected,
            multithreaded: true,
        },
        Spec {
            name: "jack",
            build: jack::program,
            expected: jack::expected,
            multithreaded: false,
        },
    ]
}

/// The suite plus the `hello` micro-benchmark (Figure 1 includes it).
pub fn suite_with_hello() -> Vec<Spec> {
    let mut v = vec![Spec {
        name: "hello",
        build: hello::program,
        expected: hello::expected,
        multithreaded: false,
    }];
    v.extend(suite());
    v
}

/// The allocation-heavy GC stress workloads (the `gc_study` inputs).
/// Deliberately *not* part of [`suite`]: the paper's tables iterate
/// the seven SpecJVM98 analogs, and the pinned experiment goldens
/// depend on that set staying fixed.
///
/// * `churn` — object churn: peak minor-collection rate, thin
///   survivor tail;
/// * `stream` — large-array streaming: copy-cost heavy, pretenuring,
///   low barrier traffic;
/// * `graphmut` — pointer-graph mutation: old→young edges on every
///   splice, the remembered-set adversary.
pub fn gc_suite() -> Vec<Spec> {
    vec![
        Spec {
            name: "churn",
            build: churn::program,
            expected: churn::expected,
            multithreaded: false,
        },
        Spec {
            name: "stream",
            build: stream::program,
            expected: stream::expected,
            multithreaded: false,
        },
        Spec {
            name: "graphmut",
            build: graphmut::program,
            expected: graphmut::expected,
            multithreaded: false,
        },
    ]
}
