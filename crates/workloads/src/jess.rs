//! `jess` — a forward-chaining rule engine (the SPEC `202.jess`
//! analog).
//!
//! Facts are `(subject, predicate, object)` triples; rules are
//! join-style implications `(X p1 Y) ∧ (Y p2 Z) ⇒ (X p3 Z)`. The
//! engine runs match/assert passes to a fixpoint — the same
//! pattern-matching inner loops (nested scans with an existence
//! check) that dominate the original's profile.

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 23;
const DOMAIN: i32 = 24;
const PREDS: i32 = 6;
/// Rules as (p1, p2, p3) triples.
const RULES: [(i32, i32, i32); 4] = [(0, 1, 2), (2, 3, 4), (1, 1, 5), (4, 0, 5)];

fn initial_facts(size: Size) -> i32 {
    size.scale(56)
}

fn fact_capacity(size: Size) -> i32 {
    initial_facts(size) * 40 + 64
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let n0 = initial_facts(size);
    let cap = fact_capacity(size);

    let mut c = ClassAsm::new("Jess");
    add_rng(&mut c);
    for f in ["fs", "fp", "fo", "count", "rules"] {
        c.add_static_field(f);
    }

    // contains(s, p, o) -> 0/1
    {
        let mut m = MethodAsm::new("contains", 3).returns(RetKind::Int);
        let (s, p, o, i) = (0u8, 1u8, 2u8, 3u8);
        let top = m.new_label();
        let miss = m.new_label();
        let next = m.new_label();
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).getstatic("Jess", "count").if_icmp_ge(miss);
        m.getstatic("Jess", "fs")
            .iload(i)
            .iaload()
            .iload(s)
            .if_icmp_ne(next);
        m.getstatic("Jess", "fp")
            .iload(i)
            .iaload()
            .iload(p)
            .if_icmp_ne(next);
        m.getstatic("Jess", "fo")
            .iload(i)
            .iaload()
            .iload(o)
            .if_icmp_ne(next);
        m.iconst(1).ireturn();
        m.bind(next);
        m.iinc(i, 1).goto(top);
        m.bind(miss);
        m.iconst(0).ireturn();
        c.add_method(m);
    }

    // assertFact(s, p, o) -> 1 if newly added
    {
        let mut m = MethodAsm::new("assertFact", 3)
            .returns(RetKind::Int)
            .synchronized();
        let (s, p, o) = (0u8, 1u8, 2u8);
        let reject = m.new_label();
        m.iload(s)
            .iload(p)
            .iload(o)
            .invokestatic("Jess", "contains", 3, RetKind::Int)
            .if_ne(reject);
        m.getstatic("Jess", "count").iconst(cap).if_icmp_ge(reject);
        m.getstatic("Jess", "fs")
            .getstatic("Jess", "count")
            .iload(s)
            .iastore();
        m.getstatic("Jess", "fp")
            .getstatic("Jess", "count")
            .iload(p)
            .iastore();
        m.getstatic("Jess", "fo")
            .getstatic("Jess", "count")
            .iload(o)
            .iastore();
        m.getstatic("Jess", "count")
            .iconst(1)
            .iadd()
            .putstatic("Jess", "count");
        m.iconst(1).ireturn();
        m.bind(reject);
        m.iconst(0).ireturn();
        c.add_method(m);
    }

    // matchRule(r) -> facts added; joins over a snapshot of count.
    {
        let mut m = MethodAsm::new("matchRule", 1).returns(RetKind::Int);
        let (r, p1, p2, p3, added, i, j, limit) = (0u8, 1u8, 2u8, 3u8, 4u8, 5u8, 6u8, 7u8);
        m.getstatic("Jess", "rules")
            .iload(r)
            .iconst(3)
            .imul()
            .iaload()
            .istore(p1);
        m.getstatic("Jess", "rules")
            .iload(r)
            .iconst(3)
            .imul()
            .iconst(1)
            .iadd()
            .iaload()
            .istore(p2);
        m.getstatic("Jess", "rules")
            .iload(r)
            .iconst(3)
            .imul()
            .iconst(2)
            .iadd()
            .iaload()
            .istore(p3);
        m.iconst(0).istore(added);
        m.getstatic("Jess", "count").istore(limit);
        let iloop = m.new_label();
        let idone = m.new_label();
        let inext = m.new_label();
        let jloop = m.new_label();
        let jnext = m.new_label();
        m.iconst(0).istore(i);
        m.bind(iloop);
        m.iload(i).iload(limit).if_icmp_ge(idone);
        m.getstatic("Jess", "fp")
            .iload(i)
            .iaload()
            .iload(p1)
            .if_icmp_ne(inext);
        m.iconst(0).istore(j);
        m.bind(jloop);
        m.iload(j).iload(limit).if_icmp_ge(inext);
        m.getstatic("Jess", "fp")
            .iload(j)
            .iaload()
            .iload(p2)
            .if_icmp_ne(jnext);
        m.getstatic("Jess", "fs").iload(j).iaload();
        m.getstatic("Jess", "fo").iload(i).iaload();
        m.if_icmp_ne(jnext);
        // fire: assert (fs[i], p3, fo[j])
        m.getstatic("Jess", "fs").iload(i).iaload();
        m.iload(p3);
        m.getstatic("Jess", "fo").iload(j).iaload();
        m.invokestatic("Jess", "assertFact", 3, RetKind::Int);
        m.iload(added).iadd().istore(added);
        m.bind(jnext);
        m.iinc(j, 1).goto(jloop);
        m.bind(inext);
        m.iinc(i, 1).goto(iloop);
        m.bind(idone);
        m.iload(added).ireturn();
        c.add_method(m);
    }

    // run() -> passes to fixpoint
    {
        let mut m = MethodAsm::new("run", 0).returns(RetKind::Int);
        let (passes, added, r) = (0u8, 1u8, 2u8);
        let pass = m.new_label();
        let rloop = m.new_label();
        let rdone = m.new_label();
        m.iconst(0).istore(passes);
        m.bind(pass);
        m.iconst(0).istore(added);
        m.iconst(0).istore(r);
        m.bind(rloop);
        m.iload(r).iconst(RULES.len() as i32).if_icmp_ge(rdone);
        m.iload(added)
            .iload(r)
            .invokestatic("Jess", "matchRule", 1, RetKind::Int)
            .iadd()
            .istore(added);
        m.iinc(r, 1).goto(rloop);
        m.bind(rdone);
        m.iinc(passes, 1);
        m.iload(added).if_ne(pass);
        m.iload(passes).ireturn();
        c.add_method(m);
    }

    // checksum()
    {
        let mut m = MethodAsm::new("checksum", 0).returns(RetKind::Int);
        let (s, i) = (0u8, 1u8);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(s).iconst(0).istore(i);
        m.bind(top);
        m.iload(i).getstatic("Jess", "count").if_icmp_ge(done);
        m.iload(s).iconst(31).imul();
        m.getstatic("Jess", "fs").iload(i).iaload().iadd();
        m.iconst(17).imul();
        m.getstatic("Jess", "fp").iload(i).iaload().iadd();
        m.iconst(13).imul();
        m.getstatic("Jess", "fo").iload(i).iaload().iadd();
        m.istore(s);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.iload(s).ireturn();
        c.add_method(m);
    }

    // main
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (i, passes, lib) = (0u8, 1u8, 2u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(cap)
            .newarray(ArrayKind::Int)
            .putstatic("Jess", "fs");
        m.iconst(cap)
            .newarray(ArrayKind::Int)
            .putstatic("Jess", "fp");
        m.iconst(cap)
            .newarray(ArrayKind::Int)
            .putstatic("Jess", "fo");
        m.iconst(RULES.len() as i32 * 3)
            .newarray(ArrayKind::Int)
            .putstatic("Jess", "rules");
        for (k, (p1, p2, p3)) in RULES.iter().enumerate() {
            for (off, v) in [(0, *p1), (1, *p2), (2, *p3)] {
                m.getstatic("Jess", "rules")
                    .iconst(k as i32 * 3 + off)
                    .iconst(v)
                    .iastore();
            }
        }
        m.iconst(SEED)
            .invokestatic("Jess", "srand", 1, RetKind::Void);
        let gen = m.new_label();
        let gdone = m.new_label();
        m.iconst(0).istore(i);
        m.bind(gen);
        m.iload(i).iconst(n0).if_icmp_ge(gdone);
        m.iconst(DOMAIN)
            .invokestatic("Jess", "next", 1, RetKind::Int);
        m.iconst(PREDS)
            .invokestatic("Jess", "next", 1, RetKind::Int);
        m.iconst(DOMAIN)
            .invokestatic("Jess", "next", 1, RetKind::Int);
        m.invokestatic("Jess", "assertFact", 3, RetKind::Int).pop();
        m.iinc(i, 1).goto(gen);
        m.bind(gdone);
        m.invokestatic("Jess", "run", 0, RetKind::Int)
            .istore(passes);
        m.invokestatic("Jess", "checksum", 0, RetKind::Int);
        m.iload(passes).iconst(24).ishl().ixor();
        m.getstatic("Jess", "count").iconst(16).ishl().ixor();
        m.iload(lib).ixor();
        m.ireturn();
        c.add_method(m);
    }

    let mut classes = vec![c];
    classes.extend(library(size));
    Program::build(classes, "Jess", "main").expect("jess assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let n0 = initial_facts(size);
    let cap = fact_capacity(size) as usize;
    let mut rng = HostRng::new(SEED);
    let mut facts: Vec<(i32, i32, i32)> = Vec::new();

    fn assert_fact(facts: &mut Vec<(i32, i32, i32)>, cap: usize, f: (i32, i32, i32)) -> i32 {
        if facts.contains(&f) || facts.len() >= cap {
            0
        } else {
            facts.push(f);
            1
        }
    }

    for _ in 0..n0 {
        let s = rng.next(DOMAIN);
        let p = rng.next(PREDS);
        let o = rng.next(DOMAIN);
        assert_fact(&mut facts, cap, (s, p, o));
    }

    let mut passes = 0i32;
    loop {
        let mut added = 0;
        for &(p1, p2, p3) in &RULES {
            let limit = facts.len();
            for i in 0..limit {
                if facts[i].1 != p1 {
                    continue;
                }
                for j in 0..limit {
                    if facts[j].1 != p2 || facts[j].0 != facts[i].2 {
                        continue;
                    }
                    let derived = (facts[i].0, p3, facts[j].2);
                    added += assert_fact(&mut facts, cap, derived);
                }
            }
        }
        passes += 1;
        if added == 0 {
            break;
        }
    }

    let mut s = 0i32;
    for &(a, p, o) in &facts {
        s = s
            .wrapping_mul(31)
            .wrapping_add(a)
            .wrapping_mul(17)
            .wrapping_add(p)
            .wrapping_mul(13)
            .wrapping_add(o);
    }
    s ^ (passes << 24) ^ ((facts.len() as i32) << 16) ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn reference_derives_new_facts() {
        let n0 = initial_facts(Size::Tiny);
        let mut rng = HostRng::new(SEED);
        let mut initial = std::collections::HashSet::new();
        for _ in 0..n0 {
            initial.insert((rng.next(DOMAIN), rng.next(PREDS), rng.next(DOMAIN)));
        }
        // The engine must actually chain: the checksum encodes a fact
        // count larger than the de-duplicated initial set.
        let enc = expected(Size::Tiny);
        assert_ne!(enc, 0);
    }
}
