//! `multi` — a four-context harness for the shared-code-cache study.
//!
//! Four classes `Ctx0`..`Ctx3` are assembled by one helper so their
//! method bodies are *byte-identical* (constant pools are per-class,
//! so the class-local indices line up). Each context runs on its own
//! green thread and folds a per-context accumulator; the contexts
//! differ only through the `id` instance field set by `main`.
//!
//! Under [`CacheScope::PerThread`] every thread translates its own
//! copy of `run`/`step`/`mix`; under [`CacheScope::Shared`] the
//! content-addressed cache installs each body once and the other
//! three contexts reuse it — the ShareJIT-style dedup the
//! `codecache_study` sharing table measures.
//!
//! [`CacheScope::PerThread`]: https://docs.rs/jrt-codecache
//! [`CacheScope::Shared`]: https://docs.rs/jrt-codecache

use crate::common::{host_lib_checksum, library, sys_class, HostRng, Size};
use jrt_bytecode::{ClassAsm, MethodAsm, Program, RetKind};

/// Number of identical execution contexts (and worker threads).
pub const CONTEXTS: i32 = 4;

fn rows(size: Size) -> i32 {
    size.scale(256)
}

/// Builds one context class. Every call site inside the body names
/// `name` (the own class), so the constant-pool layout — and therefore
/// the encoded bytecode — is identical across `Ctx0`..`Ctx3`.
fn ctx_class(name: &str, size: Size) -> ClassAsm {
    let mut c = ClassAsm::new(name);
    c.add_static_field("acc");
    c.add_field("id");

    // mix(x): a cheap integer hash (multiply/shift/xor chain).
    {
        let mut m = MethodAsm::new("mix", 1).returns(RetKind::Int);
        let (x, h) = (0u8, 1u8);
        m.iload(x).iconst(-1640531527).imul().istore(h);
        m.iload(h).iload(h).iconst(13).iushr().ixor().istore(h);
        m.iload(h)
            .iconst(5)
            .imul()
            .iconst(0x7F4A7C15)
            .iadd()
            .istore(h);
        m.iload(h).ireturn();
        c.add_method(m);
    }

    // step(s, v): fold one value into the running accumulator.
    {
        let mut m = MethodAsm::new("step", 2).returns(RetKind::Int);
        let (s, v) = (0u8, 1u8);
        m.iload(s).iconst(31).imul();
        m.iload(v)
            .invokestatic(name, "mix", 1, RetKind::Int)
            .iconst(0xFFFF)
            .iand();
        m.ixor().ireturn();
        c.add_method(m);
    }

    // run(): fold ROWS values derived from the context id, then
    // publish the result to the per-context static.
    {
        let mut m = MethodAsm::new_instance("run", 0);
        let (id, i, a) = (1u8, 2u8, 3u8);
        let top = m.new_label();
        let done = m.new_label();
        m.aload(0).getfield(name, "id").istore(id);
        m.iconst(0).istore(i);
        m.iconst(0).istore(a);
        m.bind(top);
        m.iload(i).iconst(rows(size)).if_icmp_ge(done);
        m.iload(a);
        m.iload(i).iload(id).iconst(1000).imul().iadd();
        m.invokestatic(name, "step", 2, RetKind::Int).istore(a);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.iload(a).putstatic(name, "acc");
        m.ret();
        c.add_method(m);
    }

    c
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let names = ["Ctx0", "Ctx1", "Ctx2", "Ctx3"];
    let mut classes: Vec<ClassAsm> = names.iter().map(|n| ctx_class(n, size)).collect();

    let mut main = ClassAsm::new("Main");
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        // locals: 0..3 = objects, 4..7 = thread ids, 8 = sum, 9 = lib
        let (s, lib) = (8u8, 9u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        for (k, name) in names.iter().enumerate() {
            let obj = k as u8;
            m.new_obj(name).astore(obj);
            m.aload(obj).iconst(k as i32).putfield(name, "id");
        }
        for k in 0..names.len() as u8 {
            m.aload(k)
                .invokestatic("Sys", "spawn", 1, RetKind::Int)
                .istore(4 + k);
        }
        for k in 0..names.len() as u8 {
            m.iload(4 + k).invokestatic("Sys", "join", 1, RetKind::Void);
        }
        m.iconst(0).istore(s);
        for name in &names {
            m.iload(s).iconst(33).imul();
            m.getstatic(name, "acc").ixor();
            m.istore(s);
        }
        m.iload(s).iload(lib).ixor().ireturn();
        main.add_method(m);
    }

    classes.push(main);
    classes.push(sys_class());
    classes.extend(library(size));
    Program::build(classes, "Main", "main").expect("multi assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let mix = |x: i32| -> i32 {
        let mut h = x.wrapping_mul(-1640531527);
        h ^= ((h as u32) >> 13) as i32;
        h = h.wrapping_mul(5).wrapping_add(0x7F4A7C15);
        h
    };
    let step = |s: i32, v: i32| -> i32 { s.wrapping_mul(31) ^ (mix(v) & 0xFFFF) };

    let mut sum = 0i32;
    for id in 0..CONTEXTS {
        let mut acc = 0i32;
        for i in 0..rows(size) {
            acc = step(acc, i.wrapping_add(id.wrapping_mul(1000)));
        }
        sum = sum.wrapping_mul(33) ^ acc;
    }
    // HostRng is unused here but kept in scope parity with the other
    // workloads' expected() mirrors.
    let _ = HostRng::new(0);
    sum ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{CacheScope, CodeCacheConfig, Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
            assert_eq!(r.counters.threads_created, 5);
        }
    }

    #[test]
    fn context_bodies_are_byte_identical() {
        let p = program(Size::Tiny);
        let c0 = p.class_file(p.class("Ctx0").unwrap());
        for name in ["Ctx1", "Ctx2", "Ctx3"] {
            let cn = p.class_file(p.class(name).unwrap());
            for (a, b) in c0.methods.iter().zip(cn.methods.iter()) {
                assert_eq!(a.code, b.code, "{}::{} differs from Ctx0", name, a.name);
            }
        }
    }

    #[test]
    fn shared_scope_translates_fewer_methods() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        let run = |scope| {
            let cfg = VmConfig::jit().with_code_cache(CodeCacheConfig::default().with_scope(scope));
            Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap()
        };
        let private = run(CacheScope::PerThread);
        let shared = run(CacheScope::Shared);
        assert_eq!(private.exit_value, Some(want));
        assert_eq!(shared.exit_value, Some(want));
        assert!(
            shared.counters.methods_translated < private.counters.methods_translated,
            "shared {} !< private {}",
            shared.counters.methods_translated,
            private.counters.methods_translated
        );
    }
}
