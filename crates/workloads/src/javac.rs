//! `javac` — a toy-language compiler (the SPEC `213.javac` analog).
//!
//! Generates pseudo-source text, tokenizes it with a `tableswitch`
//! over character classes, parses assignments with precedence-free
//! left-associative expressions into heap-allocated AST nodes, and
//! walks the trees emitting stack-machine code into an array. Like
//! the original: many methods, deep call chains, one pass over the
//! input — low method reuse, so translation cost looms large
//! (Figure 1's `javac` bar).

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const SEED: i32 = 53;

// Token types.
const T_ID: i32 = 1;
const T_NUM: i32 = 2;
const T_PLUS: i32 = 3;
const T_MINUS: i32 = 4;
const T_STAR: i32 = 5;
const T_ASSIGN: i32 = 6;
const T_SEMI: i32 = 7;
const T_LBRACE: i32 = 8;
const T_RBRACE: i32 = 9;

// AST node kinds.
const N_NUM: i32 = 1;
const N_VAR: i32 = 2;
const N_OP: i32 = 3;

fn num_functions(size: Size) -> i32 {
    size.scale(48)
}

const STMTS_PER_FN: i32 = 4;
const TERMS_PER_EXPR: i32 = 3;

/// Generates the pseudo-source deterministically (host side; the
/// bytecode program regenerates the identical text with its own RNG).
fn host_source(size: Size) -> Vec<i32> {
    let mut rng = HostRng::new(SEED);
    let mut src = Vec::new();
    for _ in 0..num_functions(size) {
        src.push(i32::from(b'{'));
        for _ in 0..STMTS_PER_FN {
            // id = term (op term)* ;
            src.push(i32::from(b'a') + rng.next(26));
            src.push(i32::from(b'='));
            for t in 0..TERMS_PER_EXPR {
                if t > 0 {
                    src.push(match rng.next(3) {
                        0 => i32::from(b'+'),
                        1 => i32::from(b'-'),
                        _ => i32::from(b'*'),
                    });
                }
                if rng.next(2) == 0 {
                    src.push(i32::from(b'a') + rng.next(26));
                } else {
                    src.push(i32::from(b'0') + rng.next(10));
                }
            }
            src.push(i32::from(b';'));
        }
        src.push(i32::from(b'}'));
    }
    src
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let fns = num_functions(size);
    // Source length is deterministic: per fn: 2 braces + per stmt
    // (1 id + 1 '=' + terms + ops + 1 ';').
    let per_stmt = 3 + TERMS_PER_EXPR + (TERMS_PER_EXPR - 1);
    let src_len = fns * (2 + STMTS_PER_FN * per_stmt);
    let max_tokens = src_len + 4;
    let max_nodes = max_tokens * 2 + 64;
    let max_code = max_nodes * 2 + 64;

    let mut node = ClassAsm::new("Node");
    for f in ["kind", "val", "left", "right"] {
        node.add_field(f);
    }

    let mut c = ClassAsm::new("Javac");
    add_rng(&mut c);
    for f in [
        "src", "toks", "vals", "ntok", "pos", "code", "clen", "nodes",
    ] {
        c.add_static_field(f);
    }

    // genSource(): regenerate the same text as host_source
    {
        let mut m = MethodAsm::new("genSource", 0);
        let (f, s, t, p) = (0u8, 1u8, 2u8, 3u8);
        let floop = m.new_label();
        let fdone = m.new_label();
        let sloop = m.new_label();
        let sdone = m.new_label();
        let tloop = m.new_label();
        let tdone = m.new_label();
        let no_op = m.new_label();
        let op_plus = m.new_label();
        let op_minus = m.new_label();
        let op_star = m.new_label();
        let op_done = m.new_label();
        let emit_id = m.new_label();
        let emit_done = m.new_label();
        m.iconst(0).istore(p);
        m.iconst(0).istore(f);
        m.bind(floop);
        m.iload(f).iconst(fns).if_icmp_ge(fdone);
        m.getstatic("Javac", "src")
            .iload(p)
            .iconst(i32::from(b'{'))
            .castore();
        m.iinc(p, 1);
        m.iconst(0).istore(s);
        m.bind(sloop);
        m.iload(s).iconst(STMTS_PER_FN).if_icmp_ge(sdone);
        m.getstatic("Javac", "src").iload(p);
        m.iconst(26)
            .invokestatic("Javac", "next", 1, RetKind::Int)
            .iconst(i32::from(b'a'))
            .iadd();
        m.castore();
        m.iinc(p, 1);
        m.getstatic("Javac", "src")
            .iload(p)
            .iconst(i32::from(b'='))
            .castore();
        m.iinc(p, 1);
        m.iconst(0).istore(t);
        m.bind(tloop);
        m.iload(t).iconst(TERMS_PER_EXPR).if_icmp_ge(tdone);
        m.iload(t).if_eq(no_op);
        // operator
        m.iconst(3)
            .invokestatic("Javac", "next", 1, RetKind::Int)
            .istore(4);
        m.iload(4).if_eq(op_plus);
        m.iload(4).iconst(1).if_icmp_eq(op_minus);
        m.goto(op_star);
        m.bind(op_plus);
        m.getstatic("Javac", "src")
            .iload(p)
            .iconst(i32::from(b'+'))
            .castore();
        m.goto(op_done);
        m.bind(op_minus);
        m.getstatic("Javac", "src")
            .iload(p)
            .iconst(i32::from(b'-'))
            .castore();
        m.goto(op_done);
        m.bind(op_star);
        m.getstatic("Javac", "src")
            .iload(p)
            .iconst(i32::from(b'*'))
            .castore();
        m.bind(op_done);
        m.iinc(p, 1);
        m.bind(no_op);
        // term: ident or number
        m.iconst(2)
            .invokestatic("Javac", "next", 1, RetKind::Int)
            .if_eq(emit_id);
        m.getstatic("Javac", "src").iload(p);
        m.iconst(10)
            .invokestatic("Javac", "next", 1, RetKind::Int)
            .iconst(i32::from(b'0'))
            .iadd();
        m.castore();
        m.goto(emit_done);
        m.bind(emit_id);
        m.getstatic("Javac", "src").iload(p);
        m.iconst(26)
            .invokestatic("Javac", "next", 1, RetKind::Int)
            .iconst(i32::from(b'a'))
            .iadd();
        m.castore();
        m.bind(emit_done);
        m.iinc(p, 1);
        m.iinc(t, 1).goto(tloop);
        m.bind(tdone);
        m.getstatic("Javac", "src")
            .iload(p)
            .iconst(i32::from(b';'))
            .castore();
        m.iinc(p, 1);
        m.iinc(s, 1).goto(sloop);
        m.bind(sdone);
        m.getstatic("Javac", "src")
            .iload(p)
            .iconst(i32::from(b'}'))
            .castore();
        m.iinc(p, 1);
        m.iinc(f, 1).goto(floop);
        m.bind(fdone);
        m.ret();
        c.add_method(m);
    }

    // tokenize(n): classify each char with a tableswitch over the
    // punctuation range; letters/digits fall to range checks.
    {
        let mut m = MethodAsm::new("tokenize", 1);
        let (n, i, ch, k) = (0u8, 1u8, 2u8, 3u8);
        let top = m.new_label();
        let done = m.new_label();
        let lbl_star = m.new_label();
        let lbl_plus = m.new_label();
        let lbl_minus = m.new_label();
        let lbl_semi = m.new_label();
        let lbl_assign = m.new_label();
        let other = m.new_label();
        let is_digit = m.new_label();
        let is_ident = m.new_label();
        let next_ch = m.new_label();
        let emit = m.new_label();
        m.iconst(0).istore(k);
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iload(n).if_icmp_ge(done);
        m.getstatic("Javac", "src").iload(i).caload().istore(ch);
        // switch over '*' (42) .. '=' (61)
        m.iload(ch).iconst(42).isub();
        let mut targets = vec![other; 20];
        targets[0] = lbl_star; // 42 '*'
        targets[1] = lbl_plus; // 43 '+'
        targets[3] = lbl_minus; // 45 '-'
        targets[6..16].fill(is_digit); // 48..57 digits
        targets[17] = lbl_semi; // 59 ';'
        targets[19] = lbl_assign; // 61 '='
        m.tableswitch(0, other, &targets);
        m.bind(lbl_star);
        m.iconst(T_STAR).iconst(0).goto(emit);
        m.bind(lbl_plus);
        m.iconst(T_PLUS).iconst(0).goto(emit);
        m.bind(lbl_minus);
        m.iconst(T_MINUS).iconst(0).goto(emit);
        m.bind(lbl_semi);
        m.iconst(T_SEMI).iconst(0).goto(emit);
        m.bind(lbl_assign);
        m.iconst(T_ASSIGN).iconst(0).goto(emit);
        m.bind(is_digit);
        m.iconst(T_NUM)
            .iload(ch)
            .iconst(i32::from(b'0'))
            .isub()
            .goto(emit);
        m.bind(other);
        // '{' '}' or identifier letters
        m.iload(ch).iconst(i32::from(b'{')).if_icmp_ne(is_ident);
        m.iconst(T_LBRACE).iconst(0).goto(emit);
        m.bind(is_ident);
        m.iload(ch).iconst(i32::from(b'}')).if_icmp_ne(next_ch);
        m.iconst(T_RBRACE).iconst(0).goto(emit);
        m.bind(next_ch);
        m.iconst(T_ID)
            .iload(ch)
            .iconst(i32::from(b'a'))
            .isub()
            .goto(emit);
        m.bind(emit);
        // stack: type, value
        m.istore(4); // value
        m.istore(5); // type
        m.getstatic("Javac", "toks").iload(k).iload(5).iastore();
        m.getstatic("Javac", "vals").iload(k).iload(4).iastore();
        m.iinc(k, 1);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.iload(k).putstatic("Javac", "ntok");
        m.ret();
        c.add_method(m);
    }

    // mkNode(kind, val, left, right) -> node ref
    {
        let mut m = MethodAsm::new("mkNode", 4).returns(RetKind::Ref);
        let (kind, val, left, right, r) = (0u8, 1u8, 2u8, 3u8, 4u8);
        m.new_obj("Node").astore(r);
        m.aload(r).iload(kind).putfield("Node", "kind");
        m.aload(r).iload(val).putfield("Node", "val");
        m.aload(r).aload(left).putfield("Node", "left");
        m.aload(r).aload(right).putfield("Node", "right");
        m.getstatic("Javac", "nodes")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "nodes");
        m.aload(r).areturn();
        c.add_method(m);
    }

    // parseTerm() -> node
    {
        let mut m = MethodAsm::new("parseTerm", 0).returns(RetKind::Ref);
        let (t, v) = (0u8, 1u8);
        let num = m.new_label();
        m.getstatic("Javac", "toks")
            .getstatic("Javac", "pos")
            .iaload()
            .istore(t);
        m.getstatic("Javac", "vals")
            .getstatic("Javac", "pos")
            .iaload()
            .istore(v);
        m.getstatic("Javac", "pos")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "pos");
        m.iload(t).iconst(T_NUM).if_icmp_eq(num);
        m.iconst(N_VAR)
            .iload(v)
            .aconst_null()
            .aconst_null()
            .invokestatic("Javac", "mkNode", 4, RetKind::Ref);
        m.areturn();
        m.bind(num);
        m.iconst(N_NUM)
            .iload(v)
            .aconst_null()
            .aconst_null()
            .invokestatic("Javac", "mkNode", 4, RetKind::Ref);
        m.areturn();
        c.add_method(m);
    }

    // parseExpr() -> node : term ((+|-|*) term)*
    {
        let mut m = MethodAsm::new("parseExpr", 0).returns(RetKind::Ref);
        let (lhs, t, rhs) = (0u8, 1u8, 2u8);
        let top = m.new_label();
        let done = m.new_label();
        m.invokestatic("Javac", "parseTerm", 0, RetKind::Ref)
            .astore(lhs);
        m.bind(top);
        m.getstatic("Javac", "toks")
            .getstatic("Javac", "pos")
            .iaload()
            .istore(t);
        m.iload(t).iconst(T_PLUS).if_icmp_lt(done);
        m.iload(t).iconst(T_STAR).if_icmp_gt(done);
        m.getstatic("Javac", "pos")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "pos");
        m.invokestatic("Javac", "parseTerm", 0, RetKind::Ref)
            .astore(rhs);
        m.iconst(N_OP)
            .iload(t)
            .aload(lhs)
            .aload(rhs)
            .invokestatic("Javac", "mkNode", 4, RetKind::Ref)
            .astore(lhs);
        m.goto(top);
        m.bind(done);
        m.aload(lhs).areturn();
        c.add_method(m);
    }

    // emit(node): post-order codegen into code[]
    {
        let mut m = MethodAsm::new("emit", 1).synchronized();
        let node_l = 0u8;
        let leaf = m.new_label();
        m.aload(node_l)
            .getfield("Node", "kind")
            .iconst(N_OP)
            .if_icmp_ne(leaf);
        m.aload(node_l)
            .getfield("Node", "left")
            .invokestatic("Javac", "emit", 1, RetKind::Void);
        m.aload(node_l)
            .getfield("Node", "right")
            .invokestatic("Javac", "emit", 1, RetKind::Void);
        m.bind(leaf);
        m.getstatic("Javac", "code").getstatic("Javac", "clen");
        m.aload(node_l).getfield("Node", "kind").iconst(100).imul();
        m.aload(node_l).getfield("Node", "val").iadd();
        m.iastore();
        m.getstatic("Javac", "clen")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "clen");
        m.ret();
        c.add_method(m);
    }

    // compile(): parse all functions; statements are `id = expr ;`
    {
        let mut m = MethodAsm::new("compile", 0);
        let (t, target, e) = (0u8, 1u8, 2u8);
        let top = m.new_label();
        let done = m.new_label();
        let stmt = m.new_label();
        m.iconst(0).putstatic("Javac", "pos");
        m.bind(top);
        m.getstatic("Javac", "pos")
            .getstatic("Javac", "ntok")
            .if_icmp_ge(done);
        m.getstatic("Javac", "toks")
            .getstatic("Javac", "pos")
            .iaload()
            .istore(t);
        m.getstatic("Javac", "pos")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "pos");
        // '{' and '}' just bracket functions
        m.iload(t).iconst(T_ID).if_icmp_eq(stmt);
        m.goto(top);
        m.bind(stmt);
        // token was the target ident; expect '=' then expr then ';'
        m.getstatic("Javac", "vals")
            .getstatic("Javac", "pos")
            .iconst(1)
            .isub()
            .iaload()
            .istore(target);
        m.getstatic("Javac", "pos")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "pos"); // skip '='
        m.invokestatic("Javac", "parseExpr", 0, RetKind::Ref)
            .astore(e);
        m.getstatic("Javac", "pos")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "pos"); // skip ';'
        m.aload(e).invokestatic("Javac", "emit", 1, RetKind::Void);
        // store instruction for the assignment target
        m.getstatic("Javac", "code").getstatic("Javac", "clen");
        m.iconst(1000).iload(target).iadd();
        m.iastore();
        m.getstatic("Javac", "clen")
            .iconst(1)
            .iadd()
            .putstatic("Javac", "clen");
        m.goto(top);
        m.bind(done);
        m.ret();
        c.add_method(m);
    }

    // main
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (s, i, lib) = (0u8, 1u8, 2u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(src_len)
            .newarray(ArrayKind::Char)
            .putstatic("Javac", "src");
        m.iconst(max_tokens)
            .newarray(ArrayKind::Int)
            .putstatic("Javac", "toks");
        m.iconst(max_tokens)
            .newarray(ArrayKind::Int)
            .putstatic("Javac", "vals");
        m.iconst(max_code)
            .newarray(ArrayKind::Int)
            .putstatic("Javac", "code");
        m.iconst(SEED)
            .invokestatic("Javac", "srand", 1, RetKind::Void);
        m.invokestatic("Javac", "genSource", 0, RetKind::Void);
        m.iconst(src_len)
            .invokestatic("Javac", "tokenize", 1, RetKind::Void);
        m.invokestatic("Javac", "compile", 0, RetKind::Void);
        // checksum the emitted code
        let fold = m.new_label();
        let fdone = m.new_label();
        m.iconst(0).istore(s).iconst(0).istore(i);
        m.bind(fold);
        m.iload(i).getstatic("Javac", "clen").if_icmp_ge(fdone);
        m.iload(s).iconst(31).imul();
        m.getstatic("Javac", "code").iload(i).iaload().iadd();
        m.istore(s);
        m.iinc(i, 1).goto(fold);
        m.bind(fdone);
        m.iload(s)
            .getstatic("Javac", "nodes")
            .iconst(16)
            .ishl()
            .ixor();
        m.iload(lib).ixor();
        m.ireturn();
        c.add_method(m);
    }

    let mut classes = vec![node, c];
    classes.extend(library(size));
    Program::build(classes, "Javac", "main").expect("javac assembles")
}

/// Host-side reference implementation.
pub fn expected(size: Size) -> i32 {
    let src = host_source(size);

    // Tokenize.
    let mut toks = Vec::new();
    for &ch in &src {
        let b = ch as u8;
        toks.push(match b {
            b'*' => (T_STAR, 0),
            b'+' => (T_PLUS, 0),
            b'-' => (T_MINUS, 0),
            b'0'..=b'9' => (T_NUM, i32::from(b - b'0')),
            b';' => (T_SEMI, 0),
            b'=' => (T_ASSIGN, 0),
            b'{' => (T_LBRACE, 0),
            b'}' => (T_RBRACE, 0),
            _ => (T_ID, i32::from(b - b'a')),
        });
    }

    // Parse + emit.
    #[derive(Clone)]
    enum N {
        Leaf(i32, i32),
        Op(i32, Box<N>, Box<N>),
    }
    let mut nodes = 0i32;
    let mut pos = 0usize;
    let mut code = Vec::new();

    fn emit(n: &N, code: &mut Vec<i32>) {
        match n {
            N::Leaf(kind, val) => code.push(kind * 100 + val),
            N::Op(op, l, r) => {
                emit(l, code);
                emit(r, code);
                code.push(N_OP * 100 + op);
            }
        }
    }

    while pos < toks.len() {
        let (t, _) = toks[pos];
        pos += 1;
        if t != T_ID {
            continue;
        }
        let target = toks[pos - 1].1;
        pos += 1; // '='
                  // expr
        let parse_term = |pos: &mut usize, nodes: &mut i32| -> N {
            let (t, v) = toks[*pos];
            *pos += 1;
            *nodes += 1;
            if t == T_NUM {
                N::Leaf(N_NUM, v)
            } else {
                N::Leaf(N_VAR, v)
            }
        };
        let mut lhs = parse_term(&mut pos, &mut nodes);
        while pos < toks.len() {
            let (t, _) = toks[pos];
            if !(T_PLUS..=T_STAR).contains(&t) {
                break;
            }
            pos += 1;
            let rhs = parse_term(&mut pos, &mut nodes);
            lhs = N::Op(t, Box::new(lhs), Box::new(rhs));
            nodes += 1;
        }
        pos += 1; // ';'
        emit(&lhs, &mut code);
        code.push(1000 + target);
    }

    let mut s = 0i32;
    for &v in &code {
        s = s.wrapping_mul(31).wrapping_add(v);
    }
    s ^ (nodes << 16) ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn matches_reference_in_both_modes() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn source_shape_is_stable() {
        let src = host_source(Size::Tiny);
        assert_eq!(src[0], i32::from(b'{'));
        assert_eq!(*src.last().unwrap(), i32::from(b'}'));
        assert!(src.iter().any(|&c| c == i32::from(b'=')));
    }
}
