//! `compress` — LZW compression and expansion (the SPEC `129.compress`
//! analog).
//!
//! Generates a compressible byte buffer, LZW-compresses it with a
//! hash-probed dictionary, expands the code stream back, verifies the
//! round trip, and returns a checksum of the code stream. Like the
//! original, the work concentrates in a handful of hot methods
//! (`lookup`, `insert`, `compress`, `expandAll`) that are reused
//! enormously — the paper's archetype of an execution-dominated,
//! JIT-friendly program.

use crate::common::{add_rng, host_lib_checksum, library, HostRng, Size};
use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};

const DICT: i32 = 4096;
const HASH: i32 = 8192;
const ALPHA: i32 = 6; // symbols 'a'..='f'
const SEED: i32 = 7;

fn input_len(size: Size) -> i32 {
    size.scale(12288)
}

/// Builds the program.
pub fn program(size: Size) -> Program {
    let n = input_len(size);
    let mut c = ClassAsm::new("Compress");
    add_rng(&mut c);
    for f in ["prefix", "append", "hashtab", "prefix2", "append2", "stack"] {
        c.add_static_field(f);
    }

    // gen(arr, n): fill with 'a' + next(ALPHA)
    {
        let mut m = MethodAsm::new("gen", 2);
        let (arr, n, i) = (0u8, 1u8, 2u8);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iload(n).if_icmp_ge(done);
        m.aload(arr).iload(i);
        m.iconst(ALPHA)
            .invokestatic("Compress", "next", 1, RetKind::Int)
            .iconst(97)
            .iadd();
        m.bastore();
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.ret();
        c.add_method(m);
    }

    // lookup(w, ch) -> code or -1
    {
        let mut m = MethodAsm::new("lookup", 2).returns(RetKind::Int);
        let (w, ch, h, e, code) = (0u8, 1u8, 2u8, 3u8, 4u8);
        let probe = m.new_label();
        let miss = m.new_label();
        let next_probe = m.new_label();
        // h = ((w << 5) ^ ch) & (HASH-1)
        m.iload(w)
            .iconst(5)
            .ishl()
            .iload(ch)
            .ixor()
            .iconst(HASH - 1)
            .iand()
            .istore(h);
        m.bind(probe);
        m.getstatic("Compress", "hashtab")
            .iload(h)
            .iaload()
            .istore(e);
        m.iload(e).if_eq(miss);
        m.iload(e).iconst(1).isub().istore(code);
        // prefix[code-256] == w ?
        m.getstatic("Compress", "prefix")
            .iload(code)
            .iconst(256)
            .isub()
            .iaload();
        m.iload(w).if_icmp_ne(next_probe);
        m.getstatic("Compress", "append")
            .iload(code)
            .iconst(256)
            .isub()
            .iaload();
        m.iload(ch).if_icmp_ne(next_probe);
        m.iload(code).ireturn();
        m.bind(next_probe);
        m.iload(h)
            .iconst(1)
            .iadd()
            .iconst(HASH - 1)
            .iand()
            .istore(h);
        m.goto(probe);
        m.bind(miss);
        m.iconst(-1).ireturn();
        c.add_method(m);
    }

    // insert(w, ch, code)
    {
        let mut m = MethodAsm::new("insert", 3);
        let (w, ch, code, h) = (0u8, 1u8, 2u8, 3u8);
        let probe = m.new_label();
        let place = m.new_label();
        m.iload(w)
            .iconst(5)
            .ishl()
            .iload(ch)
            .ixor()
            .iconst(HASH - 1)
            .iand()
            .istore(h);
        m.bind(probe);
        m.getstatic("Compress", "hashtab")
            .iload(h)
            .iaload()
            .if_eq(place);
        m.iload(h)
            .iconst(1)
            .iadd()
            .iconst(HASH - 1)
            .iand()
            .istore(h);
        m.goto(probe);
        m.bind(place);
        m.getstatic("Compress", "hashtab")
            .iload(h)
            .iload(code)
            .iconst(1)
            .iadd()
            .iastore();
        m.getstatic("Compress", "prefix")
            .iload(code)
            .iconst(256)
            .isub()
            .iload(w)
            .iastore();
        m.getstatic("Compress", "append")
            .iload(code)
            .iconst(256)
            .isub()
            .iload(ch)
            .iastore();
        m.ret();
        c.add_method(m);
    }

    // compress(in, n, out) -> outLen
    {
        let mut m = MethodAsm::new("compress", 3).returns(RetKind::Int);
        let (inp, n, out, w, out_len, next_code, i, ch, k) =
            (0u8, 1u8, 2u8, 3u8, 4u8, 5u8, 6u8, 7u8, 8u8);
        let top = m.new_label();
        let end = m.new_label();
        let found = m.new_label();
        let no_grow = m.new_label();
        let cont = m.new_label();
        m.aload(inp).iconst(0).baload().istore(w);
        m.iconst(0).istore(out_len);
        m.iconst(256).istore(next_code);
        m.iconst(1).istore(i);
        m.bind(top);
        m.iload(i).iload(n).if_icmp_ge(end);
        m.aload(inp).iload(i).baload().istore(ch);
        m.iload(w)
            .iload(ch)
            .invokestatic("Compress", "lookup", 2, RetKind::Int)
            .istore(k);
        m.iload(k).if_ge(found);
        // emit w
        m.aload(out).iload(out_len).iload(w).iastore();
        m.iinc(out_len, 1);
        // grow dictionary
        m.iload(next_code).iconst(DICT).if_icmp_ge(no_grow);
        m.iload(w)
            .iload(ch)
            .iload(next_code)
            .invokestatic("Compress", "insert", 3, RetKind::Void);
        m.iinc(next_code, 1);
        m.bind(no_grow);
        m.iload(ch).istore(w);
        m.goto(cont);
        m.bind(found);
        m.iload(k).istore(w);
        m.bind(cont);
        m.iinc(i, 1).goto(top);
        m.bind(end);
        m.aload(out).iload(out_len).iload(w).iastore();
        m.iinc(out_len, 1);
        m.iload(out_len).ireturn();
        c.add_method(m);
    }

    // expand(code) -> depth ; writes reversed expansion into `stack`
    {
        let mut m = MethodAsm::new("expand", 1).returns(RetKind::Int);
        let (code, d) = (0u8, 1u8);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(d);
        m.bind(top);
        m.iload(code).iconst(256).if_icmp_lt(done);
        m.getstatic("Compress", "stack").iload(d);
        m.getstatic("Compress", "append2")
            .iload(code)
            .iconst(256)
            .isub()
            .iaload();
        m.iastore();
        m.iinc(d, 1);
        m.getstatic("Compress", "prefix2")
            .iload(code)
            .iconst(256)
            .isub()
            .iaload()
            .istore(code);
        m.goto(top);
        m.bind(done);
        m.getstatic("Compress", "stack")
            .iload(d)
            .iload(code)
            .iastore();
        m.iinc(d, 1);
        m.iload(d).ireturn();
        c.add_method(m);
    }

    // decompress(codes, m, out) -> outLen
    {
        let mut me = MethodAsm::new("decompress", 3).returns(RetKind::Int);
        let (codes, mm, out, next_code, prev, out_len, i, cur, d, j) =
            (0u8, 1u8, 2u8, 3u8, 4u8, 5u8, 6u8, 7u8, 8u8, 9u8);
        let top = me.new_label();
        let end = me.new_label();
        let known = me.new_label();
        let write = me.new_label();
        let wl = me.new_label();
        let wdone = me.new_label();
        let no_extra = me.new_label();
        let no_grow = me.new_label();
        me.iconst(256).istore(next_code);
        me.aload(codes).iconst(0).iaload().istore(prev);
        me.aload(out).iconst(0).iload(prev).bastore();
        me.iconst(1).istore(out_len);
        me.iconst(1).istore(i);
        me.bind(top);
        me.iload(i).iload(mm).if_icmp_ge(end);
        me.aload(codes).iload(i).iaload().istore(cur);
        me.iload(cur).iload(next_code).if_icmp_lt(known);
        // KwKwK: expansion(prev) then its first char again
        me.iload(prev)
            .invokestatic("Compress", "expand", 1, RetKind::Int)
            .istore(d);
        me.goto(write);
        me.bind(known);
        me.iload(cur)
            .invokestatic("Compress", "expand", 1, RetKind::Int)
            .istore(d);
        me.bind(write);
        me.iload(d).iconst(1).isub().istore(j);
        me.bind(wl);
        me.iload(j).if_lt(wdone);
        me.aload(out).iload(out_len);
        me.getstatic("Compress", "stack").iload(j).iaload();
        me.bastore();
        me.iinc(out_len, 1);
        me.iinc(j, -1).goto(wl);
        me.bind(wdone);
        // KwKwK extra first char
        me.iload(cur).iload(next_code).if_icmp_lt(no_extra);
        me.aload(out).iload(out_len);
        me.getstatic("Compress", "stack")
            .iload(d)
            .iconst(1)
            .isub()
            .iaload();
        me.bastore();
        me.iinc(out_len, 1);
        me.bind(no_extra);
        // grow decoder dictionary
        me.iload(next_code).iconst(DICT).if_icmp_ge(no_grow);
        me.getstatic("Compress", "prefix2")
            .iload(next_code)
            .iconst(256)
            .isub()
            .iload(prev)
            .iastore();
        me.getstatic("Compress", "append2")
            .iload(next_code)
            .iconst(256)
            .isub();
        me.getstatic("Compress", "stack")
            .iload(d)
            .iconst(1)
            .isub()
            .iaload();
        me.iastore();
        me.iinc(next_code, 1);
        me.bind(no_grow);
        me.iload(cur).istore(prev);
        me.iinc(i, 1).goto(top);
        me.bind(end);
        me.iload(out_len).ireturn();
        c.add_method(me);
    }

    // checksum(arr, n) -> s
    {
        let mut m = MethodAsm::new("checksum", 2).returns(RetKind::Int);
        let (arr, n, s, i) = (0u8, 1u8, 2u8, 3u8);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(s).iconst(0).istore(i);
        m.bind(top);
        m.iload(i).iload(n).if_icmp_ge(done);
        m.iload(s)
            .iconst(31)
            .imul()
            .aload(arr)
            .iload(i)
            .iaload()
            .iadd()
            .istore(s);
        m.iinc(i, 1).goto(top);
        m.bind(done);
        m.iload(s).ireturn();
        c.add_method(m);
    }

    // main
    {
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let (inp, codes, out2, mlen, dlen, i, lib) = (0u8, 1u8, 2u8, 3u8, 4u8, 5u8, 6u8);
        m.invokestatic("LibInit", "boot", 0, RetKind::Int)
            .istore(lib);
        m.iconst(n).newarray(ArrayKind::Byte).astore(inp);
        m.iconst(n + 1).newarray(ArrayKind::Int).astore(codes);
        m.iconst(n + 16).newarray(ArrayKind::Byte).astore(out2);
        m.iconst(DICT - 256)
            .newarray(ArrayKind::Int)
            .putstatic("Compress", "prefix");
        m.iconst(DICT - 256)
            .newarray(ArrayKind::Int)
            .putstatic("Compress", "append");
        m.iconst(HASH)
            .newarray(ArrayKind::Int)
            .putstatic("Compress", "hashtab");
        m.iconst(DICT - 256)
            .newarray(ArrayKind::Int)
            .putstatic("Compress", "prefix2");
        m.iconst(DICT - 256)
            .newarray(ArrayKind::Int)
            .putstatic("Compress", "append2");
        m.iconst(DICT + 64)
            .newarray(ArrayKind::Int)
            .putstatic("Compress", "stack");
        m.iconst(SEED)
            .invokestatic("Compress", "srand", 1, RetKind::Void);
        m.aload(inp)
            .iconst(n)
            .invokestatic("Compress", "gen", 2, RetKind::Void);
        m.aload(inp)
            .iconst(n)
            .aload(codes)
            .invokestatic("Compress", "compress", 3, RetKind::Int)
            .istore(mlen);
        m.aload(codes)
            .iload(mlen)
            .aload(out2)
            .invokestatic("Compress", "decompress", 3, RetKind::Int)
            .istore(dlen);
        // verify round trip
        let bad_len = m.new_label();
        let vloop = m.new_label();
        let vdone = m.new_label();
        let bad_data = m.new_label();
        m.iload(dlen).iconst(n).if_icmp_ne(bad_len);
        m.iconst(0).istore(i);
        m.bind(vloop);
        m.iload(i).iconst(n).if_icmp_ge(vdone);
        m.aload(inp).iload(i).baload();
        m.aload(out2).iload(i).baload();
        m.if_icmp_ne(bad_data);
        m.iinc(i, 1).goto(vloop);
        m.bind(vdone);
        m.aload(codes)
            .iload(mlen)
            .invokestatic("Compress", "checksum", 2, RetKind::Int);
        m.iload(mlen).iconst(16).ishl().ixor();
        m.iload(lib).ixor();
        m.ireturn();
        m.bind(bad_len);
        m.iconst(-1).ireturn();
        m.bind(bad_data);
        m.iconst(-2).ireturn();
        c.add_method(m);
    }

    let mut classes = vec![c];
    classes.extend(library(size));
    Program::build(classes, "Compress", "main").expect("compress assembles")
}

/// Host-side reference implementation: generates the same input,
/// compresses it, and returns the same checksum the bytecode returns.
pub fn expected(size: Size) -> i32 {
    let n = input_len(size) as usize;
    let mut rng = HostRng::new(SEED);
    let input: Vec<i32> = (0..n).map(|_| 97 + rng.next(ALPHA)).collect();

    // LZW compress.
    let mut prefix = vec![0i32; (DICT - 256) as usize];
    let mut append = vec![0i32; (DICT - 256) as usize];
    let mut hashtab = vec![0i32; HASH as usize];
    let mut codes = Vec::new();
    let mut next_code = 256i32;
    let mut w = input[0];
    let lookup = |prefix: &[i32], append: &[i32], hashtab: &[i32], w: i32, ch: i32| -> i32 {
        let mut h = ((w << 5) ^ ch) & (HASH - 1);
        loop {
            let e = hashtab[h as usize];
            if e == 0 {
                return -1;
            }
            let code = e - 1;
            if prefix[(code - 256) as usize] == w && append[(code - 256) as usize] == ch {
                return code;
            }
            h = (h + 1) & (HASH - 1);
        }
    };
    for &ch in &input[1..] {
        let k = lookup(&prefix, &append, &hashtab, w, ch);
        if k >= 0 {
            w = k;
        } else {
            codes.push(w);
            if next_code < DICT {
                let mut h = ((w << 5) ^ ch) & (HASH - 1);
                while hashtab[h as usize] != 0 {
                    h = (h + 1) & (HASH - 1);
                }
                hashtab[h as usize] = next_code + 1;
                prefix[(next_code - 256) as usize] = w;
                append[(next_code - 256) as usize] = ch;
                next_code += 1;
            }
            w = ch;
        }
    }
    codes.push(w);

    let mut s = 0i32;
    for &c in &codes {
        s = s.wrapping_mul(31).wrapping_add(c);
    }
    s ^ ((codes.len() as i32) << 16) ^ host_lib_checksum(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn round_trips_and_matches_reference() {
        let p = program(Size::Tiny);
        let want = expected(Size::Tiny);
        assert!(want != -1 && want != -2);
        for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
            let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
            assert_eq!(r.exit_value, Some(want));
        }
    }

    #[test]
    fn compresses_at_s1() {
        let p = program(Size::S1);
        let r = Vm::new(&p, VmConfig::jit())
            .run(&mut CountingSink::new())
            .unwrap();
        assert_eq!(r.exit_value, Some(expected(Size::S1)));
        // Small alphabet must actually compress.
        assert!(r.counters.bytecodes > 100_000);
    }
}
