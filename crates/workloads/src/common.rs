//! Shared workload infrastructure: input sizes, the `Sys` native
//! class, and bytecode building blocks (seeded RNG, integer sqrt).

use jrt_bytecode::{ClassAsm, MethodAsm, RetKind};

/// Input scale, analogous to SpecJVM98's `s1`/`s10`/`s100` naming
/// (the paper uses `s1`; sizes do not scale linearly there either).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size {
    /// Minimal size for unit tests and quick benches.
    Tiny,
    /// The default experiment size (the paper's `s1`).
    S1,
    /// A larger size for method-reuse studies (the paper's `s10`).
    S10,
}

impl Size {
    /// Scales a base `s1` count to this size.
    pub fn scale(self, s1: i32) -> i32 {
        match self {
            Size::Tiny => (s1 / 16).max(1),
            Size::S1 => s1,
            Size::S10 => s1.saturating_mul(6),
        }
    }
}

/// The `Sys` class declaring the VM's native intrinsics. Include it in
/// every program that prints, copies arrays, or spawns threads.
pub fn sys_class() -> ClassAsm {
    let mut sys = ClassAsm::new("Sys");
    sys.add_method(MethodAsm::native("print_int", 1, RetKind::Void));
    sys.add_method(MethodAsm::native("print_char", 1, RetKind::Void));
    sys.add_method(MethodAsm::native("arraycopy", 5, RetKind::Void));
    sys.add_method(MethodAsm::native("spawn", 1, RetKind::Int));
    sys.add_method(MethodAsm::native("join", 1, RetKind::Void));
    sys
}

/// Adds to `class` a seeded LCG: a static field `seed`, plus
///
/// * `srand(s)` — sets the seed;
/// * `next(bound)` — returns a value in `[0, bound)` from
///   `seed = seed * 1103515245 + 12345`, using the high bits.
///
/// The same constants as classic `rand()`, so sequences are easy to
/// mirror on the host side when computing expected outputs.
pub fn add_rng(class: &mut ClassAsm) {
    class.add_static_field("seed");

    let mut srand = MethodAsm::new("srand", 1);
    srand.iload(0).putstatic_owner(class, "seed").ret();
    class.add_method(srand);

    let mut next = MethodAsm::new("next", 1).returns(RetKind::Int);
    // seed = seed * 1103515245 + 12345
    next.getstatic_owner(class, "seed")
        .iconst(1103515245)
        .imul()
        .iconst(12345)
        .iadd()
        .dup()
        .putstatic_owner(class, "seed");
    // return ((seed >>> 16) & 0x7FFF) % bound
    next.iconst(16)
        .iushr()
        .iconst(0x7FFF)
        .iand()
        .iload(0)
        .irem()
        .ireturn();
    class.add_method(next);
}

/// Host-side mirror of the bytecode LCG, for computing expected
/// checksums in tests and for documenting workload inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRng {
    /// Current seed.
    pub seed: i32,
}

impl HostRng {
    /// Creates the RNG with the given seed.
    pub fn new(seed: i32) -> Self {
        HostRng { seed }
    }

    /// Mirrors `next(bound)` in [`add_rng`].
    pub fn next(&mut self, bound: i32) -> i32 {
        self.seed = self.seed.wrapping_mul(1103515245).wrapping_add(12345);
        (((self.seed as u32) >> 16) & 0x7FFF) as i32 % bound
    }
}

/// Number of synthetic library classes at `s1` (real JVMs load a
/// couple hundred system classes before `main`; translation of their
/// methods is a large share of JIT time for short-running programs,
/// which is the mechanism behind Figure 1's `hello`/`db` bars).
pub const LIB_CLASSES_S1: i32 = 32;
/// Methods per synthetic library class.
pub const LIB_METHODS: i32 = 16;

fn lib_classes(size: Size) -> i32 {
    match size {
        Size::Tiny => 6,
        _ => LIB_CLASSES_S1,
    }
}

/// Per-method work parameters, derived deterministically from the
/// method's position.
fn lib_params(k: i32, j: i32) -> (i32, i32, i32, i32) {
    let mul = 3 + (k * 7 + j) % 11;
    let add = 1 + (k * 13 + j * 5) % 17;
    let iters = 1 + (k + j) % 2;
    let padding = 8 + (k * 3 + j) % 24;
    (mul, add, iters, padding)
}

/// Builds the synthetic class library: classes `Lib0..LibN`, each with
/// [`LIB_METHODS`] single-argument static methods plus an `init` that
/// invokes them all once, and a `LibInit` class whose `boot()` runs
/// every class's `init` and returns a checksum. Include the returned
/// classes in the program and call `LibInit::boot/0 -> Int` at the top
/// of `main`, folding the result into the exit checksum (mirror it on
/// the host with [`host_lib_checksum`]).
pub fn library(size: Size) -> Vec<ClassAsm> {
    let ncls = lib_classes(size);
    let mut out = Vec::new();

    for k in 0..ncls {
        let cname = format!("Lib{k}");
        let mut c = ClassAsm::new(&cname);
        for j in 0..LIB_METHODS {
            let (mul, add, iters, padding) = lib_params(k, j);
            let mut m = MethodAsm::new(&format!("m{j}"), 1).returns(RetKind::Int);
            let (a, r, i, t) = (0u8, 1u8, 2u8, 3u8);
            // r = a * mul + add
            m.iload(a).iconst(mul).imul().iconst(add).iadd().istore(r);
            // A short loop over the live chain only: startup methods
            // are mostly straight-line, so translating a run-once
            // method must NOT amortize inside a single invocation —
            // that balance is what limits the paper's oracle to
            // 10-15% (Figure 1).
            let top = m.new_label();
            let done = m.new_label();
            m.iconst(0).istore(i);
            m.bind(top);
            m.iload(i).iconst(iters).if_icmp_ge(done);
            m.iload(r).iconst(mul).imul().iconst(add).iadd().istore(r);
            m.iinc(i, 1).goto(top);
            m.bind(done);
            // Straight-line tail: a data-dependent branch plus dead
            // padding work (field inits, table setup) executed once.
            let odd = m.new_label();
            let merged = m.new_label();
            m.iload(r).iconst(1).iand().if_ne(odd);
            m.iload(r).iconst(k).isub().istore(t);
            m.goto(merged);
            m.bind(odd);
            m.iload(r).iconst(j).iadd().istore(t);
            m.bind(merged);
            for p in 0..padding {
                m.iload(t).iconst(p + 1).ixor().istore(t);
            }
            m.iload(r).ireturn();
            c.add_method(m);
        }
        // init(): t = 0; for j: t = t*31 + mj(k*31 + j)
        let mut init = MethodAsm::new("init", 0).returns(RetKind::Int);
        let t = 0u8;
        init.iconst(0).istore(t);
        for j in 0..LIB_METHODS {
            init.iload(t).iconst(31).imul();
            init.iconst(k * 31 + j)
                .invokestatic(&cname, &format!("m{j}"), 1, RetKind::Int);
            init.iadd().istore(t);
        }
        init.iload(t).ireturn();
        c.add_method(init);
        out.push(c);
    }

    // LibInit.boot(): s = 0; for k: s = s*31 + Libk.init()
    let mut boot_cls = ClassAsm::new("LibInit");
    let mut boot = MethodAsm::new("boot", 0).returns(RetKind::Int);
    let s = 0u8;
    boot.iconst(0).istore(s);
    for k in 0..ncls {
        boot.iload(s).iconst(31).imul();
        boot.invokestatic(&format!("Lib{k}"), "init", 0, RetKind::Int);
        boot.iadd().istore(s);
    }
    boot.iload(s).ireturn();
    boot_cls.add_method(boot);
    out.push(boot_cls);
    out
}

/// Host-side mirror of `LibInit::boot()`.
pub fn host_lib_checksum(size: Size) -> i32 {
    let ncls = lib_classes(size);
    let mut s = 0i32;
    for k in 0..ncls {
        let mut t = 0i32;
        for j in 0..LIB_METHODS {
            let (mul, add, iters, _) = lib_params(k, j);
            let a = k * 31 + j;
            let mut r = a.wrapping_mul(mul).wrapping_add(add);
            for _ in 0..iters {
                r = r.wrapping_mul(mul).wrapping_add(add);
            }
            t = t.wrapping_mul(31).wrapping_add(r);
        }
        s = s.wrapping_mul(31).wrapping_add(t);
    }
    s
}

/// Convenience trait so RNG helpers can reference the owning class's
/// name without repeating it.
trait StaticOps {
    fn getstatic_owner(&mut self, class: &ClassAsm, field: &str) -> &mut Self;
    fn putstatic_owner(&mut self, class: &ClassAsm, field: &str) -> &mut Self;
}

impl StaticOps for MethodAsm {
    fn getstatic_owner(&mut self, class: &ClassAsm, field: &str) -> &mut Self {
        let name = class.name().to_owned();
        self.getstatic(&name, field)
    }
    fn putstatic_owner(&mut self, class: &ClassAsm, field: &str) -> &mut Self {
        let name = class.name().to_owned();
        self.putstatic(&name, field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::Program;
    use jrt_trace::CountingSink;
    use jrt_vm::{Vm, VmConfig};

    #[test]
    fn bytecode_rng_matches_host_rng() {
        let mut c = ClassAsm::new("Main");
        add_rng(&mut c);
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        m.iconst(42).invokestatic("Main", "srand", 1, RetKind::Void);
        // sum of 20 draws in [0, 100)
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(0).iconst(0).istore(1);
        m.bind(top);
        m.iload(1).iconst(20).if_icmp_ge(done);
        m.iload(0)
            .iconst(100)
            .invokestatic("Main", "next", 1, RetKind::Int)
            .iadd()
            .istore(0);
        m.iinc(1, 1).goto(top);
        m.bind(done);
        m.iload(0).ireturn();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").unwrap();
        let r = Vm::new(&p, VmConfig::jit())
            .run(&mut CountingSink::new())
            .unwrap();

        let mut rng = HostRng::new(42);
        let expect: i32 = (0..20).map(|_| rng.next(100)).sum();
        assert_eq!(r.exit_value, Some(expect));
    }

    #[test]
    fn sizes_scale_monotonically() {
        assert!(Size::Tiny.scale(160) < Size::S1.scale(160));
        assert!(Size::S1.scale(160) < Size::S10.scale(160));
        assert!(Size::Tiny.scale(1) >= 1);
    }
}
