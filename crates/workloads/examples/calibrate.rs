//! Prints per-benchmark dynamic trace sizes at `s1`: bytecodes,
//! native instructions per mode, and the translate-phase share — the
//! calibration view used to tune the workloads against Figure 1.
//!
//! ```sh
//! cargo run --release -p jrt-workloads --example calibrate
//! ```
use jrt_trace::CountingSink;
use jrt_vm::{Vm, VmConfig};
use jrt_workloads::{suite_with_hello, Size};

fn main() {
    for spec in suite_with_hello() {
        let p = (spec.build)(Size::S1);
        let t0 = std::time::Instant::now();
        let mut s1 = CountingSink::new();
        let ri = Vm::new(&p, VmConfig::interpreter()).run(&mut s1).unwrap();
        let ti = t0.elapsed();
        let t0 = std::time::Instant::now();
        let mut s2 = CountingSink::new();
        let rj = Vm::new(&p, VmConfig::jit()).run(&mut s2).unwrap();
        let tj = t0.elapsed();
        assert_eq!(
            ri.exit_value,
            Some((spec.expected)(Size::S1)),
            "{}",
            spec.name
        );
        assert_eq!(rj.exit_value, ri.exit_value, "{}", spec.name);
        println!(
            "{:10} bytecodes={:>10} interp_insts={:>11} ({:>6.2?}) jit_insts={:>11} ({:>6.2?}) xlate={:>9}",
            spec.name, rj.counters.bytecodes, s1.total(), ti, s2.total(), tj,
            s2.phase(jrt_trace::Phase::Translate),
        );
    }
}
