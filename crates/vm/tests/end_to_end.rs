//! End-to-end VM tests: whole programs executed under both engines.

use jrt_bytecode::{ArrayKind, ClassAsm, MethodAsm, Program, RetKind};
use jrt_trace::{CountingSink, InstMix, Phase, RecordingSink};
use jrt_vm::{
    CacheScope, CodeCacheConfig, ExecMode, JitPolicy, OracleDecisions, SyncKind, Vm, VmConfig,
    VmError,
};

/// The `Sys` class with the VM's native intrinsics.
fn sys_class() -> ClassAsm {
    let mut sys = ClassAsm::new("Sys");
    sys.add_method(MethodAsm::native("print_int", 1, RetKind::Void));
    sys.add_method(MethodAsm::native("print_char", 1, RetKind::Void));
    sys.add_method(MethodAsm::native("arraycopy", 5, RetKind::Void));
    sys.add_method(MethodAsm::native("spawn", 1, RetKind::Int));
    sys.add_method(MethodAsm::native("join", 1, RetKind::Void));
    sys
}

fn run_both(program: &Program) -> (i32, i32) {
    let a = Vm::new(program, VmConfig::interpreter())
        .run(&mut CountingSink::new())
        .expect("interp run");
    let b = Vm::new(program, VmConfig::jit())
        .run(&mut CountingSink::new())
        .expect("jit run");
    (
        a.exit_value.expect("int exit"),
        b.exit_value.expect("int exit"),
    )
}

/// Sum of 1..=100 via a loop.
fn loop_program() -> Program {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    let (sum, i) = (0u8, 1u8);
    let top = m.new_label();
    let end = m.new_label();
    m.iconst(0).istore(sum).iconst(1).istore(i);
    m.bind(top);
    m.iload(i).iconst(100).if_icmp_gt(end);
    m.iload(sum).iload(i).iadd().istore(sum);
    m.iinc(i, 1).goto(top);
    m.bind(end);
    m.iload(sum).ireturn();
    c.add_method(m);
    Program::build(vec![c], "Main", "main").unwrap()
}

#[test]
fn loop_sums_in_both_modes() {
    let p = loop_program();
    let (i, j) = run_both(&p);
    assert_eq!(i, 5050);
    assert_eq!(j, 5050);
}

#[test]
fn arithmetic_ops_match_java_semantics() {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    // (((7 * -3) % 4) << 2) ^ (100 / 7) with wrapping add of i32::MAX
    m.iconst(7).iconst(-3).imul(); // -21
    m.iconst(4).irem(); // -1
    m.iconst(2).ishl(); // -4
    m.iconst(100).iconst(7).idiv(); // 14
    m.ixor(); // -4 ^ 14 = -14
    m.iconst(i32::MAX).iadd(); // wrapping
    m.ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    let (a, b) = run_both(&p);
    let expect = (-14i32).wrapping_add(i32::MAX);
    assert_eq!(a, expect);
    assert_eq!(b, expect);
}

/// Object graph + virtual dispatch: Shape.area() overridden.
fn shapes_program() -> Program {
    let mut shape = ClassAsm::new("Shape");
    shape.add_field("side");
    let mut area = MethodAsm::new_instance("area", 0).returns(RetKind::Int);
    area.aload(0)
        .getfield("Shape", "side")
        .dup()
        .imul()
        .ireturn();
    shape.add_method(area);
    let mut ctor = MethodAsm::new_instance("init", 1);
    ctor.aload(0).iload(1).putfield("Shape", "side").ret();
    shape.add_method(ctor);

    let mut tri = ClassAsm::with_super("Tri", "Shape");
    let mut area2 = MethodAsm::new_instance("area", 0).returns(RetKind::Int);
    area2
        .aload(0)
        .getfield("Shape", "side")
        .dup()
        .imul()
        .iconst(2)
        .idiv()
        .ireturn();
    tri.add_method(area2);

    let mut main = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    // new Shape(4).area() + new Tri(4).area() = 16 + 8 = 24
    m.new_obj("Shape").astore(0);
    m.aload(0)
        .iconst(4)
        .invokespecial("Shape", "init", 1, RetKind::Void);
    m.new_obj("Tri").astore(1);
    m.aload(1)
        .iconst(4)
        .invokespecial("Shape", "init", 1, RetKind::Void);
    m.aload(0).invokevirtual("Shape", "area", 0, RetKind::Int);
    m.aload(1).invokevirtual("Shape", "area", 0, RetKind::Int);
    m.iadd().ireturn();
    c_add(&mut main, m);
    Program::build(vec![shape, tri, main], "Main", "main").unwrap()
}

fn c_add(c: &mut ClassAsm, m: MethodAsm) {
    c.add_method(m);
}

#[test]
fn virtual_dispatch_selects_override() {
    let p = shapes_program();
    let (a, b) = run_both(&p);
    assert_eq!(a, 24);
    assert_eq!(b, 24);
}

#[test]
fn arrays_and_tableswitch() {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    let (arr, i, acc) = (0u8, 1u8, 2u8);
    // arr[k] = classify(k) via tableswitch, then sum the array.
    m.iconst(8).newarray(ArrayKind::Int).astore(arr);
    m.iconst(0).istore(i);
    let top = m.new_label();
    let done = m.new_label();
    let c0 = m.new_label();
    let c1 = m.new_label();
    let dfl = m.new_label();
    let store = m.new_label();
    m.bind(top);
    m.iload(i).iconst(8).if_icmp_ge(done);
    m.iload(i).iconst(3).irem();
    m.tableswitch(0, dfl, &[c0, c1]);
    m.bind(c0);
    m.iconst(100).goto(store);
    m.bind(c1);
    m.iconst(10).goto(store);
    m.bind(dfl);
    m.iconst(1).goto(store);
    m.bind(store);
    m.istore(3);
    m.aload(arr).iload(i).iload(3).iastore();
    m.iinc(i, 1).goto(top);
    m.bind(done);
    // Sum.
    m.iconst(0).istore(acc).iconst(0).istore(i);
    let t2 = m.new_label();
    let d2 = m.new_label();
    m.bind(t2);
    m.iload(i).aload(arr).arraylength().if_icmp_ge(d2);
    m.iload(acc).aload(arr).iload(i).iaload().iadd().istore(acc);
    m.iinc(i, 1).goto(t2);
    m.bind(d2);
    m.iload(acc).ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    // k%3: 0,1,2,0,1,2,0,1 -> 100,10,1,100,10,1,100,10 = 332
    let (a, b) = run_both(&p);
    assert_eq!(a, 332);
    assert_eq!(b, 332);
}

#[test]
fn intrinsics_print_and_arraycopy() {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.iconst(4).newarray(ArrayKind::Int).astore(0);
    m.iconst(4).newarray(ArrayKind::Int).astore(1);
    m.aload(0).iconst(0).iconst(11).iastore();
    m.aload(0).iconst(1).iconst(22).iastore();
    m.aload(0)
        .iconst(0)
        .aload(1)
        .iconst(2)
        .iconst(2)
        .invokestatic("Sys", "arraycopy", 5, RetKind::Void);
    m.aload(1)
        .iconst(3)
        .iaload()
        .invokestatic("Sys", "print_int", 1, RetKind::Void);
    m.aload(1)
        .iconst(2)
        .iaload()
        .aload(1)
        .iconst(3)
        .iaload()
        .iadd()
        .ireturn();
    c.add_method(m);
    let p = Program::build(vec![c, sys_class()], "Main", "main").unwrap();
    let r = Vm::new(&p, VmConfig::jit())
        .run(&mut CountingSink::new())
        .unwrap();
    assert_eq!(r.exit_value, Some(33));
    assert_eq!(r.output.ints, vec![22]);
}

#[test]
fn recursion_fibonacci() {
    let mut c = ClassAsm::new("Main");
    let mut fib = MethodAsm::new("fib", 1).returns(RetKind::Int);
    let rec = fib.new_label();
    fib.iload(0).iconst(2).if_icmp_ge(rec);
    fib.iload(0).ireturn();
    fib.bind(rec);
    fib.iload(0)
        .iconst(1)
        .isub()
        .invokestatic("Main", "fib", 1, RetKind::Int);
    fib.iload(0)
        .iconst(2)
        .isub()
        .invokestatic("Main", "fib", 1, RetKind::Int);
    fib.iadd().ireturn();
    c.add_method(fib);
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.iconst(12)
        .invokestatic("Main", "fib", 1, RetKind::Int)
        .ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    let (a, b) = run_both(&p);
    assert_eq!(a, 144);
    assert_eq!(b, 144);
}

#[test]
fn synchronized_methods_and_monitor_ops() {
    let mut c = ClassAsm::new("Main");
    c.add_static_field("counter");
    let mut bump = MethodAsm::new("bump", 0).synchronized();
    bump.getstatic("Main", "counter")
        .iconst(1)
        .iadd()
        .putstatic("Main", "counter");
    bump.ret();
    c.add_method(bump);
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    let (i,) = (0u8,);
    let top = m.new_label();
    let done = m.new_label();
    m.iconst(0).istore(i);
    m.bind(top);
    m.iload(i).iconst(50).if_icmp_ge(done);
    m.invokestatic("Main", "bump", 0, RetKind::Void);
    m.iinc(i, 1).goto(top);
    m.bind(done);
    m.getstatic("Main", "counter").ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();

    for sync in SyncKind::ALL {
        let r = Vm::new(&p, VmConfig::jit().with_sync(sync))
            .run(&mut CountingSink::new())
            .unwrap();
        assert_eq!(r.exit_value, Some(50), "{sync:?}");
        assert_eq!(r.sync_stats.enters(), 50, "{sync:?}");
        assert_eq!(r.sync_stats.exits, 50, "{sync:?}");
        // All uncontended first-acquisitions: case (a).
        assert_eq!(r.sync_stats.case_counts[0], 50, "{sync:?}");
    }
}

#[test]
fn spawn_join_two_threads() {
    // Worker.run() writes sum of its range into its field.
    let mut worker = ClassAsm::new("Worker");
    worker.add_field("from");
    worker.add_field("result");
    let mut run = MethodAsm::new_instance("run", 0);
    let (i, acc) = (1u8, 2u8);
    let top = run.new_label();
    let done = run.new_label();
    run.iconst(0).istore(acc);
    run.aload(0).getfield("Worker", "from").istore(i);
    run.bind(top);
    run.iload(i)
        .aload(0)
        .getfield("Worker", "from")
        .iconst(100)
        .iadd()
        .if_icmp_ge(done);
    run.iload(acc).iload(i).iadd().istore(acc);
    run.iinc(i, 1).goto(top);
    run.bind(done);
    run.aload(0).iload(acc).putfield("Worker", "result").ret();
    worker.add_method(run);

    let mut main = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.new_obj("Worker").astore(0);
    m.aload(0).iconst(0).putfield("Worker", "from");
    m.new_obj("Worker").astore(1);
    m.aload(1).iconst(1000).putfield("Worker", "from");
    m.aload(0)
        .invokestatic("Sys", "spawn", 1, RetKind::Int)
        .istore(2);
    m.aload(1)
        .invokestatic("Sys", "spawn", 1, RetKind::Int)
        .istore(3);
    m.iload(2).invokestatic("Sys", "join", 1, RetKind::Void);
    m.iload(3).invokestatic("Sys", "join", 1, RetKind::Void);
    m.aload(0).getfield("Worker", "result");
    m.aload(1).getfield("Worker", "result");
    m.iadd().ireturn();
    main.add_method(m);
    let p = Program::build(vec![worker, main, sys_class()], "Main", "main").unwrap();

    let expect: i32 = (0..100).sum::<i32>() + (1000..1100).sum::<i32>();
    for cfg in [VmConfig::interpreter(), VmConfig::jit()] {
        let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
        assert_eq!(r.exit_value, Some(expect));
        assert_eq!(r.counters.threads_created, 3);
    }
}

#[test]
fn interp_emits_dispatch_jit_emits_code_cache() {
    let p = loop_program();

    let mut rec = RecordingSink::new();
    Vm::new(&p, VmConfig::interpreter()).run(&mut rec).unwrap();
    assert!(
        rec.events
            .iter()
            .any(|e| e.phase == Phase::InterpDispatch
                && e.class == jrt_trace::InstClass::IndirectJump)
    );
    assert!(rec.events.iter().all(|e| e.phase != Phase::Translate));

    let mut rec = RecordingSink::new();
    Vm::new(&p, VmConfig::jit()).run(&mut rec).unwrap();
    assert!(rec.events.iter().any(|e| e.phase == Phase::Translate));
    assert!(rec.events.iter().any(|e| e.phase == Phase::NativeExec
        && jrt_trace::Region::classify(e.pc) == Some(jrt_trace::Region::CodeCache)));
}

#[test]
fn interp_has_higher_memory_fraction_than_jit() {
    let p = loop_program();
    let mut interp_mix = InstMix::new();
    Vm::new(&p, VmConfig::interpreter())
        .run(&mut interp_mix)
        .unwrap();
    let mut jit_mix = InstMix::new();
    Vm::new(&p, VmConfig::jit()).run(&mut jit_mix).unwrap();
    assert!(
        interp_mix.memory_fraction() > jit_mix.memory_fraction(),
        "interp {} vs jit {}",
        interp_mix.memory_fraction(),
        jit_mix.memory_fraction()
    );
    assert!(interp_mix.indirect_share_of_transfers() > jit_mix.indirect_share_of_transfers());
}

#[test]
fn oracle_is_no_slower_than_either_pure_mode() {
    // The Figure 1 property: opt (per-method oracle) beats or matches
    // both pure interpretation and translate-everything.
    let p = shapes_program();
    let mut i_sink = CountingSink::new();
    let interp = Vm::new(&p, VmConfig::interpreter())
        .run(&mut i_sink)
        .unwrap();
    let mut j_sink = CountingSink::new();
    let jit = Vm::new(&p, VmConfig::jit()).run(&mut j_sink).unwrap();
    let decisions = OracleDecisions::from_profiles(&interp.profile, &jit.profile);

    let mut o_sink = CountingSink::new();
    let r = Vm::new(&p, VmConfig::oracle(decisions))
        .run(&mut o_sink)
        .unwrap();
    assert_eq!(r.exit_value, Some(24));
    // Allow 2% slack: the oracle optimizes per-method costs, and
    // call-boundary emission differs slightly across modes.
    let slack = |n: u64| n + n / 50;
    assert!(
        o_sink.total() <= slack(i_sink.total()),
        "opt {} vs interp {}",
        o_sink.total(),
        i_sink.total()
    );
    assert!(
        o_sink.total() <= slack(j_sink.total()),
        "opt {} vs jit {}",
        o_sink.total(),
        j_sink.total()
    );
}

#[test]
fn threshold_policy_translates_after_k_invocations() {
    let p = {
        // main calls helper() 10 times.
        let mut c = ClassAsm::new("Main");
        let mut h = MethodAsm::new("helper", 1).returns(RetKind::Int);
        h.iload(0).iconst(3).imul().ireturn();
        c.add_method(h);
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let top = m.new_label();
        let done = m.new_label();
        m.iconst(0).istore(0).iconst(0).istore(1);
        m.bind(top);
        m.iload(1).iconst(10).if_icmp_ge(done);
        m.iload(0)
            .iload(1)
            .invokestatic("Main", "helper", 1, RetKind::Int)
            .iadd()
            .istore(0);
        m.iinc(1, 1).goto(top);
        m.bind(done);
        m.iload(0).ireturn();
        c.add_method(m);
        Program::build(vec![c], "Main", "main").unwrap()
    };
    let cfg = VmConfig {
        mode: ExecMode::Jit(JitPolicy::Threshold(5)),
        ..VmConfig::default()
    };
    let r = Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap();
    assert_eq!(r.exit_value, Some(135)); // 3 * sum(0..10)
    assert_eq!(r.counters.methods_translated, 1, "helper only");
    let helper = p.resolve_method("Main", "helper").unwrap();
    let prof = r.profile.get(helper).unwrap();
    assert!(prof.interp_cycles > 0, "first invocations interpreted");
    assert!(prof.native_cycles > 0, "later invocations translated");
}

#[test]
fn gc_collects_garbage_during_run() {
    // Allocate 5000 throwaway arrays with a tiny GC threshold.
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    let top = m.new_label();
    let done = m.new_label();
    m.iconst(0).istore(0);
    m.bind(top);
    m.iload(0).iconst(5000).if_icmp_ge(done);
    m.iconst(64).newarray(ArrayKind::Int).astore(1);
    m.iinc(0, 1).goto(top);
    m.bind(done);
    m.iload(0).ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    let cfg = VmConfig {
        gc_threshold: 64 * 1024,
        ..VmConfig::jit()
    };
    let mut sink = CountingSink::new();
    let r = Vm::new(&p, cfg).run(&mut sink).unwrap();
    assert_eq!(r.exit_value, Some(5000));
    assert!(r.counters.gc_runs > 0);
    assert!(r.counters.gc_freed_bytes > 0);
    assert!(sink.phase(Phase::Gc) > 0);
}

#[test]
fn null_dereference_is_reported() {
    let mut c = ClassAsm::new("Main");
    c.add_field("x");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.aconst_null().getfield("Main", "x").ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    let err = Vm::new(&p, VmConfig::jit())
        .run(&mut CountingSink::new())
        .unwrap_err();
    assert!(matches!(err, VmError::NullPointer { .. }));
}

#[test]
fn divide_by_zero_is_reported() {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
    m.iconst(1).iconst(0).idiv().ireturn();
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    let err = Vm::new(&p, VmConfig::interpreter())
        .run(&mut CountingSink::new())
        .unwrap_err();
    assert!(matches!(err, VmError::DivideByZero { .. }));
}

#[test]
fn budget_exceeded_stops_infinite_loop() {
    let mut c = ClassAsm::new("Main");
    let mut m = MethodAsm::new("main", 0);
    let top = m.new_label();
    m.bind(top);
    m.goto(top);
    c.add_method(m);
    let p = Program::build(vec![c], "Main", "main").unwrap();
    let cfg = VmConfig {
        max_bytecodes: 10_000,
        ..VmConfig::interpreter()
    };
    assert_eq!(
        Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap_err(),
        VmError::BudgetExceeded
    );
}

#[test]
fn jit_footprint_exceeds_interpreter_footprint() {
    let p = shapes_program();
    let interp = Vm::new(&p, VmConfig::interpreter())
        .run(&mut CountingSink::new())
        .unwrap();
    let jit = Vm::new(&p, VmConfig::jit())
        .run(&mut CountingSink::new())
        .unwrap();
    assert_eq!(interp.footprint.code_cache_bytes, 0);
    assert!(jit.footprint.code_cache_bytes > 0);
    assert!(jit.footprint.total() > interp.footprint.total());
    let ratio = jit.footprint.total() as f64 / interp.footprint.total() as f64;
    assert!(ratio > 1.0 && ratio < 2.0, "Table 1 band, got {ratio}");
}

#[test]
fn jit_executes_fewer_instructions_on_hot_loops() {
    let p = loop_program();
    let mut i_sink = CountingSink::new();
    Vm::new(&p, VmConfig::interpreter())
        .run(&mut i_sink)
        .unwrap();
    let mut j_sink = CountingSink::new();
    Vm::new(&p, VmConfig::jit()).run(&mut j_sink).unwrap();
    // Ignoring one-time class-load cost, compare the execution parts:
    let interp_exec = i_sink.phase(Phase::InterpDispatch)
        + i_sink.phase(Phase::InterpHandler)
        + i_sink.phase(Phase::Runtime);
    let jit_exec = j_sink.phase(Phase::NativeExec) + j_sink.phase(Phase::Runtime);
    assert!(
        interp_exec > 2 * jit_exec,
        "interp {interp_exec} vs jit {jit_exec}"
    );
}

#[test]
fn fuel_traps_at_exact_bytecode_index() {
    let p = loop_program();
    let full = Vm::new(&p, VmConfig::interpreter())
        .run(&mut CountingSink::new())
        .unwrap();
    let budget = full.counters.bytecodes / 2;
    let cfg = VmConfig::interpreter().with_fuel(budget);
    let mut vm = Vm::new(&p, cfg);
    let run = vm.run_observed(&mut CountingSink::new());
    assert_eq!(
        run.observables.outcome,
        Err(format!("fuel exhausted after {budget} bytecodes"))
    );
    assert_eq!(run.observables.bytecodes, budget);
    // A budget past the program's end never fires.
    let generous = VmConfig::interpreter().with_fuel(full.counters.bytecodes + 1);
    let r = Vm::new(&p, generous).run(&mut CountingSink::new()).unwrap();
    assert_eq!(r.exit_value, Some(5050));
}

#[test]
fn fuel_wins_ties_against_max_bytecodes() {
    let p = loop_program();
    let cfg = VmConfig {
        max_bytecodes: 50,
        ..VmConfig::interpreter().with_fuel(50)
    };
    assert_eq!(
        Vm::new(&p, cfg).run(&mut CountingSink::new()).unwrap_err(),
        VmError::FuelExhausted { budget: 50 }
    );
}

#[test]
fn reset_vm_reproduces_fresh_observables() {
    let p = loop_program();
    let q = shapes_program();
    for cfg in [
        VmConfig::interpreter(),
        VmConfig::jit(),
        VmConfig::ir_jit(),
        VmConfig::jit().with_code_cache(CodeCacheConfig::default().with_scope(CacheScope::Shared)),
    ] {
        let fresh_p = Vm::new(&p, cfg.clone()).run_observed(&mut CountingSink::new());
        let fresh_q = Vm::new(&q, cfg.clone()).run_observed(&mut CountingSink::new());
        let mut vm = Vm::new(&p, cfg);
        let first = vm.run_observed(&mut CountingSink::new());
        assert_eq!(first.observables, fresh_p.observables);
        // Same program again.
        vm.reset();
        let again = vm.run_observed(&mut CountingSink::new());
        assert_eq!(again.observables, fresh_p.observables);
        // Cross-program reuse.
        vm.reset_for(&q);
        let other = vm.run_observed(&mut CountingSink::new());
        assert_eq!(other.observables, fresh_q.observables);
        // And back.
        vm.reset_for(&p);
        let back = vm.run_observed(&mut CountingSink::new());
        assert_eq!(back.observables, fresh_p.observables);
    }
}

#[test]
fn rerun_without_reset_is_an_error() {
    let p = loop_program();
    let mut vm = Vm::new(&p, VmConfig::interpreter());
    vm.run(&mut CountingSink::new()).unwrap();
    assert!(matches!(
        vm.run(&mut CountingSink::new()).unwrap_err(),
        VmError::Internal(_)
    ));
}

#[test]
fn shared_scope_reset_keeps_cache_warm_and_counts_dedup() {
    let p = loop_program();
    let cfg =
        VmConfig::jit().with_code_cache(CodeCacheConfig::default().with_scope(CacheScope::Shared));
    let mut vm = Vm::new(&p, cfg);
    let first = vm.run(&mut CountingSink::new()).unwrap();
    assert!(first.counters.methods_translated > 0);
    vm.reset();
    let second = vm.run(&mut CountingSink::new()).unwrap();
    // Byte-identical bodies resolve to the warm install: no second
    // translation, and the manager counted the dedup hits.
    assert_eq!(second.counters.methods_translated, 0);
    assert!(second.counters.code_installs >= first.counters.code_installs);
    let stats = &second.counters;
    assert_eq!(stats.code_evictions, 0);
    // Per-VM scope rebuilds instead: the second run translates again.
    let mut pv = Vm::new(&p, VmConfig::jit());
    let a = pv.run(&mut CountingSink::new()).unwrap();
    pv.reset();
    let b = pv.run(&mut CountingSink::new()).unwrap();
    assert_eq!(a.counters.methods_translated, b.counters.methods_translated);
    assert!(b.counters.methods_translated > 0);
}
