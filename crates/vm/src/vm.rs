//! The VM facade: scheduler, GC triggering, thread lifecycle, and
//! run-level reporting.

use crate::config::{ExecMode, SyncKind, VmConfig};
use crate::gc;
use crate::heap::{Heap, HeapError, Value};
use crate::jit::{self, JitState};
use crate::loader::Linker;
use crate::step::{self, StepOutcome};
use crate::thread::{ThreadState, ThreadStatus};
use jrt_bytecode::{MethodId, Op, Program};
use jrt_codecache::ProfileTable;
use jrt_sync::{FatLockEngine, OneBitLockEngine, SyncEngine, SyncStats, ThinLockEngine};
use jrt_trace::TraceSink;
use std::fmt;

/// Runtime errors surfaced by [`Vm::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Null dereference (the analog of `NullPointerException`).
    NullPointer {
        /// `Class::method` where it happened.
        method: String,
        /// Bytecode offset.
        pc: u32,
    },
    /// Integer division by zero.
    DivideByZero {
        /// `Class::method` where it happened.
        method: String,
        /// Bytecode offset.
        pc: u32,
    },
    /// Heap fault.
    Heap(HeapError),
    /// Monitor protocol violation.
    Monitor(String),
    /// Intrinsic failure.
    Intrinsic(String),
    /// Activation stack exceeded its depth bound.
    StackOverflow {
        /// The method that overflowed.
        method: String,
    },
    /// All live threads are blocked on monitors or joins.
    Deadlock,
    /// The configured `max_bytecodes` budget was exhausted.
    BudgetExceeded,
    /// The per-tenant fuel budget ([`VmConfig::fuel`]) was exhausted.
    /// Deterministic by construction: every engine configuration
    /// traps after exactly `budget` bytecodes, so the partial
    /// [`Observables`] still compare across engines.
    FuelExhausted {
        /// The fuel budget that ran out, in bytecodes.
        budget: u64,
    },
    /// Invariant violation inside the VM (a bug).
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NullPointer { method, pc } => {
                write!(f, "null pointer dereference in {method} at {pc}")
            }
            VmError::DivideByZero { method, pc } => {
                write!(f, "division by zero in {method} at {pc}")
            }
            VmError::Heap(e) => write!(f, "heap fault: {e}"),
            VmError::Monitor(e) => write!(f, "monitor violation: {e}"),
            VmError::Intrinsic(e) => write!(f, "intrinsic failure: {e}"),
            VmError::StackOverflow { method } => write!(f, "stack overflow in {method}"),
            VmError::Deadlock => write!(f, "deadlock: all threads blocked"),
            VmError::BudgetExceeded => write!(f, "bytecode execution budget exceeded"),
            VmError::FuelExhausted { budget } => {
                write!(f, "fuel exhausted after {budget} bytecodes")
            }
            VmError::Internal(e) => write!(f, "vm internal error: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Console output captured from the `Sys.print_*` intrinsics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Output {
    /// Integers printed with `Sys.print_int`.
    pub ints: Vec<i32>,
    /// Characters printed with `Sys.print_char`.
    pub chars: String,
}

/// Aggregate run counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Bytecodes executed (all threads).
    pub bytecodes: u64,
    /// Trace instructions emitted by class loading.
    pub classload_insts: u64,
    /// Garbage collections run (legacy full collections plus
    /// generational minor and major collections).
    pub gc_runs: u64,
    /// Bytes reclaimed by GC.
    pub gc_freed_bytes: u64,
    /// Minor (nursery) collections run by the generational GC.
    pub gc_minor: u64,
    /// Major (full, copy-compacting) collections run by the
    /// generational GC.
    pub gc_major: u64,
    /// Bytes copied by GC evacuation/compaction (zero under the
    /// legacy non-moving collector).
    pub gc_copied_bytes: u64,
    /// Write-barrier trace instructions emitted at reference stores
    /// ([`Phase::GcBarrier`](jrt_trace::Phase) events; the tape
    /// round-trip tests assert the two match exactly).
    pub gc_barrier_insts: u64,
    /// Collection-work trace instructions emitted
    /// ([`Phase::Gc`](jrt_trace::Phase) events; tape-checked like
    /// `gc_barrier_insts`).
    pub gc_insts: u64,
    /// Collections whose trace emission hit `MAX_GC_EMISSION` and was
    /// capped. Heap accounting stays exact on capped collections —
    /// this counter is the honest record that the *trace* under-
    /// reports the collection work.
    pub gc_emission_truncated: u64,
    /// Total bytes allocated on the Java heap over the run. Bounds
    /// `gc_copied_bytes`: a collector can never copy more than was
    /// ever allocated.
    pub heap_alloc_bytes: u64,
    /// Methods translated by the JIT (counting re-translations and
    /// tier upgrades).
    pub methods_translated: u32,
    /// Trace instructions emitted by the translator (sum of `T_i`).
    pub translate_insts: u64,
    /// The optimizing-tier slice of `translate_insts`;
    /// `translate_insts - opt_translate_insts` is the baseline-tier
    /// translate work a tiered policy shares with first-invocation JIT.
    pub opt_translate_insts: u64,
    /// Threads created (including the main thread).
    pub threads_created: u32,
    /// Successful code-cache installs (equals `methods_translated` on
    /// every per-VM-scope configuration: one install per translation).
    pub code_installs: u64,
    /// Installed methods evicted from the code cache.
    pub code_evictions: u64,
    /// Installs abandoned because the method alone exceeds the cache
    /// capacity (the key is pinned to interpretation afterwards).
    pub code_install_failures: u64,
    /// Cumulative code bytes ever installed (the append-only figure;
    /// also surfaced in [`Footprint::code_ever_bytes`]).
    pub code_ever_bytes: u64,
    /// Translations of methods that had previously been evicted —
    /// work an unbounded code cache would not have done.
    pub retranslations: u64,
    /// Re-translations at the optimizing tier (tiered policy only).
    pub tier2_recompiles: u32,
    /// Largest single translated method in code bytes (sizes the
    /// floor below which a bounded cache pins methods uncacheable).
    pub largest_method_bytes: u64,
    /// Methods lowered to register IR (IR modes only; each method is
    /// lowered at most once per VM).
    pub methods_lowered: u32,
    /// IR instructions dispatched by the register-IR interpreter.
    /// Superinstruction fusion makes this at most one per interpreted
    /// bytecode, and strictly fewer wherever fusion or folding won.
    pub ir_dispatches: u64,
}

/// Memory-footprint breakdown for the Table 1 study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Loaded class images (code + pools + tables).
    pub class_bytes: u64,
    /// Fixed VM text/data (interpreter, runtime, loader).
    pub vm_base_bytes: u64,
    /// Peak live Java heap.
    pub heap_peak_bytes: u64,
    /// Thread stacks.
    pub stack_bytes: u64,
    /// JIT code cache — live arena occupancy, post-eviction (zero for
    /// the interpreter).
    pub code_cache_bytes: u64,
    /// Cumulative code bytes ever translated (the append-only figure;
    /// equals `code_cache_bytes` when nothing was evicted). Not part
    /// of [`Footprint::total`] — it is not resident memory.
    pub code_ever_bytes: u64,
    /// Translator text + work buffers (zero for the interpreter).
    pub translator_bytes: u64,
}

impl Footprint {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.class_bytes
            + self.vm_base_bytes
            + self.heap_peak_bytes
            + self.stack_bytes
            + self.code_cache_bytes
            + self.translator_bytes
    }
}

/// Result of one program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Int returned by the entry method, if any.
    pub exit_value: Option<i32>,
    /// Captured console output.
    pub output: Output,
    /// Aggregate counters.
    pub counters: VmCounters,
    /// Per-method cost profiles (`I_i`, `T_i`, `E_i`, `n_i`).
    pub profile: ProfileTable,
    /// Synchronization statistics from the monitor engine.
    pub sync_stats: SyncStats,
    /// Memory footprint (Table 1).
    pub footprint: Footprint,
    /// Mode label ("interp" / "jit" / "opt" / "thresh").
    pub mode: &'static str,
}

/// Engine-independent observable state of one run, extracted by
/// [`Vm::run_observed`]. Two engine configurations executing the same
/// program must produce `==` values here — trace costs, translation
/// counts, and footprints may differ, but everything in this struct
/// is program semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observables {
    /// `Ok(exit value)` or the rendered [`VmError`]. Runtime faults
    /// are deterministic (they name the method and bytecode pc), so
    /// errors compare across engines just like exit values.
    pub outcome: Result<Option<i32>, String>,
    /// Console output captured from the `Sys.print_*` intrinsics.
    pub output: Output,
    /// Bytecodes executed.
    pub bytecodes: u64,
    /// Per-opcode execution histogram indexed by
    /// [`Op::dispatch_index`] — "same bytecode-level execution", not
    /// just the same final state.
    pub opcode_counts: Vec<u64>,
    /// Raw 32-bit images of every class's static slots.
    pub statics: Vec<Vec<i32>>,
    /// Digest of the final heap's *reachable* objects
    /// ([`Heap::reachable_digest`] from thread + static + class
    /// roots) — invariant under GC schedule, so it compares across
    /// GC on/off/forced as well as across engines.
    pub heap_digest: u64,
    /// Reachable heap allocations at exit.
    pub live_objects: usize,
}

/// One observed run: the cross-engine-comparable [`Observables`] plus
/// the engine-specific [`VmCounters`] (those are *not* comparable
/// across engines — they feed the fuzzer's transition-coverage map).
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Engine-independent observables.
    pub observables: Observables,
    /// Engine-specific counters (translations, evictions, …).
    pub counters: VmCounters,
    /// Mode label of the configuration that ran.
    pub mode: &'static str,
}

/// Everything one [`step`](crate::step) needs, split by field so the
/// borrow checker can see the disjointness.
pub(crate) struct StepEnv<'a> {
    pub program: &'a Program,
    pub linker: &'a mut Linker,
    pub heap: &'a mut Heap,
    pub jit: &'a mut JitState,
    pub sync: &'a mut dyn SyncEngine,
    pub profile: &'a mut ProfileTable,
    pub mode: &'a ExecMode,
    pub profiling: bool,
    pub out: &'a mut Output,
    pub classload_insts: &'a mut u64,
    pub folding: bool,
    pub opcode_counts: &'a mut Option<Vec<u64>>,
    /// Whether reference stores emit card-marking write barriers
    /// (true exactly when the generational GC is configured).
    pub gc_barriers: bool,
    pub gc_barrier_insts: &'a mut u64,
}

/// The `javart` virtual machine. See the crate docs for the model.
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    heap: Heap,
    linker: Linker,
    jit: JitState,
    sync: Box<dyn SyncEngine + Send>,
    profile: ProfileTable,
    counters: VmCounters,
    out: Output,
    threads: Vec<ThreadState>,
    opcode_counts: Option<Vec<u64>>,
}

impl fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("mode", &self.config.mode.label())
            .field("threads", &self.threads.len())
            .field("bytecodes", &self.counters.bytecodes)
            .finish()
    }
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program` under `config`.
    pub fn new(program: &'p Program, config: VmConfig) -> Self {
        let sync: Box<dyn SyncEngine + Send> = match config.sync {
            SyncKind::MonitorCache => Box::new(FatLockEngine::new()),
            SyncKind::ThinLock => Box::new(ThinLockEngine::new()),
            SyncKind::OneBit => Box::new(OneBitLockEngine::new()),
        };
        let jit = JitState::new(config.code_cache);
        let mut heap = Heap::with_config(config.gc);
        if let Some(n) = config.gc_sabotage_drop_barrier {
            heap.sabotage_drop_barrier(n);
        }
        Vm {
            program,
            config,
            heap,
            linker: Linker::new(program.num_classes()),
            jit,
            sync,
            profile: ProfileTable::new(),
            counters: VmCounters::default(),
            out: Output::default(),
            threads: Vec::new(),
            opcode_counts: None,
        }
    }

    /// Resets the VM for another run of the same program. Equivalent
    /// to [`Vm::reset_for`] with the current program.
    pub fn reset(&mut self) {
        self.reset_for(self.program);
    }

    /// Resets the VM to run `program` from scratch, reusing the
    /// instance's allocations instead of constructing a new VM (the
    /// pooled-VM pattern of the serving tier: one `Vm` per worker,
    /// reset per job).
    ///
    /// All per-run state is cleared — heap, loaded classes, statics,
    /// monitors, profile, counters, output, threads — so a
    /// subsequent [`Vm::run`] observes exactly what a fresh
    /// [`Vm::new`] would. Under [`crate::CacheScope::Shared`] the installed
    /// code cache survives the reset: shared-scope keys are interned
    /// from bytecode *content*, so byte-identical method bodies from
    /// a later job (even of a different program or tenant) reuse the
    /// existing translation — the cross-tenant dedup the shared
    /// scope exists for. Under the per-VM and per-thread scopes,
    /// whose keys name methods of one specific program, the code
    /// cache is discarded with the rest.
    pub fn reset_for(&mut self, program: &'p Program) {
        self.program = program;
        self.heap.reset();
        if let Some(n) = self.config.gc_sabotage_drop_barrier {
            self.heap.sabotage_drop_barrier(n);
        }
        self.linker = Linker::new(program.num_classes());
        self.sync = match self.config.sync {
            SyncKind::MonitorCache => Box::new(FatLockEngine::new()),
            SyncKind::ThinLock => Box::new(ThinLockEngine::new()),
            SyncKind::OneBit => Box::new(OneBitLockEngine::new()),
        };
        self.profile = ProfileTable::new();
        self.counters = VmCounters::default();
        self.out.ints.clear();
        self.out.chars.clear();
        self.threads.clear();
        self.opcode_counts = None;
        if self.config.code_cache.scope == crate::config::CacheScope::Shared {
            self.jit.reset_for_reuse();
        } else {
            self.jit = JitState::new(self.config.code_cache);
        }
    }

    /// Sets the per-job fuel budget (`None` = unmetered); see
    /// [`VmConfig::fuel`]. Takes effect on the next run, so a pooled
    /// VM can serve tenants with different budgets.
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.config.fuel = fuel;
    }

    /// The per-method cost profiles collected so far. The successful
    /// [`Vm::run`] path moves the table into [`RunResult::profile`];
    /// this accessor is for the fault path, where translate costs
    /// accrued before the trap (e.g. under a fuel budget) are still
    /// meaningful to a caller building a cost model.
    pub fn profile(&self) -> &ProfileTable {
        &self.profile
    }

    /// The code cache's lifetime counters. On a pooled VM under
    /// [`CacheScope::Shared`](crate::config::CacheScope) these span
    /// every job served since construction (resets keep the cache),
    /// including the shared-scope content hit/dedup rates.
    pub fn cache_stats(&self) -> jrt_codecache::CodeCacheStats {
        self.jit.cache_stats()
    }

    /// Generational-heap statistics (allocation, promotion, and
    /// pretenure volumes — the survival-rate inputs of the
    /// `gc_study` report). `None` under the legacy collector.
    pub fn gen_stats(&self) -> Option<crate::heap::GenStats> {
        self.heap.gen_stats()
    }

    /// Starts a thread whose root activation is `method(args)`.
    fn start_thread(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        sink: &mut dyn TraceSink,
    ) -> Result<u16, VmError> {
        let tid = self.threads.len() as u16;
        let def = self.program.method_def(method);
        if def.flags.is_native {
            return Err(VmError::Internal("thread root cannot be native".into()));
        }
        let code_addr = self.linker.code_addr(method);
        let use_jit = self.jit.ensure_compiled(
            &self.config.mode,
            &mut self.profile,
            jit::CalleeSite {
                callee: method,
                tid,
                def,
                code_addr,
            },
            sink,
        );
        let mut thread = ThreadState::new(tid);
        thread.push_frame(method, def, args);
        {
            let f = thread.frame_mut();
            f.jit = use_jit;
            if def.flags.is_synchronized {
                f.sync_pending = Some(if def.flags.is_static {
                    self.linker.class(method.class).class_object
                } else {
                    f.locals[0].as_ref().expect("non-null receiver")
                });
            }
        }
        if self.config.profiling {
            self.profile.record_invocation(method);
        }
        self.threads.push(thread);
        self.counters.threads_created += 1;
        Ok(tid)
    }

    fn run_gc(&mut self, sink: &mut dyn TraceSink) {
        let r = gc::collect(&mut self.heap, &self.threads, &self.linker, sink);
        self.count_gc(&r);
    }

    fn count_gc(&mut self, r: &gc::GcResult) {
        self.counters.gc_runs += 1;
        self.counters.gc_freed_bytes += r.freed_bytes;
        self.counters.gc_copied_bytes += r.copied_bytes;
        self.counters.gc_insts += r.emitted;
        if r.truncated {
            self.counters.gc_emission_truncated += 1;
        }
    }

    /// Drains the generational heap's pending-collection requests.
    /// Allocation never collects mid-bytecode (a nursery overflow
    /// pretenures and *requests* a collection); the scheduler calls
    /// this at the next bytecode boundary, where thread roots are
    /// coherent. A minor collection that overflows the tenured budget
    /// chains into a major one, which is why this drains a loop.
    fn run_pending_gc(&mut self, sink: &mut dyn TraceSink) -> Result<(), VmError> {
        while let Some(kind) = self.heap.take_gc_pending() {
            let r = match kind {
                crate::heap::GcKind::Minor => {
                    self.counters.gc_minor += 1;
                    gc::minor_collect(&mut self.heap, &self.threads, &self.linker, sink)
                        .map_err(VmError::Heap)?
                }
                crate::heap::GcKind::Major => {
                    self.counters.gc_major += 1;
                    gc::major_collect(&mut self.heap, &self.threads, &self.linker, sink)
                }
            };
            self.count_gc(&r);
        }
        Ok(())
    }

    /// Runs the program to completion, streaming the native trace into
    /// `sink`.
    ///
    /// A `Vm` runs once; to reuse the instance (the serving tier's
    /// pooled-VM pattern), call [`Vm::reset`] or [`Vm::reset_for`]
    /// between runs.
    ///
    /// # Errors
    ///
    /// Returns the first runtime fault; see [`VmError`].
    pub fn run(&mut self, sink: &mut impl TraceSink) -> Result<RunResult, VmError> {
        self.run_dyn(sink as &mut dyn TraceSink)
    }

    /// Runs the program and extracts the engine-independent
    /// [`Observables`] — including after a runtime fault, where the
    /// partial output, opcode histogram, statics, and heap state up
    /// to the fault are still well-defined and comparable. Opcode
    /// counting is enabled only on this path, so [`Vm::run`] pays
    /// nothing for it.
    pub fn run_observed(&mut self, sink: &mut impl TraceSink) -> ObservedRun {
        self.opcode_counts = Some(vec![0; Op::NUM_OPCODES]);
        let result = self.run_dyn(sink as &mut dyn TraceSink);
        let (outcome, output, counters) = match result {
            Ok(r) => (Ok(r.exit_value), r.output, r.counters),
            Err(e) => {
                self.merge_jit_counters();
                (
                    Err(e.to_string()),
                    std::mem::take(&mut self.out),
                    self.counters,
                )
            }
        };
        // The digest covers *reachable* objects only, walked in
        // handle order from the same roots a collection would use.
        // That makes it GC-schedule-invariant: a generational heap
        // that has already swept its garbage and a legacy heap still
        // holding it digest identically, which is what lets the
        // GC-equivalence tests compare byte-for-byte across
        // GC on/off/forced × every engine.
        let roots: Vec<crate::heap::Handle> = self
            .threads
            .iter()
            .flat_map(|t| t.roots())
            .chain(self.linker.static_roots())
            .chain(self.linker.class_objects())
            .collect();
        let (heap_digest, live_objects) = self.heap.reachable_digest(roots);
        ObservedRun {
            observables: Observables {
                outcome,
                output,
                bytecodes: counters.bytecodes,
                opcode_counts: self.opcode_counts.take().unwrap_or_default(),
                statics: self.linker.statics_snapshot(),
                heap_digest,
                live_objects,
            },
            counters,
            mode: self.config.mode.label(),
        }
    }

    fn run_dyn(&mut self, sink: &mut dyn TraceSink) -> Result<RunResult, VmError> {
        if !self.threads.is_empty() {
            return Err(VmError::Internal(
                "Vm::run called again without Vm::reset".into(),
            ));
        }
        // Load the entry class and start the main thread.
        let entry = self.program.entry();
        self.counters.classload_insts +=
            self.linker
                .ensure_loaded(entry.class, self.program, &mut self.heap, sink);
        self.start_thread(entry, Vec::new(), sink)?;

        // Round-robin scheduler.
        loop {
            let mut progressed = false;
            let mut all_done = true;

            for tid in 0..self.threads.len() {
                // Resolve joins whose target finished.
                if let ThreadStatus::Joining(t) = self.threads[tid].status {
                    if self
                        .threads
                        .get(usize::from(t))
                        .is_none_or(|th| th.status == ThreadStatus::Done)
                    {
                        self.threads[tid].status = ThreadStatus::Ready;
                    }
                }
                match self.threads[tid].status {
                    ThreadStatus::Done => continue,
                    ThreadStatus::Joining(_) => {
                        all_done = false;
                        continue;
                    }
                    ThreadStatus::Blocked(_) | ThreadStatus::Ready => {
                        all_done = false;
                        self.threads[tid].status = ThreadStatus::Ready;
                    }
                }

                if self.heap.allocated_since_gc() > self.config.gc_threshold {
                    self.run_gc(sink);
                }

                for _ in 0..self.config.quantum {
                    if let Some(fuel) = self.config.fuel {
                        if self.counters.bytecodes >= fuel {
                            return Err(VmError::FuelExhausted { budget: fuel });
                        }
                    }
                    if self.counters.bytecodes >= self.config.max_bytecodes {
                        return Err(VmError::BudgetExceeded);
                    }
                    let outcome = {
                        let mut env = StepEnv {
                            program: self.program,
                            linker: &mut self.linker,
                            heap: &mut self.heap,
                            jit: &mut self.jit,
                            sync: self.sync.as_mut(),
                            profile: &mut self.profile,
                            mode: &self.config.mode,
                            profiling: self.config.profiling,
                            out: &mut self.out,
                            classload_insts: &mut self.counters.classload_insts,
                            folding: self.config.folding,
                            opcode_counts: &mut self.opcode_counts,
                            gc_barriers: self.config.gc.is_generational(),
                            gc_barrier_insts: &mut self.counters.gc_barrier_insts,
                        };
                        step::step(&mut env, &mut self.threads[tid], sink)?
                    };
                    self.counters.bytecodes += 1;
                    if self.heap.is_generational() {
                        self.run_pending_gc(sink)?;
                    }
                    match outcome {
                        StepOutcome::Continue => {
                            progressed = true;
                        }
                        StepOutcome::Blocked => {
                            break;
                        }
                        StepOutcome::ThreadDone => {
                            progressed = true;
                            break;
                        }
                        StepOutcome::Spawn { target } => {
                            progressed = true;
                            let rcls = self.heap.class_of(target).map_err(VmError::Heap)?;
                            let run =
                                self.linker
                                    .class(rcls)
                                    .vtable_lookup("run")
                                    .ok_or_else(|| {
                                        VmError::Intrinsic("spawn target has no run()".into())
                                    })?;
                            let new_tid = self.start_thread(run, vec![Value::Ref(target)], sink)?;
                            self.threads[tid]
                                .frame_mut()
                                .stack
                                .push(Value::Int(i32::from(new_tid)));
                        }
                        StepOutcome::Join(target) => {
                            progressed = true;
                            if usize::from(target) >= self.threads.len() {
                                return Err(VmError::Intrinsic(format!(
                                    "join of unknown thread {target}"
                                )));
                            }
                            if self.threads[usize::from(target)].status != ThreadStatus::Done {
                                self.threads[tid].status = ThreadStatus::Joining(target);
                            }
                            break;
                        }
                    }
                }
            }

            if all_done {
                break;
            }
            if !progressed {
                return Err(VmError::Deadlock);
            }
        }

        sink.finish();
        Ok(self.build_result())
    }

    /// Folds the JIT-side tallies into [`VmCounters`]; shared by the
    /// normal result path and the fault path of [`Vm::run_observed`].
    fn merge_jit_counters(&mut self) {
        self.counters.methods_translated = self.jit.methods_translated;
        self.counters.translate_insts = self.jit.translate_insts;
        self.counters.opt_translate_insts = self.jit.opt_translate_insts;
        let cache = self.jit.cache_stats();
        self.counters.code_installs = cache.installs;
        self.counters.code_evictions = cache.evictions;
        self.counters.code_install_failures = cache.install_failures;
        self.counters.code_ever_bytes = self.jit.ever_bytes();
        self.counters.retranslations = cache.retranslations;
        self.counters.tier2_recompiles = self.jit.tier2_recompiles;
        self.counters.largest_method_bytes = cache.largest_install_bytes;
        self.counters.methods_lowered = self.jit.ir.methods_lowered;
        self.counters.ir_dispatches = self.jit.ir.dispatches;
        self.counters.heap_alloc_bytes = self.heap.stats().allocated_bytes;
    }

    fn build_result(&mut self) -> RunResult {
        self.merge_jit_counters();

        let translated_any = self.jit.methods_translated > 0;
        let footprint = Footprint {
            class_bytes: self.linker.loaded_bytes,
            // Interpreter + runtime text/data: the resident cost of
            // the JVM binary plus mapped system libraries (a couple of
            // MB in the JDK 1.1.6 era).
            vm_base_bytes: 1792 * 1024,
            heap_peak_bytes: self.heap.stats().peak_bytes,
            stack_bytes: self.threads.len() as u64 * 16 * 1024,
            code_cache_bytes: self.jit.live_bytes(),
            code_ever_bytes: self.jit.ever_bytes(),
            translator_bytes: if translated_any {
                128 * 1024 + self.jit.translator_buffer_bytes
            } else {
                0
            },
        };

        let exit_value = self.threads.first().and_then(|t| match t.result {
            Some(Value::Int(v)) => Some(v),
            _ => None,
        });

        RunResult {
            exit_value,
            output: std::mem::take(&mut self.out),
            counters: self.counters,
            profile: std::mem::take(&mut self.profile),
            sync_stats: *self.sync.stats(),
            footprint,
            mode: self.config.mode.label(),
        }
    }
}

#[cfg(test)]
mod send_tests {
    use super::*;

    /// The parallel experiment scheduler runs one `Vm` per worker
    /// thread against a shared `Arc<Program>`; these bounds are what
    /// make that sound.
    #[test]
    fn vm_and_program_are_thread_safe() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Vm<'static>>();
        assert_send::<jrt_bytecode::Program>();
        assert_sync::<jrt_bytecode::Program>();
        assert_send::<RunResult>();
    }
}
