//! Native-method intrinsics (the class library boundary).
//!
//! Workloads declare native methods on a `Sys` class; the VM
//! dispatches them here. The set mirrors what the SpecJVM98-analog
//! workloads need from `java.lang`: console output, `arraycopy`, and
//! thread spawn/join.

use crate::heap::{Heap, HeapError, Value};
use crate::vm::Output;
use jrt_trace::{layout, Addr, NativeInst, Phase, TraceSink};

/// What the VM should do after an intrinsic call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum IntrinsicOutcome {
    /// Push the value (if any) and continue.
    Done(Option<Value>),
    /// Spawn a thread running `target.run()`; push the thread id.
    Spawn {
        /// The runnable object.
        target: crate::heap::Handle,
    },
    /// Block the calling thread until the given thread finishes.
    Join(u16),
}

/// Errors from intrinsic calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum IntrinsicError {
    /// No intrinsic registered under this name.
    Unknown(String),
    /// An argument had the wrong shape (null where an object was
    /// needed, etc.).
    BadArgument(&'static str),
    /// Heap fault while executing the intrinsic.
    Heap(HeapError),
}

impl From<HeapError> for IntrinsicError {
    fn from(e: HeapError) -> Self {
        IntrinsicError::Heap(e)
    }
}

const IO_BUFFER: Addr = layout::VM_DATA_BASE + 0x20_0000;
const NATIVE_TEXT: Addr = layout::VM_TEXT_BASE + 0x6_0000;

/// Executes the intrinsic `class.name` with `args` (receiver excluded;
/// all `Sys` intrinsics are static).
pub(crate) fn call(
    class: &str,
    name: &str,
    args: &[Value],
    heap: &mut Heap,
    out: &mut Output,
    sink: &mut dyn TraceSink,
    emitted: &mut u64,
) -> Result<IntrinsicOutcome, IntrinsicError> {
    let mut pc = NATIVE_TEXT;
    let mut emit = |i: NativeInst, emitted: &mut u64| {
        sink.accept(&i);
        *emitted += 1;
    };
    match (class, name) {
        ("Sys", "print_int") => {
            let v = int_arg(args, 0)?;
            out.ints.push(v);
            for k in 0..4u64 {
                emit(
                    NativeInst::store(
                        pc,
                        IO_BUFFER + (out.ints.len() as u64 * 16 + k * 4) % 0x1000,
                        4,
                        Phase::Runtime,
                    ),
                    emitted,
                );
                pc += 4;
            }
            Ok(IntrinsicOutcome::Done(None))
        }
        ("Sys", "print_char") => {
            let v = int_arg(args, 0)?;
            out.chars.push(char::from_u32(v as u32).unwrap_or('?'));
            emit(
                NativeInst::store(
                    pc,
                    IO_BUFFER + (out.chars.len() as u64) % 0x1000,
                    1,
                    Phase::Runtime,
                ),
                emitted,
            );
            Ok(IntrinsicOutcome::Done(None))
        }
        ("Sys", "arraycopy") => {
            let src = ref_arg(args, 0)?;
            let src_pos = int_arg(args, 1)?;
            let dst = ref_arg(args, 2)?;
            let dst_pos = int_arg(args, 3)?;
            let len = int_arg(args, 4)?;
            for k in 0..len {
                let v = heap.array_get(src, src_pos + k)?;
                heap.array_set(dst, dst_pos + k, v)?;
                // Block-copy loop: one load + one store per element,
                // tight native loop.
                emit(
                    NativeInst::load(pc, heap.elem_addr(src, src_pos + k)?, 4, Phase::Runtime)
                        .with_dst(9),
                    emitted,
                );
                emit(
                    NativeInst::store(pc + 4, heap.elem_addr(dst, dst_pos + k)?, 4, Phase::Runtime)
                        .with_srcs(9, None),
                    emitted,
                );
                emit(
                    NativeInst::branch(pc + 8, pc, k + 1 != len, Phase::Runtime),
                    emitted,
                );
            }
            Ok(IntrinsicOutcome::Done(None))
        }
        ("Sys", "spawn") => {
            let target = ref_arg(args, 0)?;
            for _ in 0..16 {
                emit(NativeInst::alu(pc, Phase::Runtime), emitted);
                pc += 4;
            }
            Ok(IntrinsicOutcome::Spawn { target })
        }
        ("Sys", "join") => {
            let tid = int_arg(args, 0)?;
            if tid < 0 || tid > i32::from(u16::MAX) {
                return Err(IntrinsicError::BadArgument("join: bad thread id"));
            }
            emit(NativeInst::alu(pc, Phase::Runtime), emitted);
            Ok(IntrinsicOutcome::Join(tid as u16))
        }
        _ => Err(IntrinsicError::Unknown(format!("{class}::{name}"))),
    }
}

fn int_arg(args: &[Value], n: usize) -> Result<i32, IntrinsicError> {
    match args.get(n) {
        Some(Value::Int(v)) => Ok(*v),
        _ => Err(IntrinsicError::BadArgument("expected int argument")),
    }
}

fn ref_arg(args: &[Value], n: usize) -> Result<crate::heap::Handle, IntrinsicError> {
    match args.get(n) {
        Some(Value::Ref(h)) => Ok(*h),
        _ => Err(IntrinsicError::BadArgument("expected non-null reference")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::ArrayKind;
    use jrt_trace::CountingSink;

    #[test]
    fn print_int_records_output() {
        let mut heap = Heap::new();
        let mut out = Output::default();
        let mut sink = CountingSink::new();
        let mut n = 0;
        let r = call(
            "Sys",
            "print_int",
            &[Value::Int(7)],
            &mut heap,
            &mut out,
            &mut sink,
            &mut n,
        )
        .unwrap();
        assert_eq!(r, IntrinsicOutcome::Done(None));
        assert_eq!(out.ints, vec![7]);
        assert!(n > 0);
    }

    #[test]
    fn arraycopy_copies_and_emits() {
        let mut heap = Heap::new();
        let src = heap.alloc_array(ArrayKind::Int, 4).unwrap();
        let dst = heap.alloc_array(ArrayKind::Int, 4).unwrap();
        for k in 0..4 {
            heap.array_set(src, k, k * 10).unwrap();
        }
        let mut out = Output::default();
        let mut sink = CountingSink::new();
        let mut n = 0;
        call(
            "Sys",
            "arraycopy",
            &[
                Value::Ref(src),
                Value::Int(1),
                Value::Ref(dst),
                Value::Int(0),
                Value::Int(3),
            ],
            &mut heap,
            &mut out,
            &mut sink,
            &mut n,
        )
        .unwrap();
        assert_eq!(heap.array_get(dst, 0).unwrap(), 10);
        assert_eq!(heap.array_get(dst, 2).unwrap(), 30);
        assert_eq!(n, 9); // 3 elements x (load + store + branch)
    }

    #[test]
    fn unknown_intrinsic_errors() {
        let mut heap = Heap::new();
        let mut out = Output::default();
        let mut sink = CountingSink::new();
        let mut n = 0;
        assert!(matches!(
            call("Sys", "nope", &[], &mut heap, &mut out, &mut sink, &mut n),
            Err(IntrinsicError::Unknown(_))
        ));
    }

    #[test]
    fn spawn_and_join_surface_outcomes() {
        let mut heap = Heap::new();
        let obj = heap.alloc_object(jrt_bytecode::ClassId(0), 0).unwrap();
        let mut out = Output::default();
        let mut sink = CountingSink::new();
        let mut n = 0;
        assert_eq!(
            call(
                "Sys",
                "spawn",
                &[Value::Ref(obj)],
                &mut heap,
                &mut out,
                &mut sink,
                &mut n
            )
            .unwrap(),
            IntrinsicOutcome::Spawn { target: obj }
        );
        assert_eq!(
            call(
                "Sys",
                "join",
                &[Value::Int(3)],
                &mut heap,
                &mut out,
                &mut sink,
                &mut n
            )
            .unwrap(),
            IntrinsicOutcome::Join(3)
        );
        assert!(matches!(
            call(
                "Sys",
                "join",
                &[Value::Int(-1)],
                &mut heap,
                &mut out,
                &mut sink,
                &mut n
            ),
            Err(IntrinsicError::BadArgument(_))
        ));
    }

    #[test]
    fn null_ref_rejected() {
        let mut heap = Heap::new();
        let mut out = Output::default();
        let mut sink = CountingSink::new();
        let mut n = 0;
        assert!(matches!(
            call(
                "Sys",
                "spawn",
                &[Value::Null],
                &mut heap,
                &mut out,
                &mut sink,
                &mut n
            ),
            Err(IntrinsicError::BadArgument(_))
        ));
    }
}
