//! The `javart` virtual machine.
//!
//! This crate is the synthetic stand-in for the JVMs the paper
//! instruments (Sun JDK 1.1.6 and Kaffe 0.9.2). It executes programs
//! in the `jrt-bytecode` format under several engines and, while
//! doing so, emits the SPARC-like native instruction trace
//! (`jrt-trace`) that the architectural studies consume:
//!
//! * the **interpreter** models a C `switch`-threaded interpreter:
//!   every bytecode costs an opcode fetch (a *data* load from the
//!   bytecode area), an indirect dispatch jump, and a handler body
//!   that moves operands through an in-memory operand stack;
//! * the **JIT** models Kaffe-style translate-on-first-invocation:
//!   translation walks the bytecode (data reads), generates native
//!   instructions into the code cache (cold *write* misses), and the
//!   installed code then runs with register-allocated operands,
//!   per-method instruction footprints, and devirtualized calls;
//! * the **register-IR tier** ([`ExecMode::IrInterp`] /
//!   [`ExecMode::IrJit`]) lowers each method once through `jrt-ir`'s
//!   stack→register pass (constant folding, redundant-load
//!   elimination, superinstruction fusion) and then either interprets
//!   the packed IR — at most one dispatch per bytecode, operand stack
//!   in registers — or feeds the IR-backed translator, which installs
//!   denser code because fused pcs generate nothing.
//!
//! All engines share one semantic core (the `step` module), so they
//! compute identical results by construction — only their
//! architectural footprint differs, which is precisely the contrast
//! the paper studies.
//!
//! The crate also provides the VM substrates the paper's runtime
//! depends on: a garbage-collected [`heap`], deterministic green
//! [`thread`]s with a round-robin scheduler, lazy class
//! [`loader`]-style resolution with class-load trace emission,
//! native intrinsics (`Sys.print`, `Sys.arraycopy`, `Sys.spawn`,
//! `Sys.join`, …), pluggable monitor engines from `jrt-sync`, JIT
//! compilation [`policy`](JitPolicy) selection including the paper's
//! *opt* oracle, and memory-footprint accounting for Table 1.
//!
//! # Examples
//!
//! ```
//! use jrt_bytecode::{ClassAsm, MethodAsm, Program, RetKind};
//! use jrt_trace::CountingSink;
//! use jrt_vm::{ExecMode, Vm, VmConfig};
//!
//! let mut c = ClassAsm::new("Main");
//! let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
//! m.iconst(21).iconst(2).imul().ireturn();
//! c.add_method(m);
//! let program = Program::build(vec![c], "Main", "main")?;
//!
//! let mut sink = CountingSink::new();
//! let result = Vm::new(&program, VmConfig::interpreter()).run(&mut sink)?;
//! assert_eq!(result.exit_value, Some(42));
//! assert!(sink.total() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod emit;
mod gc;
pub mod heap;
mod intrinsics;
mod jit;
pub mod loader;
mod step;
pub mod thread;
mod vm;

pub use config::{
    CacheScope, CodeCacheConfig, EvictionPolicy, ExecMode, GcConfig, JitPolicy, OracleDecisions,
    SyncKind, VmConfig,
};
pub use heap::{GenStats, Handle, Heap, HeapError, Value};
pub use jrt_codecache::{CodeCacheStats, MethodProfile, ProfileTable};
pub use vm::{Footprint, Observables, ObservedRun, Output, RunResult, Vm, VmCounters, VmError};
