//! The shared semantic core: executes one bytecode of one thread.
//!
//! Both engines run through this function; the [`Emit`] implementation
//! chosen for the current frame (interpreter vs. translated code)
//! decides what native instructions the action costs. This guarantees
//! the two execution modes compute identical results — the paper's
//! contrast is purely architectural, and so is ours.

use crate::emit::interp::invoke_helper_addr;
use crate::emit::{Emit, InterpEmitter, InvokeKind, IrInterpEmitter, IrJitEmitter, JitEmitter};
use crate::heap::{Handle, Value};
use crate::intrinsics::{self, IntrinsicOutcome};
use crate::jit::CallSite;
use crate::thread::{ThreadState, ThreadStatus};
use crate::vm::{StepEnv, VmError};
use jrt_bytecode::{Op, RetKind};
use jrt_ir::PcPlan;
use jrt_sync::{EnterOutcome, ExitOutcome};
use jrt_trace::{layout, Addr, InstClass, TraceSink};

/// What the scheduler should do after one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Keep running this thread.
    Continue,
    /// The thread blocked on a monitor; reschedule.
    Blocked,
    /// The thread's root method returned.
    ThreadDone,
    /// `Sys.spawn(target)` — the VM must create a thread running
    /// `target.run()` and push the new thread id on this thread's
    /// stack.
    Spawn {
        /// The runnable object.
        target: Handle,
    },
    /// `Sys.join(tid)` — the VM must block this thread until `tid`
    /// finishes.
    Join(u16),
}

/// Simulated address of the lock structure touched by a monitor
/// operation: header word for header-bit schemes, monitor-cache
/// bucket for the fat-only scheme.
fn lock_addr(env: &StepEnv<'_>, h: Handle) -> Addr {
    if env.sync.header_bits() > 0 {
        env.heap.header_addr(h).unwrap_or(layout::HEAP_BASE) + 4
    } else {
        layout::VM_DATA_BASE + u64::from(h % 128) * 32
    }
}

/// Executes one bytecode of `thread`.
///
/// # Errors
///
/// Surfaces runtime faults (`NullPointerException`-equivalents,
/// division by zero, heap exhaustion, monitor misuse) as [`VmError`].
pub(crate) fn step(
    env: &mut StepEnv<'_>,
    thread: &mut ThreadState,
    sink: &mut dyn TraceSink,
) -> Result<StepOutcome, VmError> {
    let program = env.program;
    let mid = thread.frame().method;
    let mut jit_frame = thread.frame().jit;
    let pc = thread.frame().pc;
    let def = program.method_def(mid);
    let pool = &program.class_file(mid.class).pool;

    // Pending synchronized-method entry?
    if let Some(obj) = thread.frame().sync_pending {
        match env.sync.monitor_enter(obj, thread.id) {
            EnterOutcome::Acquired { cost, .. } => {
                let mut n = 0u64;
                crate::emit::interp::emit_sync(sink, cost, lock_addr(env, obj), &mut n);
                charge(env, mid, jit_frame, n);
                let f = thread.frame_mut();
                f.sync_pending = None;
                f.sync_obj = Some(obj);
            }
            EnterOutcome::Blocked { cost } => {
                let mut n = 0u64;
                crate::emit::interp::emit_sync(sink, cost, lock_addr(env, obj), &mut n);
                charge(env, mid, jit_frame, n);
                thread.status = ThreadStatus::Blocked(obj);
                return Ok(StepOutcome::Blocked);
            }
        }
    }

    // Decode. A frame whose translated code was evicted mid-flight
    // demotes to interpretation — the eviction's cost is precisely
    // this fallback (slower bytecodes, and possible re-translation on
    // the next invocation).
    let cm_rc = if jit_frame {
        let cm = env.jit.compiled_for_frame(mid, thread.id);
        if cm.is_none() {
            thread.frame_mut().jit = false;
            jit_frame = false;
        }
        cm
    } else {
        None
    };
    let decoded_owned;
    let (op, len): (&Op, u32) = match &cm_rc {
        Some(cm) => {
            let (o, l) = cm
                .ops
                .get(&pc)
                .expect("pc lands on compiled instruction boundary");
            (o, *l)
        }
        None => {
            let (o, l) = Op::decode(&def.code, pc as usize)
                .map_err(|e| VmError::Internal(format!("decode at {pc}: {e}")))?;
            decoded_owned = o;
            (&decoded_owned, l as u32)
        }
    };

    // Differential-fuzzing observability: histogram the decoded
    // opcode before it acts, so faulting bytecodes are counted too
    // and engines compare at bytecode granularity.
    if let Some(counts) = env.opcode_counts.as_mut() {
        counts[usize::from(op.dispatch_index())] += 1;
    }

    // Emitter for this bytecode.
    let addr_fn: Box<dyn Fn(u32) -> Addr> = match &cm_rc {
        Some(cm) => {
            let cm = cm.clone();
            Box::new(move |p| cm.addr(p))
        }
        None => Box::new(|_| 0),
    };
    // In IR modes every non-native method is lowered by
    // `ensure_compiled` before its frame is pushed (thread starts and
    // invokes share that decision point), so the record exists. Only
    // Copy values leave the borrow: this runs per bytecode, so the
    // lookup must not clone the Arc.
    let ir_plan = if env.mode.is_ir() {
        let lm = env
            .jit
            .lowered(mid)
            .expect("IR mode lowers before stepping");
        let plan = lm.ir.plan_at(pc);
        let slot = match lm.ir.inst_at(pc) {
            _ if jit_frame => 0, // translated frames never dispatch
            Some(inst) => inst.opcode(),
            None => op.dispatch_index(),
        };
        Some((plan, slot, lm.base))
    } else {
        None
    };
    let mut em: Box<dyn Emit> = if jit_frame {
        let reg_locals = cm_rc.as_ref().map_or(0, |cm| cm.reg_locals);
        let inner = JitEmitter::new(&*addr_fn, pc, thread.frame().stack.len(), reg_locals);
        match ir_plan {
            // IR-translated code: fused register moves and elided pcs
            // emit nothing.
            Some((plan, _, _)) => Box::new(IrJitEmitter::new(inner, plan, reg_locals)),
            None => Box::new(inner),
        }
    } else if let Some((plan, slot, ir_base)) = ir_plan {
        // Register-IR interpreter: only `Exec` pcs dispatch (through
        // their IR opcode's handler); covered pcs run their micro-ops
        // inside the covering handler's text, elided pcs are free.
        let em = IrInterpEmitter::new(plan, slot, thread.last_opcode, ir_base);
        if matches!(plan, PcPlan::Exec { .. }) {
            env.jit.ir.dispatches += 1;
            thread.last_opcode = slot;
        }
        Box::new(em)
    } else {
        let em = InterpEmitter::new(
            env.linker.code_addr(mid),
            pc,
            op.dispatch_index(),
            thread.last_opcode,
            thread.frame().locals_addr - 16,
        );
        // picoJava-style folding: up to four consecutive simple
        // bytecodes share the previous dispatch.
        let fold = env.folding && is_foldable(op) && (1..4).contains(&thread.fold_run);
        if env.folding {
            thread.fold_run = if is_foldable(op) {
                if thread.fold_run >= 4 {
                    1
                } else {
                    thread.fold_run + 1
                }
            } else {
                0
            };
        }
        Box::new(if fold { em.folded() } else { em })
    };
    if !jit_frame && ir_plan.is_none() {
        thread.last_opcode = op.dispatch_index();
    }
    em.begin(sink);
    if len > 1 {
        em.operand_fetch(sink, len - 1);
    }

    macro_rules! pop {
        () => {{
            let f = thread.frame_mut();
            let v = f.stack.pop().expect("verified stack");
            let addr = f.stack_slot_addr(f.stack.len());
            em.stack_pop(sink, addr);
            v
        }};
    }
    macro_rules! push {
        ($v:expr) => {{
            let v = $v;
            let f = thread.frame_mut();
            f.stack.push(v);
            let addr = f.stack_slot_addr(f.stack.len() - 1);
            em.stack_push(sink, addr);
        }};
    }
    macro_rules! npe {
        ($v:expr) => {{
            em.null_check(sink);
            match $v.as_ref() {
                Some(h) => h,
                None => {
                    return Err(VmError::NullPointer {
                        method: method_name(env, mid),
                        pc,
                    })
                }
            }
        }};
    }

    let mut next_pc = pc + len;

    match op {
        Op::Nop => {}
        Op::IConst(v) => {
            em.alu(sink, InstClass::IntAlu);
            push!(Value::Int(*v));
        }
        Op::AConstNull => {
            em.alu(sink, InstClass::IntAlu);
            push!(Value::Null);
        }
        Op::ILoad(n) | Op::ALoad(n) => {
            let n = usize::from(*n);
            let addr = thread.frame().local_addr(n);
            em.local_read(sink, n, addr);
            let v = thread.frame().locals[n];
            push!(v);
        }
        Op::IStore(n) | Op::AStore(n) => {
            let n = usize::from(*n);
            let v = pop!();
            let addr = thread.frame().local_addr(n);
            em.local_write(sink, n, addr);
            thread.frame_mut().locals[n] = v;
        }
        Op::Pop => {
            pop!();
        }
        Op::Dup => {
            let v = pop!();
            push!(v);
            push!(v);
        }
        Op::DupX1 => {
            let v1 = pop!();
            let v2 = pop!();
            push!(v1);
            push!(v2);
            push!(v1);
        }
        Op::Swap => {
            let v1 = pop!();
            let v2 = pop!();
            push!(v1);
            push!(v2);
        }
        Op::IAdd
        | Op::ISub
        | Op::IMul
        | Op::IDiv
        | Op::IRem
        | Op::IShl
        | Op::IShr
        | Op::IUshr
        | Op::IAnd
        | Op::IOr
        | Op::IXor => {
            let b = pop!().as_int();
            let a = pop!().as_int();
            let class = match op {
                Op::IMul => InstClass::IntMul,
                Op::IDiv | Op::IRem => InstClass::IntDiv,
                _ => InstClass::IntAlu,
            };
            em.alu(sink, class);
            let r = match op {
                Op::IAdd => a.wrapping_add(b),
                Op::ISub => a.wrapping_sub(b),
                Op::IMul => a.wrapping_mul(b),
                Op::IDiv => {
                    if b == 0 {
                        return Err(VmError::DivideByZero {
                            method: method_name(env, mid),
                            pc,
                        });
                    }
                    a.wrapping_div(b)
                }
                Op::IRem => {
                    if b == 0 {
                        return Err(VmError::DivideByZero {
                            method: method_name(env, mid),
                            pc,
                        });
                    }
                    a.wrapping_rem(b)
                }
                Op::IShl => a.wrapping_shl(b as u32 & 31),
                Op::IShr => a.wrapping_shr(b as u32 & 31),
                Op::IUshr => ((a as u32) >> (b as u32 & 31)) as i32,
                Op::IAnd => a & b,
                Op::IOr => a | b,
                Op::IXor => a ^ b,
                _ => unreachable!(),
            };
            push!(Value::Int(r));
        }
        Op::INeg => {
            let a = pop!().as_int();
            em.alu(sink, InstClass::IntAlu);
            push!(Value::Int(a.wrapping_neg()));
        }
        Op::IInc(n, d) => {
            let n = usize::from(*n);
            let addr = thread.frame().local_addr(n);
            em.local_read(sink, n, addr);
            em.alu(sink, InstClass::IntAlu);
            em.local_write(sink, n, addr);
            let f = thread.frame_mut();
            f.locals[n] = Value::Int(f.locals[n].as_int().wrapping_add(i32::from(*d)));
        }
        Op::If(cond, t) => {
            let v = pop!().as_int();
            let taken = cond.eval(v, 0);
            em.cond_branch(sink, taken, *t);
            if taken {
                next_pc = *t;
            }
        }
        Op::IfICmp(cond, t) => {
            let b = pop!().as_int();
            let a = pop!().as_int();
            let taken = cond.eval(a, b);
            em.cond_branch(sink, taken, *t);
            if taken {
                next_pc = *t;
            }
        }
        Op::IfNull(t) | Op::IfNonNull(t) => {
            let v = pop!();
            let is_null = matches!(v, Value::Null);
            let taken = if matches!(op, Op::IfNull(_)) {
                is_null
            } else {
                !is_null
            };
            em.cond_branch(sink, taken, *t);
            if taken {
                next_pc = *t;
            }
        }
        Op::IfACmpEq(t) | Op::IfACmpNe(t) => {
            let b = pop!();
            let a = pop!();
            let eq = a == b;
            let taken = if matches!(op, Op::IfACmpEq(_)) {
                eq
            } else {
                !eq
            };
            em.cond_branch(sink, taken, *t);
            if taken {
                next_pc = *t;
            }
        }
        Op::Goto(t) => {
            em.goto_(sink, *t);
            next_pc = *t;
        }
        Op::TableSwitch {
            low,
            default,
            targets,
        } => {
            let key = pop!().as_int();
            let idx = key.wrapping_sub(*low);
            let target = if idx >= 0 && (idx as usize) < targets.len() {
                targets[idx as usize]
            } else {
                *default
            };
            em.switch(sink, target, targets.len());
            next_pc = target;
        }
        Op::New(cp) => {
            let cname = pool
                .class_ref(*cp)
                .map_err(|e| VmError::Internal(e.to_string()))?;
            let cid = program.class(cname).expect("verified class");
            let loaded = env.linker.ensure_loaded(cid, program, env.heap, sink);
            *env.classload_insts += loaded;
            let nfields = env.linker.class(cid).num_fields();
            let h = env.heap.alloc_object(cid, nfields).map_err(VmError::Heap)?;
            let addr = env.heap.header_addr(h).expect("fresh object");
            em.alloc(sink, addr, 8 + 4 * nfields as u32);
            push!(Value::Ref(h));
        }
        Op::GetField(cp) => {
            let (_, fname) = pool
                .field_ref(*cp)
                .map_err(|e| VmError::Internal(e.to_string()))?;
            let objv = pop!();
            let h = npe!(objv);
            let rcls = env.heap.class_of(h).map_err(VmError::Heap)?;
            let slot = env
                .linker
                .class(rcls)
                .field_slot(fname)
                .ok_or_else(|| VmError::Internal(format!("field {fname} missing")))?;
            let addr = env.heap.field_addr(h, slot).map_err(VmError::Heap)?;
            em.heap_load(sink, addr, 4);
            let v = env.heap.get_field(h, slot).map_err(VmError::Heap)?;
            push!(v);
        }
        Op::PutField(cp) => {
            let (_, fname) = pool
                .field_ref(*cp)
                .map_err(|e| VmError::Internal(e.to_string()))?;
            let v = pop!();
            let objv = pop!();
            let h = npe!(objv);
            let rcls = env.heap.class_of(h).map_err(VmError::Heap)?;
            let slot = env
                .linker
                .class(rcls)
                .field_slot(fname)
                .ok_or_else(|| VmError::Internal(format!("field {fname} missing")))?;
            let addr = env.heap.field_addr(h, slot).map_err(VmError::Heap)?;
            em.heap_store(sink, addr, 4);
            env.heap.set_field(h, slot, v).map_err(VmError::Heap)?;
            if env.gc_barriers && matches!(v, Value::Ref(_)) {
                *env.gc_barrier_insts += em.ref_store_barrier(sink, crate::heap::card_addr(addr));
            }
        }
        Op::GetStatic(cp) | Op::PutStatic(cp) => {
            let (cname, fname) = pool
                .field_ref(*cp)
                .map_err(|e| VmError::Internal(e.to_string()))?;
            let cid = program.class(cname).expect("verified class");
            let loaded = env.linker.ensure_loaded(cid, program, env.heap, sink);
            *env.classload_insts += loaded;
            let (owner, slot) = env
                .linker
                .resolve_static(program, cid, fname)
                .ok_or_else(|| VmError::Internal(format!("static {cname}.{fname} missing")))?;
            let addr = env.linker.static_slot_addr(owner, slot);
            if matches!(op, Op::GetStatic(_)) {
                em.heap_load(sink, addr, 4);
                let v = env.linker.get_static(owner, slot);
                push!(v);
            } else {
                let v = pop!();
                em.heap_store(sink, addr, 4);
                env.linker.set_static(owner, slot, v);
                if env.gc_barriers && matches!(v, Value::Ref(_)) {
                    *env.gc_barrier_insts +=
                        em.ref_store_barrier(sink, crate::heap::card_addr(addr));
                }
            }
        }
        Op::NewArray(kind) => {
            let n = pop!().as_int();
            let h = env.heap.alloc_array(*kind, n).map_err(VmError::Heap)?;
            let addr = env.heap.header_addr(h).expect("fresh array");
            em.alloc(sink, addr, 12 + kind.elem_size() * n.max(0) as u32);
            push!(Value::Ref(h));
        }
        Op::ArrayLength => {
            let objv = pop!();
            let h = npe!(objv);
            let len = env.heap.array_len(h).map_err(VmError::Heap)?;
            let addr = env.heap.header_addr(h).map_err(VmError::Heap)? + 8;
            em.heap_load(sink, addr, 4);
            push!(Value::Int(len as i32));
        }
        Op::ArrLoad(kind) => {
            let idx = pop!().as_int();
            let objv = pop!();
            let h = npe!(objv);
            em.bounds_check(sink);
            let raw = env.heap.array_get(h, idx).map_err(VmError::Heap)?;
            let addr = env.heap.elem_addr(h, idx).map_err(VmError::Heap)?;
            em.heap_load(sink, addr, kind.elem_size() as u8);
            push!(if matches!(kind, jrt_bytecode::ArrayKind::Ref) {
                Value::ref_from_raw(raw)
            } else {
                Value::Int(raw)
            });
        }
        Op::ArrStore(kind) => {
            let v = pop!();
            let idx = pop!().as_int();
            let objv = pop!();
            let h = npe!(objv);
            em.bounds_check(sink);
            let addr = env.heap.elem_addr(h, idx).map_err(VmError::Heap)?;
            em.heap_store(sink, addr, kind.elem_size() as u8);
            env.heap
                .array_set(h, idx, v.to_raw())
                .map_err(VmError::Heap)?;
            if env.gc_barriers
                && matches!(kind, jrt_bytecode::ArrayKind::Ref)
                && matches!(v, Value::Ref(_))
            {
                *env.gc_barrier_insts += em.ref_store_barrier(sink, crate::heap::card_addr(addr));
            }
        }
        Op::InvokeStatic(cp) | Op::InvokeVirtual(cp) | Op::InvokeSpecial(cp) => {
            let (cname, mname, nargs, ret_kind) = {
                let (c, m, n, r) = pool
                    .method_ref(*cp)
                    .map_err(|e| VmError::Internal(e.to_string()))?;
                (c.to_owned(), m.to_owned(), n, r)
            };
            let is_virtual = matches!(op, Op::InvokeVirtual(_));
            let is_static = matches!(op, Op::InvokeStatic(_));

            let declared_cid = program.class(&cname).expect("verified class");
            let loaded = env
                .linker
                .ensure_loaded(declared_cid, program, env.heap, sink);
            *env.classload_insts += loaded;

            // Pop arguments (receiver first for instance calls).
            let argc = usize::from(nargs) + usize::from(!is_static);
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(pop!());
            }
            args.reverse();

            // Resolve the callee.
            let callee = if is_virtual {
                let recv = args[0];
                let h = npe!(recv);
                let rcls = env.heap.class_of(h).map_err(VmError::Heap)?;
                env.linker
                    .class(rcls)
                    .vtable_lookup(&mname)
                    .or_else(|| program.resolve_method(&cname, &mname))
                    .ok_or_else(|| VmError::Internal(format!("no target for {mname}")))?
            } else {
                program
                    .resolve_method(&cname, &mname)
                    .expect("verified method resolution")
            };
            let callee_def = program.method_def(callee);

            // Native methods dispatch to intrinsics.
            if callee_def.flags.is_native {
                let entry = layout::VM_TEXT_BASE
                    + 0x6_0000
                    + (u64::from(callee.class.0) * 131 + u64::from(callee.index)) % 0x1000 * 16;
                em.invoke(sink, InvokeKind::Direct, entry);
                let mut n = 0u64;
                let outcome =
                    intrinsics::call(&cname, &mname, &args, env.heap, env.out, sink, &mut n)
                        .map_err(|e| VmError::Intrinsic(format!("{e:?}")))?;
                em.ret(sink, 0);
                charge(env, mid, jit_frame, em.count() + n);
                thread.frame_mut().pc = next_pc;
                return Ok(match outcome {
                    IntrinsicOutcome::Done(v) => {
                        debug_assert_eq!(v.is_some(), ret_kind != RetKind::Void);
                        if let Some(rv) = v {
                            thread.frame_mut().stack.push(rv);
                        }
                        StepOutcome::Continue
                    }
                    IntrinsicOutcome::Spawn { target } => StepOutcome::Spawn { target },
                    IntrinsicOutcome::Join(tid) => StepOutcome::Join(tid),
                });
            }

            // JIT policy decision for the callee: one decision point
            // (tiering, translation, touch bookkeeping) shared with
            // thread starts.
            let code_addr = env.linker.code_addr(callee);
            let use_jit = env.jit.ensure_compiled(
                env.mode,
                env.profile,
                crate::jit::CalleeSite {
                    callee,
                    tid: thread.id,
                    def: callee_def,
                    code_addr,
                },
                sink,
            );

            let entry = if use_jit {
                env.jit.entry_addr(callee, thread.id)
            } else {
                invoke_helper_addr((u64::from(callee.class.0) << 20) ^ u64::from(callee.index))
            };
            let kind = if !is_virtual {
                InvokeKind::Direct
            } else if jit_frame {
                match env.jit.observe_call_site(mid, pc, callee) {
                    CallSite::Mono(_) => InvokeKind::VirtualMono,
                    _ => InvokeKind::VirtualPoly,
                }
            } else {
                InvokeKind::VirtualPoly
            };

            let ret_to = em.invoke(sink, kind, entry);

            // Synchronized-method monitor target.
            let sync_target = if callee_def.flags.is_synchronized {
                Some(if callee_def.flags.is_static {
                    env.linker.class(callee.class).class_object
                } else {
                    args[0].as_ref().expect("receiver checked above")
                })
            } else {
                None
            };

            if thread.call_depth() >= 512 {
                return Err(VmError::StackOverflow {
                    method: method_name(env, mid),
                });
            }
            thread.frame_mut().pc = next_pc;
            thread.push_frame(callee, callee_def, args);
            {
                let f = thread.frame_mut();
                f.jit = use_jit;
                f.ret_to = ret_to;
                f.sync_pending = sync_target;
            }
            let locals_addr = thread.frame().locals_addr;
            em.frame_setup(sink, usize::from(callee_def.max_locals), locals_addr);
            if env.profiling {
                env.profile.record_invocation(callee);
            }
            charge(env, mid, jit_frame, em.count());
            return Ok(StepOutcome::Continue);
        }
        Op::Return | Op::IReturn | Op::AReturn => {
            let value = if matches!(op, Op::Return) {
                None
            } else {
                Some(pop!())
            };
            let frame = thread.pop_frame();
            if let Some(h) = frame.sync_obj {
                match env.sync.monitor_exit(h, thread.id) {
                    Ok(ExitOutcome::Released { cost } | ExitOutcome::StillHeld { cost }) => {
                        em.sync_op(sink, cost, lock_addr(env, h));
                    }
                    Err(e) => return Err(VmError::Monitor(e.to_string())),
                }
            }
            em.ret(sink, frame.ret_to);
            if thread.is_done() {
                thread.result = value;
                thread.status = ThreadStatus::Done;
                charge(env, mid, jit_frame, em.count());
                return Ok(StepOutcome::ThreadDone);
            }
            if let Some(v) = value {
                let f = thread.frame_mut();
                f.stack.push(v);
                let addr = f.stack_slot_addr(f.stack.len() - 1);
                em.stack_push(sink, addr);
            }
            charge(env, mid, jit_frame, em.count());
            return Ok(StepOutcome::Continue);
        }
        Op::MonitorEnter => {
            let top = *thread.frame().stack.last().expect("verified stack");
            let h = npe!(top);
            match env.sync.monitor_enter(h, thread.id) {
                EnterOutcome::Acquired { cost, .. } => {
                    pop!();
                    em.sync_op(sink, cost, lock_addr(env, h));
                }
                EnterOutcome::Blocked { cost } => {
                    em.sync_op(sink, cost, lock_addr(env, h));
                    charge(env, mid, jit_frame, em.count());
                    thread.status = ThreadStatus::Blocked(h);
                    return Ok(StepOutcome::Blocked);
                }
            }
        }
        Op::MonitorExit => {
            let v = pop!();
            let h = npe!(v);
            match env.sync.monitor_exit(h, thread.id) {
                Ok(ExitOutcome::Released { cost } | ExitOutcome::StillHeld { cost }) => {
                    em.sync_op(sink, cost, lock_addr(env, h));
                }
                Err(e) => return Err(VmError::Monitor(e.to_string())),
            }
        }
    }

    // Backward branches are the tiered policy's loop-hotness signal
    // (invoke/return paths exit earlier, so only branches land here).
    if env.profiling && next_pc < pc {
        env.profile.get_mut(mid).backedges += 1;
    }
    thread.frame_mut().pc = next_pc;
    charge(env, mid, jit_frame, em.count());
    Ok(StepOutcome::Continue)
}

/// Simple bytecodes the picoJava folding unit can fuse: constants,
/// local moves, stack shuffles, and ALU operations.
fn is_foldable(op: &Op) -> bool {
    matches!(
        op,
        Op::Nop
            | Op::IConst(_)
            | Op::AConstNull
            | Op::ILoad(_)
            | Op::IStore(_)
            | Op::ALoad(_)
            | Op::AStore(_)
            | Op::Pop
            | Op::Dup
            | Op::DupX1
            | Op::Swap
            | Op::IAdd
            | Op::ISub
            | Op::IMul
            | Op::IDiv
            | Op::IRem
            | Op::INeg
            | Op::IShl
            | Op::IShr
            | Op::IUshr
            | Op::IAnd
            | Op::IOr
            | Op::IXor
            | Op::IInc(_, _)
    )
}

fn charge(env: &mut StepEnv<'_>, mid: jrt_bytecode::MethodId, jit_frame: bool, count: u64) {
    if env.profiling {
        let p = env.profile.get_mut(mid);
        if jit_frame {
            p.native_cycles += count;
        } else {
            p.interp_cycles += count;
        }
    }
}

fn method_name(env: &StepEnv<'_>, mid: jrt_bytecode::MethodId) -> String {
    let cf = env.program.class_file(mid.class);
    format!("{}::{}", cf.name, cf.methods[mid.index as usize].name)
}
