//! The simulated Java heap: objects, arrays, and values.
//!
//! Every allocation is assigned a virtual address in the
//! [`Heap`](jrt_trace::Region::Heap) region of the simulated address
//! space, so that loads/stores emitted for field and array accesses
//! carry realistic addresses (object layout drives the D-cache
//! studies, Figures 3–8). Addresses are bump-allocated and never
//! reused; liveness is tracked separately so the collector
//! (the `gc` module) can reclaim *handles* and account live bytes.

use jrt_bytecode::{ArrayKind, ClassId};
use jrt_trace::{layout, Addr};
use std::fmt;

/// A reference to a heap object; `0` is reserved (null is represented
/// by [`Value::Null`]).
pub type Handle = u32;

/// A JVM value: our ISA is 32-bit-slot based, like the paper's
/// UltraSPARC-era JVMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// The null reference.
    #[default]
    Null,
    /// A 32-bit integer.
    Int(i32),
    /// An object or array reference.
    Ref(Handle),
}

impl Value {
    /// Extracts an int. [`Value::Null`] reads as 0: fields, statics,
    /// and locals start as the all-zeros word, exactly as in the JVM.
    ///
    /// # Panics
    ///
    /// Panics if the value is a reference (verified bytecode cannot
    /// trigger this; it indicates a VM bug).
    pub fn as_int(self) -> i32 {
        match self {
            Value::Int(v) => v,
            Value::Null => 0,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Extracts a reference handle; `None` for null.
    ///
    /// # Panics
    ///
    /// Panics if the value is an int.
    pub fn as_ref(self) -> Option<Handle> {
        match self {
            Value::Ref(h) => Some(h),
            Value::Null => None,
            other => panic!("expected reference, found {other:?}"),
        }
    }

    /// Encodes the value into a raw 32-bit slot (for array storage).
    pub fn to_raw(self) -> i32 {
        match self {
            Value::Null => 0,
            Value::Int(v) => v,
            Value::Ref(h) => h as i32,
        }
    }

    /// Decodes a raw slot as a reference (0 = null).
    pub fn ref_from_raw(raw: i32) -> Value {
        if raw == 0 {
            Value::Null
        } else {
            Value::Ref(raw as Handle)
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(h) => write!(f, "@{h}"),
        }
    }
}

/// Heap errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The heap region of the address space is exhausted.
    OutOfMemory,
    /// A handle does not name a live allocation (VM bug or GC bug).
    BadHandle(Handle),
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i32,
        /// The array length.
        len: u32,
    },
    /// Array allocation with negative length.
    NegativeArraySize(i32),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory => write!(f, "simulated heap exhausted"),
            HeapError::BadHandle(h) => write!(f, "dangling handle @{h}"),
            HeapError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            HeapError::NegativeArraySize(n) => write!(f, "negative array size {n}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Object header bytes (class word + lock word), as in the thin-lock
/// design discussion.
pub const OBJECT_HEADER: u32 = 8;
/// Array header bytes (class word + lock word + length).
pub const ARRAY_HEADER: u32 = 12;

#[derive(Debug, Clone)]
enum Slot {
    Free,
    Object {
        class: ClassId,
        fields: Vec<Value>,
        addr: Addr,
        bytes: u32,
        marked: bool,
    },
    Array {
        kind: ArrayKind,
        data: Vec<i32>,
        addr: Addr,
        bytes: u32,
        marked: bool,
    },
}

/// Allocation statistics for Table 1 footprint accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes allocated over the whole run.
    pub allocated_bytes: u64,
    /// Currently live bytes.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Objects allocated.
    pub objects: u64,
    /// Arrays allocated.
    pub arrays: u64,
}

/// The simulated heap.
#[derive(Debug)]
pub struct Heap {
    slots: Vec<Slot>,
    free: Vec<Handle>,
    cursor: Addr,
    stats: HeapStats,
    allocated_since_gc: u64,
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap {
            slots: vec![Slot::Free], // slot 0 unused: handle 0 reserved
            free: Vec::new(),
            cursor: layout::HEAP_BASE,
            stats: HeapStats::default(),
            allocated_since_gc: 0,
        }
    }

    /// Clears the heap back to its initial state, retaining the slot
    /// table's allocation (arena reuse for pooled VMs: a reset heap
    /// costs no reallocation on the next run's allocations).
    pub fn reset(&mut self) {
        self.slots.clear();
        self.slots.push(Slot::Free); // slot 0 unused: handle 0 reserved
        self.free.clear();
        self.cursor = layout::HEAP_BASE;
        self.stats = HeapStats::default();
        self.allocated_since_gc = 0;
    }

    fn take_handle(&mut self) -> Handle {
        if let Some(h) = self.free.pop() {
            h
        } else {
            self.slots.push(Slot::Free);
            (self.slots.len() - 1) as Handle
        }
    }

    fn bump(&mut self, bytes: u32) -> Result<Addr, HeapError> {
        let addr = self.cursor;
        let aligned = (u64::from(bytes) + 7) & !7;
        if addr + aligned > layout::HEAP_END {
            return Err(HeapError::OutOfMemory);
        }
        self.cursor += aligned;
        self.stats.allocated_bytes += aligned;
        self.stats.live_bytes += aligned;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        self.allocated_since_gc += aligned;
        Ok(addr)
    }

    /// Allocates an object with `nfields` fields (all initialized to
    /// [`Value::Null`]-equivalent zero of their kind: `Null`).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the heap region is
    /// exhausted.
    pub fn alloc_object(&mut self, class: ClassId, nfields: usize) -> Result<Handle, HeapError> {
        let bytes = OBJECT_HEADER + 4 * nfields as u32;
        let addr = self.bump(bytes)?;
        let h = self.take_handle();
        self.slots[h as usize] = Slot::Object {
            class,
            fields: vec![Value::Null; nfields],
            addr,
            bytes,
            marked: false,
        };
        self.stats.objects += 1;
        Ok(h)
    }

    /// Allocates an array.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NegativeArraySize`] for a negative length
    /// or [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn alloc_array(&mut self, kind: ArrayKind, len: i32) -> Result<Handle, HeapError> {
        if len < 0 {
            return Err(HeapError::NegativeArraySize(len));
        }
        let bytes = ARRAY_HEADER + kind.elem_size() * len as u32;
        let addr = self.bump(bytes)?;
        let h = self.take_handle();
        self.slots[h as usize] = Slot::Array {
            kind,
            data: vec![0; len as usize],
            addr,
            bytes,
            marked: false,
        };
        self.stats.arrays += 1;
        Ok(h)
    }

    fn object(&self, h: Handle) -> Result<(&ClassId, &Vec<Value>, Addr), HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Object {
                class,
                fields,
                addr,
                ..
            }) => Ok((class, fields, *addr)),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Class of the object behind `h`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] if `h` is not a live object.
    pub fn class_of(&self, h: Handle) -> Result<ClassId, HeapError> {
        self.object(h).map(|(c, _, _)| *c)
    }

    /// Reads field `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or arrays.
    pub fn get_field(&self, h: Handle, idx: usize) -> Result<Value, HeapError> {
        let (_, fields, _) = self.object(h)?;
        fields.get(idx).copied().ok_or(HeapError::BadHandle(h))
    }

    /// Writes field `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or arrays.
    pub fn set_field(&mut self, h: Handle, idx: usize, v: Value) -> Result<(), HeapError> {
        match self.slots.get_mut(h as usize) {
            Some(Slot::Object { fields, .. }) if idx < fields.len() => {
                fields[idx] = v;
                Ok(())
            }
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Simulated address of field `idx` of object `h`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or arrays.
    pub fn field_addr(&self, h: Handle, idx: usize) -> Result<Addr, HeapError> {
        let (_, _, addr) = self.object(h)?;
        Ok(addr + u64::from(OBJECT_HEADER) + 4 * idx as u64)
    }

    /// Simulated address of the object header (lock word), used by
    /// monitor operations.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles.
    pub fn header_addr(&self, h: Handle) -> Result<Addr, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Object { addr, .. }) | Some(Slot::Array { addr, .. }) => Ok(*addr),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Array length.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or objects.
    pub fn array_len(&self, h: Handle) -> Result<u32, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { data, .. }) => Ok(data.len() as u32),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Reads array element `idx` as a raw slot.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::IndexOutOfBounds`] or
    /// [`HeapError::BadHandle`].
    pub fn array_get(&self, h: Handle, idx: i32) -> Result<i32, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { data, .. }) => {
                if idx < 0 || idx as usize >= data.len() {
                    Err(HeapError::IndexOutOfBounds {
                        index: idx,
                        len: data.len() as u32,
                    })
                } else {
                    Ok(data[idx as usize])
                }
            }
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Writes array element `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::IndexOutOfBounds`] or
    /// [`HeapError::BadHandle`].
    pub fn array_set(&mut self, h: Handle, idx: i32, raw: i32) -> Result<(), HeapError> {
        match self.slots.get_mut(h as usize) {
            Some(Slot::Array { data, .. }) => {
                if idx < 0 || idx as usize >= data.len() {
                    Err(HeapError::IndexOutOfBounds {
                        index: idx,
                        len: data.len() as u32,
                    })
                } else {
                    data[idx as usize] = raw;
                    Ok(())
                }
            }
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Element kind of the array behind `h`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or objects.
    pub fn array_kind(&self, h: Handle) -> Result<ArrayKind, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { kind, .. }) => Ok(*kind),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Simulated address of array element `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or objects.
    pub fn elem_addr(&self, h: Handle, idx: i32) -> Result<Addr, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { kind, addr, .. }) => Ok(*addr
                + u64::from(ARRAY_HEADER)
                + u64::from(kind.elem_size()) * idx.max(0) as u64),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Bytes allocated since the last collection (GC trigger input).
    pub fn allocated_since_gc(&self) -> u64 {
        self.allocated_since_gc
    }

    // ---- GC support (used by crate::gc) ------------------------------------

    pub(crate) fn clear_marks(&mut self) {
        for s in &mut self.slots {
            match s {
                Slot::Object { marked, .. } | Slot::Array { marked, .. } => *marked = false,
                Slot::Free => {}
            }
        }
    }

    /// Marks `h`; returns the references it holds (for the mark
    /// worklist) the first time it is marked, `None` if already marked
    /// or dead.
    pub(crate) fn mark(&mut self, h: Handle) -> Option<Vec<Handle>> {
        match self.slots.get_mut(h as usize) {
            Some(Slot::Object { fields, marked, .. }) => {
                if *marked {
                    return None;
                }
                *marked = true;
                Some(
                    fields
                        .iter()
                        .filter_map(|v| match v {
                            Value::Ref(r) => Some(*r),
                            _ => None,
                        })
                        .collect(),
                )
            }
            Some(Slot::Array {
                kind: ArrayKind::Ref,
                data,
                marked,
                ..
            }) => {
                if *marked {
                    return None;
                }
                *marked = true;
                Some(
                    data.iter()
                        .filter(|&&r| r != 0)
                        .map(|&r| r as Handle)
                        .collect(),
                )
            }
            Some(Slot::Array { marked, .. }) => {
                if *marked {
                    return None;
                }
                *marked = true;
                Some(Vec::new())
            }
            _ => None,
        }
    }

    /// Sweeps unmarked slots; returns (freed handles, freed bytes).
    pub(crate) fn sweep(&mut self) -> (Vec<Handle>, u64) {
        let mut freed = Vec::new();
        let mut bytes = 0u64;
        for (i, s) in self.slots.iter_mut().enumerate().skip(1) {
            let dead_bytes = match s {
                Slot::Object {
                    marked: false,
                    bytes,
                    ..
                }
                | Slot::Array {
                    marked: false,
                    bytes,
                    ..
                } => Some(u64::from(*bytes)),
                _ => None,
            };
            if let Some(b) = dead_bytes {
                *s = Slot::Free;
                freed.push(i as Handle);
                bytes += (b + 7) & !7;
            }
        }
        self.stats.live_bytes -= bytes;
        self.free.extend(freed.iter().copied());
        self.allocated_since_gc = 0;
        (freed, bytes)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, Slot::Free))
            .count()
    }

    /// Deterministic 64-bit digest of the live heap: slot index, slot
    /// kind, class / element kind, and every field and element value
    /// are folded through a SplitMix64-style finalizer. Engines that
    /// performed the same allocations and stores digest identically,
    /// so the differential fuzzer can compare final heap states
    /// without walking object graphs.
    pub fn digest(&self) -> u64 {
        fn fold(h: u64, v: u64) -> u64 {
            let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for (i, s) in self.slots.iter().enumerate() {
            match s {
                Slot::Free => {}
                Slot::Object { class, fields, .. } => {
                    h = fold(h, 1 ^ ((i as u64) << 8));
                    h = fold(h, u64::from(class.0));
                    for f in fields {
                        h = fold(h, f.to_raw() as u32 as u64);
                    }
                }
                Slot::Array { kind, data, .. } => {
                    h = fold(h, 2 ^ ((i as u64) << 8));
                    h = fold(h, *kind as u64);
                    for v in data {
                        h = fold(h, *v as u32 as u64);
                    }
                }
            }
        }
        h
    }

    /// Iterates over live handles and their header addresses (the GC
    /// trace generator visits these).
    pub(crate) fn live_handles(&self) -> Vec<(Handle, Addr)> {
        self.slots
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(i, s)| match s {
                Slot::Object { addr, .. } | Slot::Array { addr, .. } => Some((i as Handle, *addr)),
                Slot::Free => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrip() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(3), 2).unwrap();
        assert_eq!(h.class_of(o).unwrap(), ClassId(3));
        h.set_field(o, 1, Value::Int(42)).unwrap();
        assert_eq!(h.get_field(o, 1).unwrap(), Value::Int(42));
        assert_eq!(h.get_field(o, 0).unwrap(), Value::Null);
        assert!(h.get_field(o, 2).is_err());
    }

    #[test]
    fn array_roundtrip_and_bounds() {
        let mut h = Heap::new();
        let a = h.alloc_array(ArrayKind::Int, 3).unwrap();
        assert_eq!(h.array_len(a).unwrap(), 3);
        h.array_set(a, 2, 7).unwrap();
        assert_eq!(h.array_get(a, 2).unwrap(), 7);
        assert!(matches!(
            h.array_get(a, 3),
            Err(HeapError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.array_get(a, -1),
            Err(HeapError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.alloc_array(ArrayKind::Int, -5),
            Err(HeapError::NegativeArraySize(-5))
        ));
    }

    #[test]
    fn addresses_live_in_heap_region() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 1).unwrap();
        let a = h.alloc_array(ArrayKind::Char, 10).unwrap();
        for addr in [
            h.field_addr(o, 0).unwrap(),
            h.header_addr(o).unwrap(),
            h.elem_addr(a, 9).unwrap(),
        ] {
            assert_eq!(
                jrt_trace::Region::classify(addr),
                Some(jrt_trace::Region::Heap)
            );
        }
        // char elements are 2 bytes apart
        assert_eq!(h.elem_addr(a, 1).unwrap() - h.elem_addr(a, 0).unwrap(), 2);
    }

    #[test]
    fn stats_track_peak() {
        let mut h = Heap::new();
        h.alloc_object(ClassId(0), 4).unwrap();
        let s = h.stats();
        assert_eq!(s.objects, 1);
        assert!(s.peak_bytes >= 24);
        assert_eq!(s.live_bytes, s.peak_bytes);
    }

    #[test]
    fn mark_sweep_reclaims_unreachable() {
        let mut h = Heap::new();
        let keep = h.alloc_object(ClassId(0), 1).unwrap();
        let child = h.alloc_object(ClassId(0), 0).unwrap();
        let _dead = h.alloc_object(ClassId(0), 0).unwrap();
        h.set_field(keep, 0, Value::Ref(child)).unwrap();

        h.clear_marks();
        let mut work = vec![keep];
        while let Some(x) = work.pop() {
            if let Some(children) = h.mark(x) {
                work.extend(children);
            }
        }
        let (freed, bytes) = h.sweep();
        assert_eq!(freed.len(), 1);
        assert!(bytes >= 8);
        assert!(h.get_field(keep, 0).is_ok());
        assert_eq!(h.live_count(), 2);
        // Freed handle is reused.
        let again = h.alloc_object(ClassId(0), 0).unwrap();
        assert_eq!(again, freed[0]);
    }

    #[test]
    fn value_raw_roundtrip() {
        assert_eq!(Value::ref_from_raw(Value::Null.to_raw()), Value::Null);
        assert_eq!(Value::ref_from_raw(Value::Ref(7).to_raw()), Value::Ref(7));
        assert_eq!(Value::Int(-3).to_raw(), -3);
    }
}
