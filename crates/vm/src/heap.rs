//! The simulated Java heap: objects, arrays, and values.
//!
//! Every allocation is assigned a virtual address in the
//! [`Heap`](jrt_trace::Region::Heap) region of the simulated address
//! space, so that loads/stores emitted for field and array accesses
//! carry realistic addresses (object layout drives the D-cache
//! studies, Figures 3–8).
//!
//! Two layouts exist behind one handle table:
//!
//! * **Legacy** ([`GcConfig::Legacy`](crate::GcConfig)) — one
//!   bump-allocated space; addresses are never reused, handles freed
//!   by the mark-sweep collector are recycled.
//! * **Generational** ([`GcConfig::Generational`](crate::GcConfig)) —
//!   the heap region is split at `TENURED_BASE`: a small nursery
//!   bump-allocates below it and is evacuated into tenured space by
//!   copying minor collections; tenured space is compacted by copying
//!   major collections. Because all access goes through the handle
//!   table, moving an object is one address rewrite — field values
//!   (which hold handles, not addresses) never change, which is what
//!   keeps the cross-engine [`Observables`](crate::Observables)
//!   stable under any collection schedule. Generational mode never
//!   recycles handles, so a live object's slot index equals its
//!   allocation sequence number regardless of how many collections
//!   ran — the other half of that stability guarantee.
//!
//! The generational heap also maintains the **remembered set** here,
//! inside [`Heap::set_field`] / [`Heap::array_set`], rather than in
//! the bytecode layer: every mutation path (including the
//! `Sys.arraycopy` intrinsic's raw element stores) funnels through
//! these two methods, so a tenured→nursery edge can never be created
//! without being recorded. Write-*barrier* trace emission is a
//! separate, cost-model concern handled by the emitters.

use crate::config::GcConfig;
use jrt_bytecode::{ArrayKind, ClassId};
use jrt_trace::{layout, Addr};
use std::fmt;

/// First simulated address of tenured space in generational mode: the
/// 256 MiB heap region is split in half, nursery below, tenured
/// above, so an object's generation is decidable from its address
/// alone — no per-slot generation tag.
pub(crate) const TENURED_BASE: Addr = layout::HEAP_BASE + 0x800_0000;

/// Base of the card table in VM data: one byte per 2^[`CARD_SHIFT`]
/// bytes of heap (or static area), dirtied by the write barrier.
pub(crate) const CARD_BASE: Addr = layout::VM_DATA_BASE + 0x30_0000;

/// Log2 of the card size (512-byte cards, the HotSpot value).
pub(crate) const CARD_SHIFT: u32 = 9;

/// Simulated address of the card-table byte covering `addr` (a heap
/// field/element address or a static slot address — both lie above
/// the heap base). The write barrier dirties this byte on every
/// reference store.
pub(crate) fn card_addr(addr: Addr) -> Addr {
    CARD_BASE + (addr.saturating_sub(layout::HEAP_BASE) >> CARD_SHIFT)
}

/// Which collection the generational heap needs next, decided at
/// allocation time and consumed by the VM at the next bytecode
/// boundary (collections never run mid-bytecode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GcKind {
    /// Nursery evacuation driven by roots + remembered set.
    Minor,
    /// Full mark + copying compaction of tenured space.
    Major,
}

/// A reference to a heap object; `0` is reserved (null is represented
/// by [`Value::Null`]).
pub type Handle = u32;

/// A JVM value: our ISA is 32-bit-slot based, like the paper's
/// UltraSPARC-era JVMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// The null reference.
    #[default]
    Null,
    /// A 32-bit integer.
    Int(i32),
    /// An object or array reference.
    Ref(Handle),
}

impl Value {
    /// Extracts an int. [`Value::Null`] reads as 0: fields, statics,
    /// and locals start as the all-zeros word, exactly as in the JVM.
    ///
    /// # Panics
    ///
    /// Panics if the value is a reference (verified bytecode cannot
    /// trigger this; it indicates a VM bug).
    pub fn as_int(self) -> i32 {
        match self {
            Value::Int(v) => v,
            Value::Null => 0,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Extracts a reference handle; `None` for null.
    ///
    /// # Panics
    ///
    /// Panics if the value is an int.
    pub fn as_ref(self) -> Option<Handle> {
        match self {
            Value::Ref(h) => Some(h),
            Value::Null => None,
            other => panic!("expected reference, found {other:?}"),
        }
    }

    /// Encodes the value into a raw 32-bit slot (for array storage).
    pub fn to_raw(self) -> i32 {
        match self {
            Value::Null => 0,
            Value::Int(v) => v,
            Value::Ref(h) => h as i32,
        }
    }

    /// Decodes a raw slot as a reference (0 = null).
    pub fn ref_from_raw(raw: i32) -> Value {
        if raw == 0 {
            Value::Null
        } else {
            Value::Ref(raw as Handle)
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(h) => write!(f, "@{h}"),
        }
    }
}

/// Heap errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The heap region of the address space is exhausted.
    OutOfMemory,
    /// A handle does not name a live allocation (VM bug or GC bug).
    BadHandle(Handle),
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i32,
        /// The array length.
        len: u32,
    },
    /// Array allocation with negative length.
    NegativeArraySize(i32),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory => write!(f, "simulated heap exhausted"),
            HeapError::BadHandle(h) => write!(f, "dangling handle @{h}"),
            HeapError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            HeapError::NegativeArraySize(n) => write!(f, "negative array size {n}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Object header bytes (class word + lock word), as in the thin-lock
/// design discussion.
pub const OBJECT_HEADER: u32 = 8;
/// Array header bytes (class word + lock word + length).
pub const ARRAY_HEADER: u32 = 12;

#[derive(Debug, Clone)]
enum Slot {
    Free,
    Object {
        class: ClassId,
        fields: Vec<Value>,
        addr: Addr,
        bytes: u32,
        marked: bool,
    },
    Array {
        kind: ArrayKind,
        data: Vec<i32>,
        addr: Addr,
        bytes: u32,
        marked: bool,
    },
}

/// Allocation statistics for Table 1 footprint accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes allocated over the whole run.
    pub allocated_bytes: u64,
    /// Currently live bytes.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Objects allocated.
    pub objects: u64,
    /// Arrays allocated.
    pub arrays: u64,
}

/// One object relocation performed by a copying collection: the
/// handle is untouched, only its address changed. The collector emits
/// the copy's loads/stores from this record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ObjectMove {
    /// The moved object's (stable) handle.
    pub handle: Handle,
    /// Address before the move.
    pub from: Addr,
    /// Address after the move.
    pub to: Addr,
    /// Payload size in bytes (unaligned).
    pub bytes: u32,
}

/// SplitMix64-style fold shared by [`Heap::digest`] and
/// [`Heap::reachable_digest`].
fn fold64(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-collection accounting of the generational spaces, surfaced to
/// the `gc_study` report (survival rates need the allocation split).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Bytes ever bump-allocated in the nursery.
    pub nursery_allocated_bytes: u64,
    /// Bytes promoted out of the nursery by minor collections.
    pub promoted_bytes: u64,
    /// Bytes allocated directly in tenured space (nursery-overflow
    /// pretenuring).
    pub pretenured_bytes: u64,
}

/// Generational-mode state: space cursors, collection triggers, and
/// the remembered set.
#[derive(Debug)]
struct GenState {
    /// One past the last nursery byte (`HEAP_BASE + nursery_bytes`).
    nursery_limit: Addr,
    /// Tenured-allocation budget between major collections.
    tenured_budget: u64,
    nursery_cursor: Addr,
    tenured_cursor: Addr,
    /// Tenured bytes (direct + promoted) since the last major.
    tenured_since_major: u64,
    stats: GenStats,
    /// Tenured containers that may hold nursery references, in first-
    /// insertion order (deterministic minor-collection root order).
    remset: Vec<Handle>,
    /// Membership bitmap for `remset`, indexed by handle.
    in_remset: Vec<bool>,
    /// Collection requested by the allocator, consumed by the VM at
    /// the next bytecode boundary.
    pending: Option<GcKind>,
    /// Harness self-test hook: when `Some(n)`, the `n`-th
    /// remembered-set enrollment (0-based) is silently dropped — the
    /// seeded "missed write barrier" the must-fail CI job proves the
    /// GC differential detects.
    drop_barrier: Option<u64>,
}

impl GenState {
    fn new(nursery_bytes: u64, tenured_bytes: u64) -> Self {
        GenState {
            nursery_limit: layout::HEAP_BASE + nursery_bytes.min(TENURED_BASE - layout::HEAP_BASE),
            tenured_budget: tenured_bytes,
            nursery_cursor: layout::HEAP_BASE,
            tenured_cursor: TENURED_BASE,
            tenured_since_major: 0,
            stats: GenStats::default(),
            remset: Vec::new(),
            in_remset: Vec::new(),
            pending: None,
            drop_barrier: None,
        }
    }
}

/// The simulated heap.
#[derive(Debug)]
pub struct Heap {
    slots: Vec<Slot>,
    free: Vec<Handle>,
    cursor: Addr,
    stats: HeapStats,
    allocated_since_gc: u64,
    gen: Option<GenState>,
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Creates an empty heap in the legacy single-space layout.
    pub fn new() -> Self {
        Self::with_config(GcConfig::Legacy)
    }

    /// Creates an empty heap laid out for the given collector.
    pub fn with_config(gc: GcConfig) -> Self {
        Heap {
            slots: vec![Slot::Free], // slot 0 unused: handle 0 reserved
            free: Vec::new(),
            cursor: layout::HEAP_BASE,
            stats: HeapStats::default(),
            allocated_since_gc: 0,
            gen: match gc {
                GcConfig::Legacy => None,
                GcConfig::Generational {
                    nursery_bytes,
                    tenured_bytes,
                } => Some(GenState::new(nursery_bytes, tenured_bytes)),
            },
        }
    }

    /// Clears the heap back to its initial state, retaining the slot
    /// table's allocation (arena reuse for pooled VMs: a reset heap
    /// costs no reallocation on the next run's allocations). In
    /// generational mode this also resets both space cursors, the
    /// remembered set, and any pending collection request, so a
    /// pooled VM's next job starts from an empty nursery.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.slots.push(Slot::Free); // slot 0 unused: handle 0 reserved
        self.free.clear();
        self.cursor = layout::HEAP_BASE;
        self.stats = HeapStats::default();
        self.allocated_since_gc = 0;
        if let Some(g) = self.gen.as_mut() {
            g.nursery_cursor = layout::HEAP_BASE;
            g.tenured_cursor = TENURED_BASE;
            g.tenured_since_major = 0;
            g.stats = GenStats::default();
            g.remset.clear();
            g.in_remset.clear();
            g.pending = None;
            g.drop_barrier = None;
        }
    }

    /// Harness self-test hook: arms the collector to silently drop
    /// the `n`-th remembered-set enrollment (0-based) — a seeded
    /// "missed write barrier". The GC differential fuzzer's must-fail
    /// CI job uses this to prove a single lost barrier is detected as
    /// an observable divergence. No-op on a legacy heap.
    pub fn sabotage_drop_barrier(&mut self, n: u64) {
        if let Some(g) = self.gen.as_mut() {
            g.drop_barrier = Some(n);
        }
    }

    fn take_handle(&mut self) -> Handle {
        // Generational mode never recycles handles: a live object's
        // slot index is its allocation sequence number on every
        // collection schedule, which keeps the reachable-heap digest
        // GC-invariant.
        if self.gen.is_none() {
            if let Some(h) = self.free.pop() {
                return h;
            }
        }
        self.slots.push(Slot::Free);
        (self.slots.len() - 1) as Handle
    }

    fn bump(&mut self, bytes: u32) -> Result<Addr, HeapError> {
        let aligned = (u64::from(bytes) + 7) & !7;
        let addr = if let Some(g) = self.gen.as_mut() {
            if g.nursery_cursor + aligned <= g.nursery_limit {
                let a = g.nursery_cursor;
                g.nursery_cursor += aligned;
                g.stats.nursery_allocated_bytes += aligned;
                a
            } else {
                // Nursery overflow: pretenure this allocation and ask
                // for a minor collection at the next bytecode
                // boundary (collections never run mid-bytecode).
                if g.tenured_cursor + aligned > layout::HEAP_END {
                    return Err(HeapError::OutOfMemory);
                }
                let a = g.tenured_cursor;
                g.tenured_cursor += aligned;
                g.tenured_since_major += aligned;
                g.stats.pretenured_bytes += aligned;
                if g.tenured_since_major > g.tenured_budget {
                    g.pending = Some(GcKind::Major);
                } else if g.pending.is_none() {
                    g.pending = Some(GcKind::Minor);
                }
                a
            }
        } else {
            let a = self.cursor;
            if a + aligned > layout::HEAP_END {
                return Err(HeapError::OutOfMemory);
            }
            self.cursor += aligned;
            a
        };
        self.stats.allocated_bytes += aligned;
        self.stats.live_bytes += aligned;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        self.allocated_since_gc += aligned;
        Ok(addr)
    }

    /// Allocates an object with `nfields` fields (all initialized to
    /// [`Value::Null`]-equivalent zero of their kind: `Null`).
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the heap region is
    /// exhausted.
    pub fn alloc_object(&mut self, class: ClassId, nfields: usize) -> Result<Handle, HeapError> {
        let bytes = OBJECT_HEADER + 4 * nfields as u32;
        let addr = self.bump(bytes)?;
        let h = self.take_handle();
        self.slots[h as usize] = Slot::Object {
            class,
            fields: vec![Value::Null; nfields],
            addr,
            bytes,
            marked: false,
        };
        self.stats.objects += 1;
        Ok(h)
    }

    /// Allocates an array.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::NegativeArraySize`] for a negative length
    /// or [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn alloc_array(&mut self, kind: ArrayKind, len: i32) -> Result<Handle, HeapError> {
        if len < 0 {
            return Err(HeapError::NegativeArraySize(len));
        }
        let bytes = ARRAY_HEADER + kind.elem_size() * len as u32;
        let addr = self.bump(bytes)?;
        let h = self.take_handle();
        self.slots[h as usize] = Slot::Array {
            kind,
            data: vec![0; len as usize],
            addr,
            bytes,
            marked: false,
        };
        self.stats.arrays += 1;
        Ok(h)
    }

    fn object(&self, h: Handle) -> Result<(&ClassId, &Vec<Value>, Addr), HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Object {
                class,
                fields,
                addr,
                ..
            }) => Ok((class, fields, *addr)),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Class of the object behind `h`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] if `h` is not a live object.
    pub fn class_of(&self, h: Handle) -> Result<ClassId, HeapError> {
        self.object(h).map(|(c, _, _)| *c)
    }

    /// Reads field `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or arrays.
    pub fn get_field(&self, h: Handle, idx: usize) -> Result<Value, HeapError> {
        let (_, fields, _) = self.object(h)?;
        fields.get(idx).copied().ok_or(HeapError::BadHandle(h))
    }

    /// Writes field `idx`. In generational mode a stored reference
    /// from a tenured object to a nursery object enrolls the
    /// container in the remembered set — this is the single funnel
    /// for object-field mutation, so the remset cannot miss an edge.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or arrays.
    pub fn set_field(&mut self, h: Handle, idx: usize, v: Value) -> Result<(), HeapError> {
        match self.slots.get_mut(h as usize) {
            Some(Slot::Object { fields, .. }) if idx < fields.len() => {
                fields[idx] = v;
                if let Value::Ref(target) = v {
                    self.remember_if_old_to_young(h, target);
                }
                Ok(())
            }
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Simulated address of field `idx` of object `h`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or arrays.
    pub fn field_addr(&self, h: Handle, idx: usize) -> Result<Addr, HeapError> {
        let (_, _, addr) = self.object(h)?;
        Ok(addr + u64::from(OBJECT_HEADER) + 4 * idx as u64)
    }

    /// Simulated address of the object header (lock word), used by
    /// monitor operations.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles.
    pub fn header_addr(&self, h: Handle) -> Result<Addr, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Object { addr, .. }) | Some(Slot::Array { addr, .. }) => Ok(*addr),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Array length.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or objects.
    pub fn array_len(&self, h: Handle) -> Result<u32, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { data, .. }) => Ok(data.len() as u32),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Reads array element `idx` as a raw slot.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::IndexOutOfBounds`] or
    /// [`HeapError::BadHandle`].
    pub fn array_get(&self, h: Handle, idx: i32) -> Result<i32, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { data, .. }) => {
                if idx < 0 || idx as usize >= data.len() {
                    Err(HeapError::IndexOutOfBounds {
                        index: idx,
                        len: data.len() as u32,
                    })
                } else {
                    Ok(data[idx as usize])
                }
            }
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Writes array element `idx`. Like [`Heap::set_field`], a stored
    /// reference into a tenured ref-array enrolls the array in the
    /// remembered set — `Sys.arraycopy` funnels through here too, so
    /// intrinsic bulk copies are covered without a bytecode-level
    /// barrier.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::IndexOutOfBounds`] or
    /// [`HeapError::BadHandle`].
    pub fn array_set(&mut self, h: Handle, idx: i32, raw: i32) -> Result<(), HeapError> {
        let mut stored_ref = None;
        match self.slots.get_mut(h as usize) {
            Some(Slot::Array { kind, data, .. }) => {
                if idx < 0 || idx as usize >= data.len() {
                    return Err(HeapError::IndexOutOfBounds {
                        index: idx,
                        len: data.len() as u32,
                    });
                }
                data[idx as usize] = raw;
                if matches!(kind, ArrayKind::Ref) && raw != 0 {
                    stored_ref = Some(raw as Handle);
                }
            }
            _ => return Err(HeapError::BadHandle(h)),
        }
        if let Some(target) = stored_ref {
            self.remember_if_old_to_young(h, target);
        }
        Ok(())
    }

    /// Element kind of the array behind `h`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or objects.
    pub fn array_kind(&self, h: Handle) -> Result<ArrayKind, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { kind, .. }) => Ok(*kind),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Simulated address of array element `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::BadHandle`] for dead handles or objects.
    pub fn elem_addr(&self, h: Handle, idx: i32) -> Result<Addr, HeapError> {
        match self.slots.get(h as usize) {
            Some(Slot::Array { kind, addr, .. }) => Ok(*addr
                + u64::from(ARRAY_HEADER)
                + u64::from(kind.elem_size()) * idx.max(0) as u64),
            _ => Err(HeapError::BadHandle(h)),
        }
    }

    /// Allocation statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Bytes allocated since the last collection (GC trigger input).
    pub fn allocated_since_gc(&self) -> u64 {
        self.allocated_since_gc
    }

    // ---- Generational support (used by crate::gc and the VM) ---------------

    /// Whether this heap runs the generational layout.
    pub fn is_generational(&self) -> bool {
        self.gen.is_some()
    }

    /// Generational allocation statistics (`None` in legacy mode).
    pub fn gen_stats(&self) -> Option<GenStats> {
        self.gen.as_ref().map(|g| g.stats)
    }

    /// The collection the allocator requested, if any, clearing the
    /// request. The VM polls this at bytecode boundaries.
    pub(crate) fn take_gc_pending(&mut self) -> Option<GcKind> {
        self.gen.as_mut().and_then(|g| g.pending.take())
    }

    /// Whether `h` is a live allocation in the nursery. Public so the
    /// GC-equivalence test layer can cross-check the remembered set
    /// against a full-heap scan.
    pub fn is_nursery(&self, h: Handle) -> bool {
        self.gen.is_some()
            && matches!(
                self.slots.get(h as usize),
                Some(Slot::Object { addr, .. } | Slot::Array { addr, .. }) if *addr < TENURED_BASE
            )
    }

    /// References held by `h` (empty for dead handles and non-ref
    /// arrays), without touching marks. Public for the GC-equivalence
    /// test layer.
    pub fn refs_in(&self, h: Handle) -> Vec<Handle> {
        match self.slots.get(h as usize) {
            Some(Slot::Object { fields, .. }) => fields
                .iter()
                .filter_map(|v| match v {
                    Value::Ref(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            Some(Slot::Array {
                kind: ArrayKind::Ref,
                data,
                ..
            }) => data
                .iter()
                .filter(|&&r| r != 0)
                .map(|&r| r as Handle)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// The remembered set: tenured containers that may hold nursery
    /// references, in first-insertion order. Public for the
    /// GC-equivalence test layer.
    pub fn remset(&self) -> &[Handle] {
        self.gen.as_ref().map_or(&[], |g| &g.remset)
    }

    /// Enrolls `container` in the remembered set when the edge
    /// `container → target` crosses tenured→nursery. Conservative:
    /// entries are never removed by later overwrites, only cleared
    /// when a collection empties the nursery.
    fn remember_if_old_to_young(&mut self, container: Handle, target: Handle) {
        if self.gen.is_none() || self.is_nursery(container) || !self.is_nursery(target) {
            return;
        }
        let g = self.gen.as_mut().expect("generational");
        let i = container as usize;
        if g.in_remset.len() <= i {
            g.in_remset.resize(i + 1, false);
        }
        if !g.in_remset[i] {
            if let Some(n) = g.drop_barrier.as_mut() {
                if *n == 0 {
                    g.drop_barrier = None;
                    return; // the seeded miss: skip exactly this enrollment
                }
                *n -= 1;
            }
            g.in_remset[i] = true;
            g.remset.push(container);
        }
    }

    /// Evacuates the nursery after a minor-collection mark: every
    /// marked nursery object is promoted (its address reassigned into
    /// tenured space — the handle, and therefore every field value
    /// naming it, is untouched), every unmarked one is freed without
    /// recycling its handle. Leaves the nursery empty and clears the
    /// remembered set. A promotion that pushes tenured allocation
    /// past its budget requests a major collection.
    ///
    /// Returns `(promotions, freed handles, freed bytes)`.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] if tenured space cannot absorb the
    /// survivors.
    pub(crate) fn promote_survivors(&mut self) -> Result<(Vec<ObjectMove>, u64, u64), HeapError> {
        let g = self.gen.as_mut().expect("generational");
        let mut moves = Vec::new();
        let mut freed = 0u64;
        let mut freed_bytes = 0u64;
        for (i, s) in self.slots.iter_mut().enumerate().skip(1) {
            let (addr, bytes, marked) = match s {
                Slot::Object {
                    addr,
                    bytes,
                    marked,
                    ..
                } => (addr, *bytes, *marked),
                Slot::Array {
                    addr,
                    bytes,
                    marked,
                    ..
                } => (addr, *bytes, *marked),
                Slot::Free => continue,
            };
            if *addr >= TENURED_BASE {
                continue;
            }
            let aligned = (u64::from(bytes) + 7) & !7;
            if marked {
                if g.tenured_cursor + aligned > layout::HEAP_END {
                    return Err(HeapError::OutOfMemory);
                }
                moves.push(ObjectMove {
                    handle: i as Handle,
                    from: *addr,
                    to: g.tenured_cursor,
                    bytes,
                });
                *addr = g.tenured_cursor;
                g.tenured_cursor += aligned;
                g.tenured_since_major += aligned;
                g.stats.promoted_bytes += aligned;
            } else {
                *s = Slot::Free;
                freed += 1;
                freed_bytes += aligned;
            }
        }
        self.stats.live_bytes -= freed_bytes;
        g.nursery_cursor = layout::HEAP_BASE;
        g.remset.clear();
        g.in_remset.clear();
        if g.tenured_since_major > g.tenured_budget {
            g.pending = Some(GcKind::Major);
        }
        Ok((moves, freed, freed_bytes))
    }

    /// Copying compaction after a major-collection mark: unmarked
    /// slots (both generations) are freed, marked ones are assigned
    /// consecutive tenured addresses in slot order. Leaves the
    /// nursery empty, the remembered set clear, and the tenured
    /// budget reset.
    ///
    /// Returns `(moves of surviving objects, freed handles, freed
    /// bytes)`; every survivor appears in the move list (copying
    /// compaction copies everything), including the rare one whose
    /// address is unchanged.
    pub(crate) fn compact_all(&mut self) -> (Vec<ObjectMove>, u64, u64) {
        let g = self.gen.as_mut().expect("generational");
        let mut moves = Vec::new();
        let mut freed = 0u64;
        let mut freed_bytes = 0u64;
        let mut cursor = TENURED_BASE;
        for (i, s) in self.slots.iter_mut().enumerate().skip(1) {
            let (addr, bytes, marked) = match s {
                Slot::Object {
                    addr,
                    bytes,
                    marked,
                    ..
                } => (addr, *bytes, *marked),
                Slot::Array {
                    addr,
                    bytes,
                    marked,
                    ..
                } => (addr, *bytes, *marked),
                Slot::Free => continue,
            };
            let aligned = (u64::from(bytes) + 7) & !7;
            if marked {
                moves.push(ObjectMove {
                    handle: i as Handle,
                    from: *addr,
                    to: cursor,
                    bytes,
                });
                *addr = cursor;
                cursor += aligned;
            } else {
                *s = Slot::Free;
                freed += 1;
                freed_bytes += aligned;
            }
        }
        self.stats.live_bytes -= freed_bytes;
        g.tenured_cursor = cursor;
        g.nursery_cursor = layout::HEAP_BASE;
        g.tenured_since_major = 0;
        g.remset.clear();
        g.in_remset.clear();
        g.pending = None;
        self.allocated_since_gc = 0;
        (moves, freed, freed_bytes)
    }

    /// Digest and count of the heap *reachable from `roots`*, in the
    /// same fold as [`Heap::digest`]. Garbage — swept or not — never
    /// contributes, and neither do addresses, so the result is
    /// identical across collector configurations and collection
    /// schedules: the GC-equivalence tests compare exactly this.
    pub fn reachable_digest<I: IntoIterator<Item = Handle>>(&self, roots: I) -> (u64, usize) {
        let mut reach = vec![false; self.slots.len()];
        let mut work: Vec<Handle> = roots.into_iter().collect();
        while let Some(h) = work.pop() {
            let i = h as usize;
            if i >= reach.len() || reach[i] || matches!(self.slots[i], Slot::Free) {
                continue;
            }
            reach[i] = true;
            work.extend(self.refs_in(h));
        }
        let mut digest = 0xCBF2_9CE4_8422_2325u64;
        let mut count = 0usize;
        for (i, s) in self.slots.iter().enumerate() {
            if !reach[i] {
                continue;
            }
            count += 1;
            match s {
                Slot::Free => unreachable!("free slots are never reachable"),
                Slot::Object { class, fields, .. } => {
                    digest = fold64(digest, 1 ^ ((i as u64) << 8));
                    digest = fold64(digest, u64::from(class.0));
                    for f in fields {
                        digest = fold64(digest, f.to_raw() as u32 as u64);
                    }
                }
                Slot::Array { kind, data, .. } => {
                    digest = fold64(digest, 2 ^ ((i as u64) << 8));
                    digest = fold64(digest, *kind as u64);
                    for v in data {
                        digest = fold64(digest, *v as u32 as u64);
                    }
                }
            }
        }
        (digest, count)
    }

    // ---- GC support (used by crate::gc) ------------------------------------

    pub(crate) fn clear_marks(&mut self) {
        for s in &mut self.slots {
            match s {
                Slot::Object { marked, .. } | Slot::Array { marked, .. } => *marked = false,
                Slot::Free => {}
            }
        }
    }

    /// Marks `h`; returns the references it holds (for the mark
    /// worklist) the first time it is marked, `None` if already marked
    /// or dead.
    pub(crate) fn mark(&mut self, h: Handle) -> Option<Vec<Handle>> {
        match self.slots.get_mut(h as usize) {
            Some(Slot::Object { fields, marked, .. }) => {
                if *marked {
                    return None;
                }
                *marked = true;
                Some(
                    fields
                        .iter()
                        .filter_map(|v| match v {
                            Value::Ref(r) => Some(*r),
                            _ => None,
                        })
                        .collect(),
                )
            }
            Some(Slot::Array {
                kind: ArrayKind::Ref,
                data,
                marked,
                ..
            }) => {
                if *marked {
                    return None;
                }
                *marked = true;
                Some(
                    data.iter()
                        .filter(|&&r| r != 0)
                        .map(|&r| r as Handle)
                        .collect(),
                )
            }
            Some(Slot::Array { marked, .. }) => {
                if *marked {
                    return None;
                }
                *marked = true;
                Some(Vec::new())
            }
            _ => None,
        }
    }

    /// Sweeps unmarked slots; returns (freed handles, freed bytes).
    pub(crate) fn sweep(&mut self) -> (Vec<Handle>, u64) {
        let mut freed = Vec::new();
        let mut bytes = 0u64;
        for (i, s) in self.slots.iter_mut().enumerate().skip(1) {
            let dead_bytes = match s {
                Slot::Object {
                    marked: false,
                    bytes,
                    ..
                }
                | Slot::Array {
                    marked: false,
                    bytes,
                    ..
                } => Some(u64::from(*bytes)),
                _ => None,
            };
            if let Some(b) = dead_bytes {
                *s = Slot::Free;
                freed.push(i as Handle);
                bytes += (b + 7) & !7;
            }
        }
        self.stats.live_bytes -= bytes;
        if self.gen.is_none() {
            // Only legacy mode recycles handles; see `take_handle`.
            self.free.extend(freed.iter().copied());
        }
        self.allocated_since_gc = 0;
        (freed, bytes)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, Slot::Free))
            .count()
    }

    /// Deterministic 64-bit digest of the live heap: slot index, slot
    /// kind, class / element kind, and every field and element value
    /// are folded through a SplitMix64-style finalizer. Engines that
    /// performed the same allocations and stores digest identically,
    /// so the differential fuzzer can compare final heap states
    /// without walking object graphs.
    pub fn digest(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for (i, s) in self.slots.iter().enumerate() {
            match s {
                Slot::Free => {}
                Slot::Object { class, fields, .. } => {
                    h = fold64(h, 1 ^ ((i as u64) << 8));
                    h = fold64(h, u64::from(class.0));
                    for f in fields {
                        h = fold64(h, f.to_raw() as u32 as u64);
                    }
                }
                Slot::Array { kind, data, .. } => {
                    h = fold64(h, 2 ^ ((i as u64) << 8));
                    h = fold64(h, *kind as u64);
                    for v in data {
                        h = fold64(h, *v as u32 as u64);
                    }
                }
            }
        }
        h
    }

    /// Iterates over live handles and their header addresses (the GC
    /// trace generator visits these).
    pub(crate) fn live_handles(&self) -> Vec<(Handle, Addr)> {
        self.slots
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(i, s)| match s {
                Slot::Object { addr, .. } | Slot::Array { addr, .. } => Some((i as Handle, *addr)),
                Slot::Free => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrip() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(3), 2).unwrap();
        assert_eq!(h.class_of(o).unwrap(), ClassId(3));
        h.set_field(o, 1, Value::Int(42)).unwrap();
        assert_eq!(h.get_field(o, 1).unwrap(), Value::Int(42));
        assert_eq!(h.get_field(o, 0).unwrap(), Value::Null);
        assert!(h.get_field(o, 2).is_err());
    }

    #[test]
    fn array_roundtrip_and_bounds() {
        let mut h = Heap::new();
        let a = h.alloc_array(ArrayKind::Int, 3).unwrap();
        assert_eq!(h.array_len(a).unwrap(), 3);
        h.array_set(a, 2, 7).unwrap();
        assert_eq!(h.array_get(a, 2).unwrap(), 7);
        assert!(matches!(
            h.array_get(a, 3),
            Err(HeapError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.array_get(a, -1),
            Err(HeapError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.alloc_array(ArrayKind::Int, -5),
            Err(HeapError::NegativeArraySize(-5))
        ));
    }

    #[test]
    fn addresses_live_in_heap_region() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 1).unwrap();
        let a = h.alloc_array(ArrayKind::Char, 10).unwrap();
        for addr in [
            h.field_addr(o, 0).unwrap(),
            h.header_addr(o).unwrap(),
            h.elem_addr(a, 9).unwrap(),
        ] {
            assert_eq!(
                jrt_trace::Region::classify(addr),
                Some(jrt_trace::Region::Heap)
            );
        }
        // char elements are 2 bytes apart
        assert_eq!(h.elem_addr(a, 1).unwrap() - h.elem_addr(a, 0).unwrap(), 2);
    }

    #[test]
    fn stats_track_peak() {
        let mut h = Heap::new();
        h.alloc_object(ClassId(0), 4).unwrap();
        let s = h.stats();
        assert_eq!(s.objects, 1);
        assert!(s.peak_bytes >= 24);
        assert_eq!(s.live_bytes, s.peak_bytes);
    }

    #[test]
    fn mark_sweep_reclaims_unreachable() {
        let mut h = Heap::new();
        let keep = h.alloc_object(ClassId(0), 1).unwrap();
        let child = h.alloc_object(ClassId(0), 0).unwrap();
        let _dead = h.alloc_object(ClassId(0), 0).unwrap();
        h.set_field(keep, 0, Value::Ref(child)).unwrap();

        h.clear_marks();
        let mut work = vec![keep];
        while let Some(x) = work.pop() {
            if let Some(children) = h.mark(x) {
                work.extend(children);
            }
        }
        let (freed, bytes) = h.sweep();
        assert_eq!(freed.len(), 1);
        assert!(bytes >= 8);
        assert!(h.get_field(keep, 0).is_ok());
        assert_eq!(h.live_count(), 2);
        // Freed handle is reused.
        let again = h.alloc_object(ClassId(0), 0).unwrap();
        assert_eq!(again, freed[0]);
    }

    #[test]
    fn value_raw_roundtrip() {
        assert_eq!(Value::ref_from_raw(Value::Null.to_raw()), Value::Null);
        assert_eq!(Value::ref_from_raw(Value::Ref(7).to_raw()), Value::Ref(7));
        assert_eq!(Value::Int(-3).to_raw(), -3);
    }

    fn tiny_gen_heap() -> Heap {
        Heap::with_config(GcConfig::Generational {
            nursery_bytes: 64,
            tenured_bytes: 1 << 20,
        })
    }

    #[test]
    fn nursery_overflow_pretenures_and_requests_minor() {
        let mut h = tiny_gen_heap();
        let a = h.alloc_object(ClassId(0), 4).unwrap(); // 24 bytes
        let b = h.alloc_object(ClassId(0), 4).unwrap();
        assert!(h.is_nursery(a) && h.is_nursery(b));
        assert!(h.take_gc_pending().is_none());
        // Third allocation (24 bytes) does not fit in the 64-byte
        // nursery: pretenured, minor collection requested.
        let c = h.alloc_object(ClassId(0), 4).unwrap();
        assert!(!h.is_nursery(c));
        assert!(h.header_addr(c).unwrap() >= TENURED_BASE);
        assert_eq!(h.take_gc_pending(), Some(GcKind::Minor));
        assert!(h.take_gc_pending().is_none(), "request is consumed");
        let stats = h.gen_stats().unwrap();
        assert!(stats.nursery_allocated_bytes >= 48);
        assert!(stats.pretenured_bytes >= 24);
    }

    #[test]
    fn remset_tracks_old_to_young_edges_only() {
        let mut h = tiny_gen_heap();
        let young1 = h.alloc_object(ClassId(0), 1).unwrap();
        let young2 = h.alloc_object(ClassId(0), 1).unwrap();
        // 12 fields = 56 bytes: too big for what's left of the
        // 64-byte nursery, so these pretenure into tenured space.
        let old = h.alloc_object(ClassId(0), 12).unwrap();
        assert!(!h.is_nursery(old));
        // young→young: no remset entry.
        h.set_field(young1, 0, Value::Ref(young2)).unwrap();
        assert!(h.remset().is_empty());
        // old→young: remembered once, even if stored twice.
        h.set_field(old, 0, Value::Ref(young1)).unwrap();
        h.set_field(old, 1, Value::Ref(young2)).unwrap();
        assert_eq!(h.remset(), &[old]);
        // old→old: no entry (young1 still young here, old is).
        let old2 = h.alloc_object(ClassId(0), 12).unwrap();
        assert!(!h.is_nursery(old2));
        h.set_field(old2, 0, Value::Ref(old)).unwrap();
        assert_eq!(h.remset(), &[old]);
    }

    #[test]
    fn ref_array_stores_enroll_in_remset() {
        let mut h = tiny_gen_heap();
        let young = h.alloc_object(ClassId(0), 0).unwrap();
        // 20-element ref array exceeds the 64-byte nursery: tenured.
        let arr = h.alloc_array(ArrayKind::Ref, 20).unwrap();
        assert!(!h.is_nursery(arr));
        h.array_set(arr, 3, Value::Ref(young).to_raw()).unwrap();
        assert_eq!(h.remset(), &[arr]);
        // Int-array stores never enroll.
        let mut h2 = tiny_gen_heap();
        let iarr = h2.alloc_array(ArrayKind::Int, 20).unwrap();
        h2.array_set(iarr, 0, 42).unwrap();
        assert!(h2.remset().is_empty());
    }

    #[test]
    fn promotion_moves_survivors_and_keeps_handles() {
        let mut h = tiny_gen_heap();
        let keep = h.alloc_object(ClassId(3), 2).unwrap();
        let dead = h.alloc_object(ClassId(0), 1).unwrap();
        h.set_field(keep, 0, Value::Int(77)).unwrap();
        let live_before = h.stats().live_bytes;

        h.clear_marks();
        assert!(h.mark(keep).is_some());
        let (moves, freed, freed_bytes) = h.promote_survivors().unwrap();
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].handle, keep);
        assert!(moves[0].from < TENURED_BASE && moves[0].to >= TENURED_BASE);
        assert_eq!(freed, 1);
        assert!(freed_bytes >= 8);
        assert_eq!(h.stats().live_bytes, live_before - freed_bytes);
        // The handle still works and field values survived the move.
        assert_eq!(h.class_of(keep).unwrap(), ClassId(3));
        assert_eq!(h.get_field(keep, 0).unwrap(), Value::Int(77));
        assert!(h.get_field(dead, 0).is_err(), "dead handle not revived");
        assert!(!h.is_nursery(keep));
        // The nursery is empty again, and the dead handle is NOT
        // recycled: the next allocation gets a fresh slot index.
        let next = h.alloc_object(ClassId(0), 0).unwrap();
        assert!(h.is_nursery(next));
        assert!(next > dead, "generational mode never reuses handles");
    }

    #[test]
    fn compaction_repacks_tenured_space() {
        let mut h = tiny_gen_heap();
        // Three pretenured arrays; free the middle one.
        let a = h.alloc_array(ArrayKind::Int, 30).unwrap();
        let b = h.alloc_array(ArrayKind::Int, 30).unwrap();
        let c = h.alloc_array(ArrayKind::Int, 30).unwrap();
        assert!(!h.is_nursery(a) && !h.is_nursery(b) && !h.is_nursery(c));
        h.array_set(c, 7, 123).unwrap();

        h.clear_marks();
        h.mark(a);
        h.mark(c);
        let (moves, freed, _) = h.compact_all();
        assert_eq!(freed, 1);
        assert_eq!(moves.len(), 2);
        // Survivors are packed from the tenured base in slot order.
        assert_eq!(h.header_addr(a).unwrap(), TENURED_BASE);
        let a_aligned = (u64::from(ARRAY_HEADER + 4 * 30) + 7) & !7;
        assert_eq!(h.header_addr(c).unwrap(), TENURED_BASE + a_aligned);
        assert_eq!(h.array_get(c, 7).unwrap(), 123);
        assert!(h.array_get(b, 0).is_err());
    }

    #[test]
    fn reachable_digest_is_gc_schedule_invariant() {
        // Same program of allocations/stores on a legacy heap and on
        // a generational heap that promotes mid-way: the reachable
        // digest and count must agree, even though the generational
        // heap moved objects and swept garbage.
        let build = |h: &mut Heap| {
            let root = h.alloc_object(ClassId(1), 2).unwrap();
            let child = h.alloc_object(ClassId(2), 1).unwrap();
            let _garbage = h.alloc_array(ArrayKind::Int, 4).unwrap();
            h.set_field(root, 0, Value::Ref(child)).unwrap();
            h.set_field(child, 0, Value::Int(9)).unwrap();
            root
        };
        let mut legacy = Heap::new();
        let r1 = build(&mut legacy);

        let mut gener = tiny_gen_heap();
        let r2 = build(&mut gener);
        assert_eq!(r1, r2, "monotonic handles agree across layouts");
        // Collect: mark reachable, evacuate.
        gener.clear_marks();
        let mut work = vec![r2];
        while let Some(x) = work.pop() {
            if gener.is_nursery(x) {
                if let Some(children) = gener.mark(x) {
                    work.extend(children);
                }
            }
        }
        gener.promote_survivors().unwrap();

        assert_eq!(legacy.reachable_digest([r1]), gener.reachable_digest([r2]));
        assert_eq!(legacy.reachable_digest([r1]).1, 2);
        // The full digest, by contrast, sees the swept garbage slot.
        assert_ne!(legacy.digest(), gener.digest());
    }

    #[test]
    fn card_addresses_live_in_vm_data() {
        for addr in [
            layout::HEAP_BASE,
            TENURED_BASE,
            layout::HEAP_END,
            layout::VM_DATA_BASE, // static slots
        ] {
            let card = card_addr(addr);
            assert_eq!(
                jrt_trace::Region::classify(card),
                Some(jrt_trace::Region::VmData),
                "card for {addr:#x}"
            );
        }
        // Same card for neighbors, different cards across the shift.
        assert_eq!(
            card_addr(layout::HEAP_BASE),
            card_addr(layout::HEAP_BASE + 8)
        );
        assert_ne!(
            card_addr(layout::HEAP_BASE),
            card_addr(layout::HEAP_BASE + (1 << CARD_SHIFT))
        );
    }

    #[test]
    fn reset_clears_generational_state() {
        let mut h = tiny_gen_heap();
        let young = h.alloc_object(ClassId(0), 0).unwrap();
        let old = h.alloc_object(ClassId(0), 4).unwrap();
        let _pretenure = h.alloc_object(ClassId(0), 4).unwrap();
        h.set_field(old, 0, Value::Ref(young)).ok();
        h.reset();
        assert!(h.is_generational());
        assert!(h.remset().is_empty());
        assert!(h.take_gc_pending().is_none());
        assert_eq!(h.gen_stats().unwrap(), GenStats::default());
        // Cursors are back at the space bases.
        let a = h.alloc_object(ClassId(0), 0).unwrap();
        assert_eq!(h.header_addr(a).unwrap(), layout::HEAP_BASE);
    }
}
