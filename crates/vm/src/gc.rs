//! Garbage collection with trace emission.
//!
//! The paper defers the GC's architectural impact to future work; the
//! `gc_study` experiment closes that gap. Two collectors live here:
//!
//! * the **legacy stop-the-world mark-sweep** ([`collect`]) — the
//!   original growth-only design kept byte-identical for every
//!   pre-existing experiment (it is the [`GcConfig::Legacy`]
//!   default, and the paper-suite workloads never reach the
//!   24 MiB threshold that triggers it);
//! * the **generational copying collector** ([`minor_collect`] /
//!   [`major_collect`]) — minor collections mark the nursery from
//!   thread/static roots plus the remembered set, evacuate survivors
//!   into tenured space, and reset the nursery bump cursor; major
//!   collections mark the full heap and copy-compact tenured space.
//!
//! All collection work is emitted into the trace under
//! [`Phase::Gc`]: header loads and mark stores during marking, one
//! card-scan load per remembered-set entry, a load/store pair per 16
//! copied bytes during evacuation, and a forwarding store into the
//! handle table for every moved object. Emission is capped at
//! [`MAX_GC_EMISSION`] instructions per collection so a huge heap
//! cannot flood the trace — but heap accounting is exact regardless,
//! and a capped collection reports `truncated = true` so the VM can
//! count it instead of silently under-reporting trace work.
//!
//! [`GcConfig::Legacy`]: crate::GcConfig::Legacy

use crate::heap::{Heap, ObjectMove};
use crate::loader::Linker;
use crate::thread::ThreadState;
use jrt_trace::{layout, Addr, NativeInst, Phase, TraceSink};

const GC_TEXT: Addr = layout::VM_TEXT_BASE + 0x7_0000;
const GC_TEXT_SIZE: Addr = 0x2000;
/// Cap on emitted GC instructions per collection, so a large heap
/// cannot flood the trace.
const MAX_GC_EMISSION: u64 = 200_000;
/// Handle-table forwarding entries live here; a store to
/// `FORWARD_TABLE + (handle % FORWARD_SLOTS) * 4` models updating the
/// handle's indirection cell when its object moves.
const FORWARD_TABLE: Addr = layout::VM_DATA_BASE + 0x40_0000;
const FORWARD_SLOTS: Addr = 0x1000;
/// Evacuation copies are modeled as one load/store pair per this many
/// bytes (a doubleword-copy loop).
const COPY_CHUNK: u32 = 16;

/// Result of one collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct GcResult {
    /// Handles reclaimed.
    pub freed: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Trace instructions emitted.
    pub emitted: u64,
    /// Whether [`MAX_GC_EMISSION`] suppressed some trace emission.
    /// Heap accounting is exact either way.
    pub truncated: bool,
    /// Bytes copied by evacuation/compaction (zero for the legacy
    /// non-moving collector).
    pub copied_bytes: u64,
}

/// Capped [`Phase::Gc`] emission at a wrapping GC text pc.
struct GcEmitter<'a> {
    sink: &'a mut dyn TraceSink,
    pc: Addr,
    emitted: u64,
    truncated: bool,
}

impl<'a> GcEmitter<'a> {
    fn new(sink: &'a mut dyn TraceSink) -> Self {
        GcEmitter {
            sink,
            pc: GC_TEXT,
            emitted: 0,
            truncated: false,
        }
    }

    fn step_pc(&mut self) -> Addr {
        let p = self.pc;
        self.pc += 4;
        if self.pc >= GC_TEXT + GC_TEXT_SIZE {
            self.pc = GC_TEXT;
        }
        p
    }

    fn has_room(&mut self) -> bool {
        if self.emitted < MAX_GC_EMISSION {
            true
        } else {
            self.truncated = true;
            false
        }
    }

    fn load(&mut self, addr: Addr, width: u8, dst: u8) {
        if self.has_room() {
            let pc = self.step_pc();
            self.sink
                .accept(&NativeInst::load(pc, addr, width, Phase::Gc).with_dst(dst));
            self.emitted += 1;
        }
    }

    fn store(&mut self, addr: Addr, width: u8, src: u8) {
        if self.has_room() {
            let pc = self.step_pc();
            self.sink
                .accept(&NativeInst::store(pc, addr, width, Phase::Gc).with_srcs(src, None));
            self.emitted += 1;
        }
    }

    /// One load/store pair per [`COPY_CHUNK`] bytes of an object
    /// move, plus the forwarding store into the handle table.
    fn emit_move(&mut self, m: &ObjectMove) {
        let mut off = 0u64;
        while off < u64::from(m.bytes) {
            self.load(m.from + off, 8, 14);
            self.store(m.to + off, 8, 14);
            off += u64::from(COPY_CHUNK);
        }
        let slot = FORWARD_TABLE + (Addr::from(m.handle) % FORWARD_SLOTS) * 4;
        self.store(slot, 4, 14);
    }
}

fn gather_roots(threads: &[ThreadState], linker: &Linker) -> Vec<u32> {
    let mut work: Vec<u32> = Vec::new();
    for t in threads {
        work.extend(t.roots());
    }
    work.extend(linker.static_roots());
    work.extend(linker.class_objects());
    work
}

/// Runs a full stop-the-world mark-sweep collection (the legacy
/// non-moving collector).
pub(crate) fn collect(
    heap: &mut Heap,
    threads: &[ThreadState],
    linker: &Linker,
    sink: &mut dyn TraceSink,
) -> GcResult {
    let mut em = GcEmitter::new(sink);

    heap.clear_marks();
    let mut work = gather_roots(threads, linker);
    while let Some(h) = work.pop() {
        if let Some(children) = heap.mark(h) {
            // Header read + mark write for each newly marked node.
            if em.has_room() {
                if let Ok(addr) = heap.header_addr(h) {
                    em.load(addr, 4, 12);
                    em.store(addr + 4, 4, 12);
                }
            }
            work.extend(children);
        }
    }

    // Sweep: visit every live allocation, free the unmarked. The heap
    // mutation below is exact even when emission is capped.
    let live = heap.live_handles();
    for (_, addr) in &live {
        if !em.has_room() {
            break;
        }
        em.load(*addr, 4, 13);
    }
    let (freed, freed_bytes) = heap.sweep();
    for _ in 0..freed.len().min(1024) {
        em.store(layout::VM_DATA_BASE + 0x40_0000, 4, 0);
    }

    GcResult {
        freed: freed.len() as u64,
        freed_bytes,
        emitted: em.emitted,
        truncated: em.truncated,
        copied_bytes: 0,
    }
}

/// Runs a minor (nursery) collection: marks nursery objects reachable
/// from thread/static roots and from remembered-set containers,
/// evacuates survivors into tenured space, and resets the nursery.
///
/// Only nursery objects are traversed — tenured→nursery edges are
/// covered by the remembered set (the property `gc_equivalence.rs`
/// proves), so the cost of a minor collection scales with nursery
/// size, not heap size.
pub(crate) fn minor_collect(
    heap: &mut Heap,
    threads: &[ThreadState],
    linker: &Linker,
    sink: &mut dyn TraceSink,
) -> Result<GcResult, crate::heap::HeapError> {
    let mut em = GcEmitter::new(sink);

    heap.clear_marks();
    let mut work = gather_roots(threads, linker);

    // Remembered-set scan: one card-check load per container, then
    // its nursery referents join the root set.
    let remset: Vec<u32> = heap.remset().to_vec();
    for &container in &remset {
        if let Ok(addr) = heap.header_addr(container) {
            em.load(crate::heap::card_addr(addr), 1, 15);
        }
        work.extend(heap.refs_in(container));
    }

    while let Some(h) = work.pop() {
        if !heap.is_nursery(h) {
            continue;
        }
        if let Some(children) = heap.mark(h) {
            if em.has_room() {
                if let Ok(addr) = heap.header_addr(h) {
                    em.load(addr, 4, 12);
                    em.store(addr + 4, 4, 12);
                }
            }
            work.extend(children);
        }
    }

    let (moves, freed, freed_bytes) = heap.promote_survivors()?;
    let mut copied_bytes = 0u64;
    for m in &moves {
        copied_bytes += u64::from(m.bytes);
        em.emit_move(m);
    }

    Ok(GcResult {
        freed,
        freed_bytes,
        emitted: em.emitted,
        truncated: em.truncated,
        copied_bytes,
    })
}

/// Runs a major (full) collection: marks the whole heap from roots,
/// then copy-compacts every survivor into tenured space from the
/// tenured base. Every survivor is copied (and its handle-table cell
/// forwarded), which is what makes tenured fragmentation impossible.
pub(crate) fn major_collect(
    heap: &mut Heap,
    threads: &[ThreadState],
    linker: &Linker,
    sink: &mut dyn TraceSink,
) -> GcResult {
    let mut em = GcEmitter::new(sink);

    heap.clear_marks();
    let mut work = gather_roots(threads, linker);
    while let Some(h) = work.pop() {
        if let Some(children) = heap.mark(h) {
            if em.has_room() {
                if let Ok(addr) = heap.header_addr(h) {
                    em.load(addr, 4, 12);
                    em.store(addr + 4, 4, 12);
                }
            }
            work.extend(children);
        }
    }

    let (moves, freed, freed_bytes) = heap.compact_all();
    let mut copied_bytes = 0u64;
    for m in &moves {
        copied_bytes += u64::from(m.bytes);
        em.emit_move(m);
    }

    GcResult {
        freed,
        freed_bytes,
        emitted: em.emitted,
        truncated: em.truncated,
        copied_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GcConfig;
    use crate::heap::Value;
    use jrt_bytecode::{ClassAsm, ClassId, MethodAsm, Program};
    use jrt_trace::CountingSink;

    fn empty_linker() -> (Program, Linker) {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.ret();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").unwrap();
        let linker = Linker::new(p.num_classes());
        (p, linker)
    }

    fn thread_with_root(root: u32) -> ThreadState {
        let mut t = ThreadState::new(0);
        let def = jrt_bytecode::MethodDef {
            name: "m".into(),
            nargs: 0,
            ret: jrt_bytecode::RetKind::Void,
            max_locals: 2,
            max_stack: 2,
            code: vec![44],
            flags: jrt_bytecode::MethodFlags {
                is_static: true,
                ..Default::default()
            },
        };
        t.push_frame(
            jrt_bytecode::MethodId {
                class: ClassId(0),
                index: 0,
            },
            &def,
            vec![Value::Ref(root)],
        );
        t
    }

    #[test]
    fn unreferenced_objects_are_collected() {
        let (_p, linker) = empty_linker();
        let mut heap = Heap::new();
        let _garbage = heap.alloc_object(ClassId(0), 2).unwrap();
        let kept = heap.alloc_object(ClassId(0), 1).unwrap();

        let t = thread_with_root(kept);
        let mut sink = CountingSink::new();
        let r = collect(&mut heap, &[t], &linker, &mut sink);
        assert_eq!(r.freed, 1);
        assert!(r.freed_bytes >= 16);
        assert!(r.emitted > 0);
        assert!(!r.truncated);
        assert_eq!(r.copied_bytes, 0);
        assert_eq!(sink.phase(Phase::Gc), r.emitted);
        assert!(heap.get_field(kept, 0).is_ok());
    }

    #[test]
    fn transitively_reachable_survive() {
        let (_p, linker) = empty_linker();
        let mut heap = Heap::new();
        let a = heap.alloc_object(ClassId(0), 1).unwrap();
        let b = heap.alloc_object(ClassId(0), 1).unwrap();
        let c = heap.alloc_object(ClassId(0), 0).unwrap();
        heap.set_field(a, 0, Value::Ref(b)).unwrap();
        heap.set_field(b, 0, Value::Ref(c)).unwrap();

        let t = thread_with_root(a);
        let mut sink = CountingSink::new();
        let r = collect(&mut heap, &[t], &linker, &mut sink);
        assert_eq!(r.freed, 0);
        assert_eq!(heap.live_count(), 3);
    }

    fn gen_heap() -> Heap {
        Heap::with_config(GcConfig::Generational {
            nursery_bytes: 256,
            tenured_bytes: 1 << 20,
        })
    }

    #[test]
    fn minor_collection_evacuates_survivors_and_emits_copies() {
        let (_p, linker) = empty_linker();
        let mut heap = gen_heap();
        let root = heap.alloc_object(ClassId(1), 1).unwrap();
        let child = heap.alloc_object(ClassId(2), 0).unwrap();
        let _garbage = heap.alloc_array(jrt_bytecode::ArrayKind::Int, 8).unwrap();
        heap.set_field(root, 0, Value::Ref(child)).unwrap();

        let t = thread_with_root(root);
        let mut sink = CountingSink::new();
        let r = minor_collect(&mut heap, &[t], &linker, &mut sink).unwrap();
        assert_eq!(r.freed, 1, "the garbage array dies in the nursery");
        assert!(r.copied_bytes > 0);
        assert!(r.emitted > 0);
        assert_eq!(sink.phase(Phase::Gc), r.emitted);
        // Survivors moved to tenured space, handles intact.
        assert!(!heap.is_nursery(root) && !heap.is_nursery(child));
        assert_eq!(heap.get_field(root, 0).unwrap(), Value::Ref(child));
    }

    #[test]
    fn minor_collection_finds_roots_through_remset() {
        let (_p, linker) = empty_linker();
        let mut heap = gen_heap();
        // Tenured container (pretenured large array) → nursery child:
        // the child is reachable ONLY through the remembered set.
        let big = heap.alloc_array(jrt_bytecode::ArrayKind::Ref, 80).unwrap();
        assert!(!heap.is_nursery(big));
        let child = heap.alloc_object(ClassId(7), 0).unwrap();
        assert!(heap.is_nursery(child));
        heap.array_set(big, 5, Value::Ref(child).to_raw()).unwrap();
        assert_eq!(heap.remset(), &[big]);

        let t = thread_with_root(big);
        let mut sink = CountingSink::new();
        let r = minor_collect(&mut heap, &[t], &linker, &mut sink).unwrap();
        assert_eq!(r.freed, 0, "remset keeps the child alive");
        assert!(!heap.is_nursery(child), "child promoted");
        assert_eq!(heap.class_of(child).unwrap(), ClassId(7));
        assert!(heap.remset().is_empty(), "remset cleared after minor GC");
    }

    #[test]
    fn major_collection_compacts_and_forwards() {
        let (_p, linker) = empty_linker();
        let mut heap = gen_heap();
        let a = heap.alloc_array(jrt_bytecode::ArrayKind::Int, 80).unwrap();
        let b = heap.alloc_array(jrt_bytecode::ArrayKind::Int, 80).unwrap();
        let keep = heap.alloc_array(jrt_bytecode::ArrayKind::Int, 80).unwrap();
        assert!(!heap.is_nursery(a) && !heap.is_nursery(b) && !heap.is_nursery(keep));
        heap.array_set(keep, 3, 55).unwrap();
        let _ = (a, b); // unrooted below — garbage for the major to free

        let t = thread_with_root(keep);
        let mut sink = CountingSink::new();
        let r = major_collect(&mut heap, &[t], &linker, &mut sink);
        assert_eq!(r.freed, 2);
        assert!(r.copied_bytes > 0, "compaction copies every survivor");
        assert_eq!(sink.phase(Phase::Gc), r.emitted);
        assert_eq!(heap.array_get(keep, 3).unwrap(), 55);
        assert_eq!(
            heap.header_addr(keep).unwrap(),
            crate::heap::TENURED_BASE,
            "sole survivor packs to the tenured base"
        );
    }
}
