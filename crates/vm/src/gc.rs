//! Mark-sweep garbage collection with trace emission.
//!
//! The paper defers the GC's architectural impact to future work, but
//! a runtime needs one; ours is a simple stop-the-world mark-sweep
//! whose marking loads and sweeping stores are emitted into the trace
//! under [`Phase::Gc`] so its (modest) footprint is visible in the
//! cache studies rather than silently free.

use crate::heap::Heap;
use crate::loader::Linker;
use crate::thread::ThreadState;
use jrt_trace::{layout, Addr, NativeInst, Phase, TraceSink};

const GC_TEXT: Addr = layout::VM_TEXT_BASE + 0x7_0000;
const GC_TEXT_SIZE: Addr = 0x2000;
/// Cap on emitted GC instructions per collection, so a large heap
/// cannot flood the trace.
const MAX_GC_EMISSION: u64 = 200_000;

/// Result of one collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct GcResult {
    /// Handles reclaimed.
    pub freed: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Trace instructions emitted.
    pub emitted: u64,
}

/// Runs a full stop-the-world mark-sweep collection.
pub(crate) fn collect(
    heap: &mut Heap,
    threads: &[ThreadState],
    linker: &Linker,
    sink: &mut dyn TraceSink,
) -> GcResult {
    let mut emitted = 0u64;
    let mut pc = GC_TEXT;
    let step_pc = |pc: &mut Addr| {
        let p = *pc;
        *pc += 4;
        if *pc >= GC_TEXT + GC_TEXT_SIZE {
            *pc = GC_TEXT;
        }
        p
    };

    heap.clear_marks();

    // Mark from roots.
    let mut work: Vec<u32> = Vec::new();
    for t in threads {
        work.extend(t.roots());
    }
    work.extend(linker.static_roots());
    work.extend(linker.class_objects());

    while let Some(h) = work.pop() {
        if let Some(children) = heap.mark(h) {
            if emitted < MAX_GC_EMISSION {
                // Header read + mark write for each newly marked node.
                if let Ok(addr) = heap.header_addr(h) {
                    sink.accept(
                        &NativeInst::load(step_pc(&mut pc), addr, 4, Phase::Gc).with_dst(12),
                    );
                    sink.accept(
                        &NativeInst::store(step_pc(&mut pc), addr + 4, 4, Phase::Gc)
                            .with_srcs(12, None),
                    );
                    emitted += 2;
                }
            }
            work.extend(children);
        }
    }

    // Sweep: visit every live allocation, free the unmarked.
    let live = heap.live_handles();
    for (_, addr) in &live {
        if emitted >= MAX_GC_EMISSION {
            break;
        }
        sink.accept(&NativeInst::load(step_pc(&mut pc), *addr, 4, Phase::Gc).with_dst(13));
        emitted += 1;
    }
    let (freed, freed_bytes) = heap.sweep();
    for _ in 0..freed.len().min(1024) {
        sink.accept(&NativeInst::store(
            step_pc(&mut pc),
            layout::VM_DATA_BASE + 0x40_0000,
            4,
            Phase::Gc,
        ));
        emitted += 1;
    }

    GcResult {
        freed: freed.len() as u64,
        freed_bytes,
        emitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Value;
    use jrt_bytecode::{ClassAsm, ClassId, MethodAsm, Program};
    use jrt_trace::CountingSink;

    fn empty_linker() -> (Program, Linker) {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.ret();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").unwrap();
        let linker = Linker::new(p.num_classes());
        (p, linker)
    }

    #[test]
    fn unreferenced_objects_are_collected() {
        let (_p, linker) = empty_linker();
        let mut heap = Heap::new();
        let _garbage = heap.alloc_object(ClassId(0), 2).unwrap();
        let kept = heap.alloc_object(ClassId(0), 1).unwrap();

        let mut t = ThreadState::new(0);
        let def = jrt_bytecode::MethodDef {
            name: "m".into(),
            nargs: 0,
            ret: jrt_bytecode::RetKind::Void,
            max_locals: 2,
            max_stack: 2,
            code: vec![44],
            flags: jrt_bytecode::MethodFlags {
                is_static: true,
                ..Default::default()
            },
        };
        t.push_frame(
            jrt_bytecode::MethodId {
                class: ClassId(0),
                index: 0,
            },
            &def,
            vec![Value::Ref(kept)],
        );

        let mut sink = CountingSink::new();
        let r = collect(&mut heap, &[t], &linker, &mut sink);
        assert_eq!(r.freed, 1);
        assert!(r.freed_bytes >= 16);
        assert!(r.emitted > 0);
        assert_eq!(sink.phase(Phase::Gc), r.emitted);
        assert!(heap.get_field(kept, 0).is_ok());
    }

    #[test]
    fn transitively_reachable_survive() {
        let (_p, linker) = empty_linker();
        let mut heap = Heap::new();
        let a = heap.alloc_object(ClassId(0), 1).unwrap();
        let b = heap.alloc_object(ClassId(0), 1).unwrap();
        let c = heap.alloc_object(ClassId(0), 0).unwrap();
        heap.set_field(a, 0, Value::Ref(b)).unwrap();
        heap.set_field(b, 0, Value::Ref(c)).unwrap();

        let mut t = ThreadState::new(0);
        let def = jrt_bytecode::MethodDef {
            name: "m".into(),
            nargs: 0,
            ret: jrt_bytecode::RetKind::Void,
            max_locals: 1,
            max_stack: 1,
            code: vec![44],
            flags: jrt_bytecode::MethodFlags {
                is_static: true,
                ..Default::default()
            },
        };
        t.push_frame(
            jrt_bytecode::MethodId {
                class: ClassId(0),
                index: 0,
            },
            &def,
            vec![Value::Ref(a)],
        );
        let mut sink = CountingSink::new();
        let r = collect(&mut heap, &[t], &linker, &mut sink);
        assert_eq!(r.freed, 0);
        assert_eq!(heap.live_count(), 3);
    }
}
