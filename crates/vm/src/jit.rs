//! The JIT translator, managed code cache, and call-site
//! devirtualization.
//!
//! Translation happens in the critical path of execution, exactly as
//! the paper describes for Kaffe: the first invocation of a method
//! (under the configured [`JitPolicy`](crate::JitPolicy)) walks its
//! bytecode, and for every bytecode
//!
//! * reads the bytecode bytes (data loads from the class area),
//! * runs the per-opcode code-generation routine (the translator's
//!   own text — heavily reused across bytecodes, which the paper
//!   credits for the translate portion's *better* I-cache locality),
//! * writes the generated native instructions into the code cache
//!   (cold **write misses** — the dominant data-cache cost of
//!   translation the paper isolates in Figure 5).
//!
//! Installed code lives in a [`CodeCacheManager`]: a bounded arena
//! with pluggable eviction and a sharing scope. Evicting an installed
//! method drops its [`CompiledMethod`] record, so the next execution
//! falls back to interpretation (and possibly re-translation — whose
//! cost re-enters the Translate phase of the trace). The optimizing
//! tier re-translates hot methods into denser code (fewer generated
//! instructions, more register-allocated locals) at a higher
//! translation cost.

use crate::config::ExecMode;
use jrt_bytecode::{MethodDef, MethodId, Op};
use jrt_codecache::{tier, CacheScope, CodeCacheConfig, CodeCacheManager, CodeCacheStats};
use jrt_codecache::{ProfileTable, TIER_OPT};
use jrt_ir::{lower, IrMethod, PcPlan};
use jrt_trace::{layout, Addr, IdHashMap, NativeInst, Phase, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-call-site receiver profile used for devirtualization: the JIT
/// emits a direct call while a site stays monomorphic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum CallSite {
    /// Never executed.
    #[default]
    Unseen,
    /// One receiver method observed.
    Mono(MethodId),
    /// Multiple receiver methods observed.
    Poly,
}

impl CallSite {
    /// Records an observed target; returns the updated state.
    pub(crate) fn observe(self, target: MethodId) -> CallSite {
        match self {
            CallSite::Unseen => CallSite::Mono(target),
            CallSite::Mono(t) if t == target => self,
            _ => CallSite::Poly,
        }
    }
}

/// A call site's view of its callee — everything [`JitState::ensure_compiled`]
/// needs to key, tier, translate, and install the method.
#[derive(Debug, Clone, Copy)]
pub struct CalleeSite<'a> {
    /// The method being invoked.
    pub callee: MethodId,
    /// The invoking thread (the cache key under `CacheScope::PerThread`).
    pub tid: u16,
    /// The callee's bytecode definition.
    pub def: &'a MethodDef,
    /// Where the bytecode image lives in the class area.
    pub code_addr: Addr,
}

/// Locals kept in registers by the baseline translation tier.
pub(crate) const TIER1_REG_LOCALS: usize = 6;
/// Locals kept in registers by the optimizing tier.
const TIER2_REG_LOCALS: usize = 12;
/// Decode/bookkeeping instructions per bytecode, baseline tier.
const TIER1_BOOKKEEPING: u8 = 10;
/// Decode/bookkeeping instructions per bytecode, optimizing tier
/// (extra analysis: liveness, better register assignment).
const TIER2_BOOKKEEPING: u8 = 16;

/// A translated method installed in the code cache.
#[derive(Debug, Clone)]
pub(crate) struct CompiledMethod {
    /// Entry address in the code cache.
    pub entry: Addr,
    /// Installed native code size in bytes.
    #[cfg_attr(not(test), allow(dead_code))]
    pub code_bytes: u32,
    /// Translation tier this code was generated at.
    pub tier: u8,
    /// Locals the generated code keeps in registers.
    pub reg_locals: usize,
    /// Bytecode offset → installed native address.
    op_addr: HashMap<u32, Addr>,
    /// Pre-decoded instructions: offset → (op, encoded length).
    pub ops: HashMap<u32, (Op, u32)>,
}

impl CompiledMethod {
    /// Native address of the code generated for the bytecode at
    /// `pc`. Offsets between instructions map to the following
    /// instruction's address.
    pub fn addr(&self, pc: u32) -> Addr {
        self.op_addr.get(&pc).copied().unwrap_or(self.entry)
    }
}

/// Number of native instructions the translator generates for one
/// bytecode (static code size; a naive early JIT emits bulky
/// sequences).
fn gen_insts(op: &Op) -> u32 {
    match op {
        Op::Nop => 1,
        Op::IConst(_) | Op::AConstNull => 2, // sethi + or
        Op::ILoad(n) | Op::IStore(n) | Op::ALoad(n) | Op::AStore(n) => {
            if usize::from(*n) < 6 {
                1
            } else {
                2
            }
        }
        Op::Pop | Op::Dup | Op::DupX1 | Op::Swap => 1,
        Op::IAdd | Op::ISub | Op::IAnd | Op::IOr | Op::IXor | Op::IShl | Op::IShr | Op::IUshr => 1,
        Op::IMul => 2,
        Op::IDiv | Op::IRem => 4, // zero check + divide sequence
        Op::INeg => 1,
        Op::IInc(_, _) => 2,
        Op::If(_, _) | Op::IfNull(_) | Op::IfNonNull(_) => 2,
        Op::IfICmp(_, _) | Op::IfACmpEq(_) | Op::IfACmpNe(_) => 2,
        Op::Goto(_) => 1,
        Op::TableSwitch { targets, .. } => 4 + targets.len() as u32,
        Op::New(_) => 8,
        Op::GetField(_) => 3,
        Op::PutField(_) => 3,
        Op::GetStatic(_) => 2,
        Op::PutStatic(_) => 2,
        Op::NewArray(_) => 8,
        Op::ArrayLength => 2,
        Op::ArrLoad(_) => 4,
        Op::ArrStore(_) => 5,
        Op::InvokeStatic(_) | Op::InvokeSpecial(_) => 6,
        Op::InvokeVirtual(_) => 8,
        Op::Return | Op::IReturn | Op::AReturn => 3,
        Op::MonitorEnter | Op::MonitorExit => 6,
    }
}

/// Generated-instruction count at a given tier: the optimizing tier
/// emits denser code (about two thirds of the baseline sequence).
fn gen_insts_at(op: &Op, tier: u8) -> u32 {
    let n = gen_insts(op);
    if tier >= TIER_OPT {
        (n * 2 / 3).max(1)
    } else {
        n
    }
}

const TRANSLATOR_STRIDE: Addr = 0x200;
const STUB_REGION_END: Addr = layout::CODE_CACHE_BASE + 0x1_0000;
const CODE_REGION_BASE: Addr = layout::CODE_CACHE_BASE + 0x10_0000;
/// Translator-text address of the code-cache manager's eviction
/// routine (past the per-opcode codegen routines).
const EVICTOR_ROUTINE: Addr = layout::TRANSLATOR_TEXT_BASE + 0x2_0000;
/// Translator-text address of the stack→register lowering pass
/// (abstract interpretation, folding, fusion).
const LOWERING_ROUTINE: Addr = layout::TRANSLATOR_TEXT_BASE + 0x3_0000;
/// Base of the simulated IR buffer: every lowered method's packed IR
/// words live here (VM data), and the IR interpreter's dispatch
/// fetches them as data loads.
const IR_BUFFER_BASE: Addr = layout::VM_DATA_BASE + 0x100_0000;

/// A method lowered to register IR, with its packed words placed in
/// the simulated IR buffer.
#[derive(Debug)]
pub(crate) struct LoweredMethod {
    /// The lowering result: per-pc plans, typed IR instructions, and
    /// pass statistics.
    pub ir: IrMethod,
    /// Simulated base address of this method's packed IR words.
    pub base: Addr,
}

/// Register-IR tier state: one lowering per method (never evicted —
/// the IR buffer is data, not code-cache real estate), plus the IR
/// interpreter's dispatch counter.
#[derive(Debug)]
pub(crate) struct IrState {
    /// Lowered methods, each lowered exactly once per VM. Keyed like
    /// the per-VM cache key: the lookup is on the IR interpreter's
    /// per-bytecode path, where the id hasher beats SipHash.
    lowered: IdHashMap<u64, Arc<LoweredMethod>>,
    /// Bump allocator over the IR buffer.
    next_addr: Addr,
    /// IR instructions dispatched by the IR interpreter (`Exec` pcs
    /// of interpreted frames). The register-IR headline number: at
    /// most one dispatch per bytecode, strictly fewer with fusion.
    pub dispatches: u64,
    /// Methods lowered.
    pub methods_lowered: u32,
}

/// The [`IrState::lowered`] key for `mid` (same minting as the
/// per-VM code-cache key).
fn ir_key(mid: MethodId) -> u64 {
    (u64::from(mid.class.0) << 24) | u64::from(mid.index)
}

impl IrState {
    fn new() -> Self {
        IrState {
            lowered: IdHashMap::default(),
            next_addr: IR_BUFFER_BASE,
            dispatches: 0,
            methods_lowered: 0,
        }
    }
}

/// Translator state: the managed code cache and per-method
/// compilation records.
#[derive(Debug)]
pub(crate) struct JitState {
    mgr: CodeCacheManager,
    scope: CacheScope,
    /// Compiled records keyed by the manager's cache key (scope
    /// dependent; see [`JitState::key_for`]).
    // Cache keys and content ids are internally minted integers, so
    // the shared id hasher beats SipHash here.
    compiled: IdHashMap<u64, Arc<CompiledMethod>>,
    /// Content interning for the shared scope: bytecode bytes → id.
    content_ids: HashMap<Vec<u8>, u64>,
    /// Cached method → content id (shared scope only).
    content_of: HashMap<MethodId, u64>,
    /// Per-call-site devirtualization state, keyed by
    /// (caller, bytecode offset).
    call_sites: HashMap<(MethodId, u32), CallSite>,
    /// Translator work-buffer high-water mark (footprint).
    pub translator_buffer_bytes: u64,
    /// Methods translated (counting re-translations and upgrades).
    pub methods_translated: u32,
    /// Total translator instructions emitted (sum of `T_i`).
    pub translate_insts: u64,
    /// The slice of [`JitState::translate_insts`] emitted at the
    /// optimizing tier. `translate_insts - opt_translate_insts` is the
    /// baseline-tier translate work, which a tiered policy shares with
    /// the translate-on-first-invocation JIT — the perf oracle's
    /// tiered-baseline invariant compares exactly that slice.
    pub opt_translate_insts: u64,
    /// Re-translations at the optimizing tier.
    pub tier2_recompiles: u32,
    /// Register-IR tier state (lowered methods, dispatch counter).
    pub ir: IrState,
}

impl JitState {
    /// Creates a code cache under `config`, allocating out of the
    /// simulated `Region::CodeCache` range above the stub region.
    pub fn new(config: CodeCacheConfig) -> Self {
        JitState {
            scope: config.scope,
            mgr: CodeCacheManager::new(config, CODE_REGION_BASE, layout::CODE_CACHE_END + 1),
            compiled: IdHashMap::default(),
            content_ids: HashMap::new(),
            content_of: HashMap::new(),
            call_sites: HashMap::new(),
            translator_buffer_bytes: 0,
            methods_translated: 0,
            translate_insts: 0,
            opt_translate_insts: 0,
            tier2_recompiles: 0,
            ir: IrState::new(),
        }
    }

    /// Cache key for `(mid, tid)` under the configured scope. Shared
    /// scope interns the method's bytecode bytes so byte-identical
    /// bodies collapse to one key (ShareJIT install-once dedup).
    fn key_for(&mut self, mid: MethodId, tid: u16, def: &MethodDef) -> u64 {
        match self.scope {
            CacheScope::PerVm => (u64::from(mid.class.0) << 24) | u64::from(mid.index),
            CacheScope::PerThread => {
                (1 << 63)
                    | (u64::from(tid) << 46)
                    | (u64::from(mid.class.0) << 24)
                    | u64::from(mid.index)
            }
            CacheScope::Shared => {
                if let Some(&id) = self.content_of.get(&mid) {
                    return (1 << 62) | id;
                }
                // First time this method is considered: intern its
                // bytecode. A hit on already-interned content is the
                // ShareJIT dedup event the manager's stats report.
                let (id, dedup) = match self.content_ids.get(&def.code) {
                    Some(&id) => (id, true),
                    None => {
                        let next = self.content_ids.len() as u64;
                        self.content_ids.insert(def.code.clone(), next);
                        (next, false)
                    }
                };
                self.mgr.note_shared_lookup(dedup);
                self.content_of.insert(mid, id);
                (1 << 62) | id
            }
        }
    }

    /// Resets per-run and program-relative state while keeping the
    /// shared code cache warm: installed segments, their compiled
    /// records, and the content-id interning table survive, so a
    /// later job whose method bodies are byte-identical (same
    /// program, or another tenant's copy of it) resolves to the
    /// existing translation without paying for its own. Everything
    /// keyed by [`MethodId`] — the method→content map, call-site
    /// devirtualization state, lowered IR — is dropped, because ids
    /// name methods of one specific program. Only meaningful under
    /// [`CacheScope::Shared`]; per-VM and per-thread caches must be
    /// rebuilt from scratch instead (their keys are method ids too).
    pub fn reset_for_reuse(&mut self) {
        debug_assert_eq!(self.scope, CacheScope::Shared);
        self.content_of.clear();
        self.call_sites.clear();
        self.translator_buffer_bytes = 0;
        self.methods_translated = 0;
        self.translate_insts = 0;
        self.opt_translate_insts = 0;
        self.tier2_recompiles = 0;
        self.ir = IrState::new();
    }

    /// Read-only key lookup: `None` if the shared-scope content id
    /// has not been interned yet (the method was never considered for
    /// translation).
    fn key_lookup(&self, mid: MethodId, tid: u16) -> Option<u64> {
        match self.scope {
            CacheScope::PerVm => Some((u64::from(mid.class.0) << 24) | u64::from(mid.index)),
            CacheScope::PerThread => Some(
                (1 << 63)
                    | (u64::from(tid) << 46)
                    | (u64::from(mid.class.0) << 24)
                    | u64::from(mid.index),
            ),
            CacheScope::Shared => self.content_of.get(&mid).map(|&id| (1 << 62) | id),
        }
    }

    /// Whether `(mid, tid)` currently resolves to installed code.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_compiled(&self, mid: MethodId, tid: u16) -> bool {
        self.key_lookup(mid, tid)
            .is_some_and(|k| self.compiled.contains_key(&k))
    }

    /// The compiled record for `(mid, tid)`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn compiled(&self, mid: MethodId, tid: u16) -> Option<&Arc<CompiledMethod>> {
        self.compiled.get(&self.key_lookup(mid, tid)?)
    }

    /// Cheap shared handle to the compiled record for a frame (lets
    /// the caller keep the record while mutating the rest of the JIT
    /// state). `None` after eviction — the frame must demote to
    /// interpretation.
    pub fn compiled_for_frame(&self, mid: MethodId, tid: u16) -> Option<Arc<CompiledMethod>> {
        self.compiled.get(&self.key_lookup(mid, tid)?).cloned()
    }

    /// Records an observed receiver at a virtual call site and
    /// returns the site's updated state.
    pub fn observe_call_site(&mut self, caller: MethodId, pc: u32, target: MethodId) -> CallSite {
        let slot = self.call_sites.entry((caller, pc)).or_default();
        *slot = slot.observe(target);
        *slot
    }

    /// Native entry address used by calls to `mid` from thread `tid`:
    /// the installed entry when translated, a (deterministic) stub
    /// otherwise.
    pub fn entry_addr(&self, mid: MethodId, tid: u16) -> Addr {
        if let Some(cm) = self
            .key_lookup(mid, tid)
            .and_then(|k| self.compiled.get(&k))
        {
            return cm.entry;
        }
        let key = (u64::from(mid.class.0) << 20) ^ u64::from(mid.index);
        layout::CODE_CACHE_BASE + (key * 16) % (STUB_REGION_END - layout::CODE_CACHE_BASE)
    }

    /// Live (post-eviction) code-cache bytes — the Table 1 footprint.
    pub fn live_bytes(&self) -> u64 {
        self.mgr.live_bytes()
    }

    /// Cumulative code bytes ever installed (the historical
    /// append-only figure).
    pub fn ever_bytes(&self) -> u64 {
        self.mgr.ever_bytes()
    }

    /// The manager's lifetime counters.
    pub fn cache_stats(&self) -> CodeCacheStats {
        self.mgr.stats()
    }

    /// The single policy decision point shared by invokes and thread
    /// starts: decides the tier for the callee described by `site`,
    /// translates or upgrades if needed (charging `T_i` to the
    /// profile), and returns whether the callee should run translated
    /// code.
    pub fn ensure_compiled(
        &mut self,
        mode: &ExecMode,
        profile: &mut ProfileTable,
        site: CalleeSite<'_>,
        sink: &mut dyn TraceSink,
    ) -> bool {
        let CalleeSite {
            callee,
            tid,
            def,
            code_addr,
        } = site;
        let (policy, ir) = match mode {
            ExecMode::Interp => return false,
            ExecMode::Jit(policy) => (policy, None),
            ExecMode::IrInterp => {
                // Lower once; the IR interpreter runs the method.
                self.ensure_lowered(callee, def, code_addr, profile, sink);
                return false;
            }
            ExecMode::IrJit(policy) => {
                let lm = self.ensure_lowered(callee, def, code_addr, profile, sink);
                (policy, Some(lm))
            }
        };
        let key = self.key_for(callee, tid, def);
        let compiled_tier = self.compiled.get(&key).map(|cm| cm.tier);
        let Some(want) = tier::decide(policy, callee, profile.get(callee), compiled_tier) else {
            return false;
        };
        match compiled_tier {
            Some(have) if have >= want => {
                self.mgr.touch(key);
                true
            }
            have => {
                if have.is_some() {
                    // Tier upgrade: release the old install, then
                    // re-translate at the hotter tier.
                    self.mgr.remove(key);
                    self.compiled.remove(&key);
                    self.tier2_recompiles += 1;
                }
                let t = match &ir {
                    Some(lm) => self.translate_ir_keyed(key, def, want, lm, sink),
                    None => self.translate_keyed(key, def, code_addr, want, sink),
                };
                match t {
                    Some(t) => {
                        profile.get_mut(callee).translate_cycles += t;
                        true
                    }
                    // Install failure (method bigger than the cache):
                    // pinned to interpretation.
                    None => false,
                }
            }
        }
    }

    /// The lowered-IR record for `mid`, if the method has been
    /// lowered (always, in IR modes, by the time a frame runs it).
    /// Borrowed, not cloned: this sits on the IR interpreter's
    /// per-bytecode path.
    pub fn lowered(&self, mid: MethodId) -> Option<&Arc<LoweredMethod>> {
        self.ir.lowered.get(&ir_key(mid))
    }

    /// Lowers `mid` to register IR if it has not been lowered yet,
    /// emitting the lowering pass's trace (bytecode reads + abstract
    /// interpretation in translator text, packed-IR-word stores into
    /// the IR buffer) as Translate-phase work charged to the method's
    /// profile, like translation proper.
    fn ensure_lowered(
        &mut self,
        mid: MethodId,
        def: &MethodDef,
        code_addr: Addr,
        profile: &mut ProfileTable,
        sink: &mut dyn TraceSink,
    ) -> Arc<LoweredMethod> {
        if let Some(lm) = self.ir.lowered.get(&ir_key(mid)) {
            return Arc::clone(lm);
        }
        let ir = lower(&def.code).expect("verified code lowers");
        let mut emitted = 0u64;
        let mut emit = |i: NativeInst, emitted: &mut u64| {
            sink.accept(&i);
            *emitted += 1;
        };
        // One pass over the bytecode: read each instruction from the
        // class area and run the abstract-interpretation bookkeeping
        // (stack map, folding, fusion window).
        let mut pc = 0usize;
        while pc < def.code.len() {
            let (_, len) = Op::decode(&def.code, pc).expect("verified code decodes");
            emit(
                NativeInst::load(
                    LOWERING_ROUTINE,
                    code_addr + u64::from(pc as u32),
                    4,
                    Phase::Translate,
                )
                .with_dst(4),
                &mut emitted,
            );
            for k in 0..3u64 {
                emit(
                    NativeInst::alu(LOWERING_ROUTINE + 4 + 4 * k, Phase::Translate)
                        .with_dst(16 + k as u8),
                    &mut emitted,
                );
            }
            pc += len;
        }
        // Pack the IR words into the IR buffer: data stores, not
        // code-cache installs — the IR interpreter fetches these as
        // data, so lowering never pays compulsory I-cache misses.
        let base = self.ir.next_addr;
        let words = u64::from(ir.total_words());
        for w in 0..words {
            emit(
                NativeInst::store(LOWERING_ROUTINE + 0x400, base + 4 * w, 4, Phase::Translate)
                    .with_srcs(16, None),
                &mut emitted,
            );
        }
        self.ir.next_addr = (base + 4 * words + 63) & !63;
        self.ir.methods_lowered += 1;
        self.translate_insts += emitted;
        profile.get_mut(mid).translate_cycles += emitted;
        let lm = Arc::new(LoweredMethod { ir, base });
        self.ir.lowered.insert(ir_key(mid), Arc::clone(&lm));
        lm
    }

    /// Translates `def` (whose bytecode image lives at `code_addr`)
    /// at `tier`, emitting the translation trace (including eviction
    /// bookkeeping for any victims) and installing the result under
    /// `key`. Returns the number of translator instructions emitted
    /// (`T_i` in the paper's cost model), or `None` if the method
    /// cannot fit in the cache.
    fn translate_keyed(
        &mut self,
        key: u64,
        def: &MethodDef,
        code_addr: Addr,
        tier: u8,
        sink: &mut dyn TraceSink,
    ) -> Option<u64> {
        assert!(!self.compiled.contains_key(&key), "method translated twice");
        assert!(!def.flags.is_native, "native methods are not translated");
        let bookkeeping = if tier >= TIER_OPT {
            TIER2_BOOKKEEPING
        } else {
            TIER1_BOOKKEEPING
        };

        // Pre-pass: decode and size the generated code, so the
        // manager can place (and make room for) the segment before
        // the first store is emitted.
        let mut decoded = Vec::new();
        let mut total_gen = 0u64;
        let mut pc = 0usize;
        while pc < def.code.len() {
            let (op, len) = Op::decode(&def.code, pc).expect("verified code decodes");
            total_gen += u64::from(gen_insts_at(&op, tier));
            decoded.push((pc as u32, op, len as u32));
            pc += len;
        }
        let code_bytes = 4 * total_gen;

        let outcome = self.mgr.install(key, code_bytes);
        let mut emitted = self.evict_victims(&outcome.evicted, sink);
        let Some(entry) = outcome.entry else {
            // Failed install: the eviction bookkeeping above still ran
            // (and was emitted to the sink), so it must count as
            // translator work — counters and the Translate-phase event
            // stream stay equal even on the failure path.
            self.translate_insts += emitted;
            if tier >= TIER_OPT {
                self.opt_translate_insts += emitted;
            }
            return None;
        };
        let mut install = entry;

        let mut op_addr = HashMap::new();
        let mut ops = HashMap::new();
        for (pc, op, len) in decoded {
            let opcode = op.dispatch_index();
            // The per-opcode code-generation routine: high code reuse
            // across bytecodes of the same kind.
            let routine = layout::TRANSLATOR_TEXT_BASE + Addr::from(opcode) * TRANSLATOR_STRIDE;
            let mut tpc = routine;
            let mut emit = |i: NativeInst, emitted: &mut u64| {
                sink.accept(&i);
                *emitted += 1;
            };

            // Read the bytecode (and operands) from the class area.
            for k in 0..len.div_ceil(4) {
                emit(
                    NativeInst::load(
                        tpc,
                        code_addr + u64::from(pc) + u64::from(4 * k),
                        4,
                        Phase::Translate,
                    )
                    .with_dst(4),
                    &mut emitted,
                );
                tpc += 4;
            }
            // Decode / stack-simulation / CFG bookkeeping. The cost
            // is calibrated so translating a bytecode costs slightly
            // more than one interpretation of it — which is what makes
            // the paper's oracle (Figure 1) worth only 10-15%. The
            // optimizing tier does more analysis per bytecode.
            for k in 0..bookkeeping {
                // Mostly independent bookkeeping (separate fields of
                // the translator's state), so the emission loop has
                // instruction-level parallelism like real compilers.
                emit(
                    NativeInst::alu(tpc, Phase::Translate).with_dst(16 + (k & 7)),
                    &mut emitted,
                );
                tpc += 4;
            }
            // Code-generation table lookups.
            emit(
                NativeInst::load(
                    tpc,
                    layout::VM_DATA_BASE + Addr::from(opcode) * 64,
                    4,
                    Phase::Translate,
                )
                .with_dst(6),
                &mut emitted,
            );
            tpc += 4;
            emit(
                NativeInst::load(
                    tpc,
                    layout::VM_DATA_BASE + 0x4000 + Addr::from(opcode) * 32,
                    4,
                    Phase::Translate,
                )
                .with_dst(6),
                &mut emitted,
            );
            tpc += 4;

            // Generate and install the native instructions: the
            // stores into the code cache are the compulsory write
            // misses of Figure 5.
            op_addr.insert(pc, install);
            let n = gen_insts_at(&op, tier);
            for k in 0..n {
                let reg = 24 + (k & 7) as u8;
                emit(
                    NativeInst::alu(tpc, Phase::Translate)
                        .with_dst(reg)
                        .with_srcs(6, None),
                    &mut emitted,
                );
                tpc += 4;
                emit(
                    NativeInst::store(tpc, install, 4, Phase::Translate).with_srcs(reg, None),
                    &mut emitted,
                );
                tpc += 4;
                install += 4;
            }

            ops.insert(pc, (op, len));
        }

        let code_bytes = (install - entry) as u32;
        self.translator_buffer_bytes = self
            .translator_buffer_bytes
            .max(4 * u64::from(code_bytes) / 3 + 256);
        self.methods_translated += 1;
        self.translate_insts += emitted;
        if tier >= TIER_OPT {
            self.opt_translate_insts += emitted;
        }

        self.compiled.insert(
            key,
            Arc::new(CompiledMethod {
                entry,
                code_bytes,
                tier,
                reg_locals: if tier >= TIER_OPT {
                    TIER2_REG_LOCALS
                } else {
                    TIER1_REG_LOCALS
                },
                op_addr,
                ops,
            }),
        );
        Some(emitted)
    }

    /// Eviction bookkeeping shared by both translators: the manager
    /// walks its segment table (VM data) and unlinks each victim —
    /// runtime work that lands in the Translate phase, exactly where
    /// re-translation cost should show up. Drops the victims'
    /// compiled records and returns the instruction count emitted.
    fn evict_victims(&mut self, evicted: &[(u64, Addr)], sink: &mut dyn TraceSink) -> u64 {
        let mut emitted = 0u64;
        for (victim, victim_entry) in evicted {
            self.compiled.remove(victim);
            let tag = victim_entry & 0xFFFF;
            let seq = [
                NativeInst::alu(EVICTOR_ROUTINE, Phase::Translate).with_dst(20),
                NativeInst::load(
                    EVICTOR_ROUTINE + 4,
                    layout::VM_DATA_BASE + 0x8000 + tag,
                    4,
                    Phase::Translate,
                )
                .with_dst(21),
                NativeInst::alu(EVICTOR_ROUTINE + 8, Phase::Translate)
                    .with_dst(22)
                    .with_srcs(21, None),
                NativeInst::store(
                    EVICTOR_ROUTINE + 12,
                    layout::VM_DATA_BASE + 0x8000 + tag,
                    4,
                    Phase::Translate,
                )
                .with_srcs(22, None),
            ];
            for i in seq {
                sink.accept(&i);
                emitted += 1;
            }
        }
        emitted
    }

    /// Translates from the lowered register IR at `tier`: like
    /// [`JitState::translate_keyed`], but the generator walks the IR
    /// plan instead of raw bytecode. Only [`PcPlan::Exec`] pcs run
    /// the per-opcode codegen routine (reading packed IR words from
    /// the IR buffer instead of re-decoding bytecode); covered and
    /// elided pcs cost one cursor-advance instruction and install
    /// nothing — their work was fused into a neighbour's sequence.
    /// The result is denser installed code from a cheaper pass.
    fn translate_ir_keyed(
        &mut self,
        key: u64,
        def: &MethodDef,
        tier: u8,
        lm: &LoweredMethod,
        sink: &mut dyn TraceSink,
    ) -> Option<u64> {
        assert!(!self.compiled.contains_key(&key), "method translated twice");
        assert!(!def.flags.is_native, "native methods are not translated");
        let bookkeeping = if tier >= TIER_OPT {
            TIER2_BOOKKEEPING
        } else {
            TIER1_BOOKKEEPING
        };

        // Pre-pass: decode and size. Only Exec pcs generate code.
        let mut decoded = Vec::new();
        let mut total_gen = 0u64;
        let mut pc = 0usize;
        while pc < def.code.len() {
            let (op, len) = Op::decode(&def.code, pc).expect("verified code decodes");
            if matches!(lm.ir.plan_at(pc as u32), PcPlan::Exec { .. }) {
                total_gen += u64::from(gen_insts_at(&op, tier));
            }
            decoded.push((pc as u32, op, len as u32));
            pc += len;
        }
        let code_bytes = 4 * total_gen;

        let outcome = self.mgr.install(key, code_bytes);
        let mut emitted = self.evict_victims(&outcome.evicted, sink);
        let Some(entry) = outcome.entry else {
            self.translate_insts += emitted;
            if tier >= TIER_OPT {
                self.opt_translate_insts += emitted;
            }
            return None;
        };
        let mut install = entry;

        let mut op_addr = HashMap::new();
        let mut ops = HashMap::new();
        for (pc, op, len) in decoded {
            // Fused or folded pcs map to the next generated address
            // (consistent with `CompiledMethod::addr`'s fallthrough).
            op_addr.insert(pc, install);
            let PcPlan::Exec { word_off, words } = lm.ir.plan_at(pc) else {
                sink.accept(
                    &NativeInst::alu(LOWERING_ROUTINE + 0x800, Phase::Translate).with_dst(16),
                );
                emitted += 1;
                ops.insert(pc, (op, len));
                continue;
            };
            let opcode = op.dispatch_index();
            let routine = layout::TRANSLATOR_TEXT_BASE + Addr::from(opcode) * TRANSLATOR_STRIDE;
            let mut tpc = routine;
            let mut emit = |i: NativeInst, emitted: &mut u64| {
                sink.accept(&i);
                *emitted += 1;
            };

            // Read the packed IR words from the IR buffer — the
            // lowering pass already did the bytecode decoding.
            for k in 0..u64::from(words) {
                emit(
                    NativeInst::load(
                        tpc,
                        lm.base + 4 * (u64::from(word_off) + k),
                        4,
                        Phase::Translate,
                    )
                    .with_dst(4),
                    &mut emitted,
                );
                tpc += 4;
            }
            // Codegen bookkeeping (register assignment reuses the
            // lowering's typed operands; cost mirrors the baseline
            // translator's per-op analysis).
            for k in 0..bookkeeping {
                emit(
                    NativeInst::alu(tpc, Phase::Translate).with_dst(16 + (k & 7)),
                    &mut emitted,
                );
                tpc += 4;
            }
            // Code-generation table lookups.
            emit(
                NativeInst::load(
                    tpc,
                    layout::VM_DATA_BASE + Addr::from(opcode) * 64,
                    4,
                    Phase::Translate,
                )
                .with_dst(6),
                &mut emitted,
            );
            tpc += 4;
            emit(
                NativeInst::load(
                    tpc,
                    layout::VM_DATA_BASE + 0x4000 + Addr::from(opcode) * 32,
                    4,
                    Phase::Translate,
                )
                .with_dst(6),
                &mut emitted,
            );
            tpc += 4;

            // Generate and install.
            let n = gen_insts_at(&op, tier);
            for k in 0..n {
                let reg = 24 + (k & 7) as u8;
                emit(
                    NativeInst::alu(tpc, Phase::Translate)
                        .with_dst(reg)
                        .with_srcs(6, None),
                    &mut emitted,
                );
                tpc += 4;
                emit(
                    NativeInst::store(tpc, install, 4, Phase::Translate).with_srcs(reg, None),
                    &mut emitted,
                );
                tpc += 4;
                install += 4;
            }

            ops.insert(pc, (op, len));
        }

        let code_bytes = (install - entry) as u32;
        self.translator_buffer_bytes = self
            .translator_buffer_bytes
            .max(4 * u64::from(code_bytes) / 3 + 256);
        self.methods_translated += 1;
        self.translate_insts += emitted;
        if tier >= TIER_OPT {
            self.opt_translate_insts += emitted;
        }

        self.compiled.insert(
            key,
            Arc::new(CompiledMethod {
                entry,
                code_bytes,
                tier,
                reg_locals: if tier >= TIER_OPT {
                    TIER2_REG_LOCALS
                } else {
                    TIER1_REG_LOCALS
                },
                op_addr,
                ops,
            }),
        );
        Some(emitted)
    }

    /// Translates `(mid, tid)` at the baseline tier (tests and the
    /// historical direct entry point).
    #[cfg(test)]
    pub fn translate(
        &mut self,
        mid: MethodId,
        def: &MethodDef,
        code_addr: Addr,
        sink: &mut dyn TraceSink,
    ) -> u64 {
        let key = self.key_for(mid, 0, def);
        self.translate_keyed(key, def, code_addr, jrt_codecache::TIER_BASELINE, sink)
            .expect("unbounded install succeeds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::{ClassAsm, ClassId, MethodAsm, Program, RetKind};
    use jrt_codecache::{EvictionPolicy, TIER_BASELINE};
    use jrt_trace::{InstMix, RecordingSink, Region};

    fn sample() -> (Program, MethodId) {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let top = m.new_label();
        let end = m.new_label();
        m.iconst(0).istore(0).iconst(0).istore(1);
        m.bind(top);
        m.iload(1).iconst(50).if_icmp_ge(end);
        m.iload(0).iload(1).iadd().istore(0);
        m.iinc(1, 1).goto(top);
        m.bind(end);
        m.iload(0).ireturn();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").unwrap();
        let mid = p.entry();
        (p, mid)
    }

    fn jit() -> JitState {
        JitState::new(CodeCacheConfig::default())
    }

    #[test]
    fn translation_emits_code_cache_writes() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let mut rec = RecordingSink::new();
        let t = jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut rec);
        assert!(t > 0);
        assert_eq!(t as usize, rec.len());
        assert!(jit.is_compiled(mid, 0));
        let writes: Vec<_> = rec
            .events
            .iter()
            .filter(|i| i.is_write())
            .map(|i| i.mem.unwrap().addr)
            .collect();
        assert!(!writes.is_empty());
        assert!(writes
            .iter()
            .all(|&a| Region::classify(a) == Some(Region::CodeCache)));
        // All of it is Translate phase.
        assert!(rec.events.iter().all(|i| i.phase == Phase::Translate));
    }

    #[test]
    fn translation_reads_bytecode_from_class_area() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let mut mix = InstMix::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut mix);
        assert!(mix.count(jrt_trace::InstClass::Load) > 0);
        assert!(mix.count(jrt_trace::InstClass::Store) > 0);
    }

    #[test]
    fn installed_addresses_are_ordered_and_disjoint() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut sink);
        let cm = jit.compiled(mid, 0).unwrap();
        let mut addrs: Vec<Addr> = cm.ops.keys().map(|&pc| cm.addr(pc)).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), cm.ops.len(), "each bytecode gets its own code");
        assert!(cm.code_bytes > 0);
        assert_eq!(cm.entry, cm.addr(0));
        assert_eq!(cm.tier, TIER_BASELINE);
        assert_eq!(cm.reg_locals, TIER1_REG_LOCALS);
    }

    #[test]
    fn entry_addr_is_stub_until_translated() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let stub = jit.entry_addr(mid, 0);
        assert!(stub < STUB_REGION_END);
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut sink);
        let real = jit.entry_addr(mid, 0);
        assert!(real >= CODE_REGION_BASE);
        assert_ne!(stub, real);
    }

    #[test]
    fn second_method_installs_after_first() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut sink);
        let first_entry = jit.entry_addr(mid, 0);
        let other = MethodId {
            class: ClassId(0),
            index: 99,
        };
        jit.translate(other, def, layout::CLASS_AREA_BASE + 964, &mut sink);
        assert!(jit.entry_addr(other, 0) > first_entry);
        assert_eq!(jit.methods_translated, 2);
        assert!(jit.live_bytes() > 0);
        assert_eq!(jit.live_bytes(), jit.ever_bytes());
    }

    #[test]
    fn call_site_profile_transitions() {
        let a = MethodId {
            class: ClassId(0),
            index: 1,
        };
        let b = MethodId {
            class: ClassId(0),
            index: 2,
        };
        let s = CallSite::Unseen;
        let s = s.observe(a);
        assert_eq!(s, CallSite::Mono(a));
        let s = s.observe(a);
        assert_eq!(s, CallSite::Mono(a));
        let s = s.observe(b);
        assert_eq!(s, CallSite::Poly);
        assert_eq!(s.observe(a), CallSite::Poly);
    }

    #[test]
    #[should_panic(expected = "translated twice")]
    fn double_translation_panics() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE, &mut sink);
        jit.translate(mid, def, layout::CLASS_AREA_BASE, &mut sink);
    }

    #[test]
    fn eviction_drops_compiled_record_and_emits_translate_events() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        // Capacity fits exactly one copy of the sample method.
        let one = {
            let mut probe = jit();
            let mut sink = jrt_trace::CountingSink::new();
            probe.translate(mid, def, layout::CLASS_AREA_BASE, &mut sink);
            probe.live_bytes()
        };
        let mut jit = JitState::new(CodeCacheConfig::bounded(one, EvictionPolicy::Lru));
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE, &mut sink);
        let other = MethodId {
            class: ClassId(0),
            index: 99,
        };
        let mut rec = RecordingSink::new();
        jit.translate(other, def, layout::CLASS_AREA_BASE + 964, &mut rec);
        assert!(!jit.is_compiled(mid, 0), "first method evicted");
        assert!(jit.is_compiled(other, 0));
        assert_eq!(jit.cache_stats().evictions, 1);
        assert!(rec.events.iter().all(|i| i.phase == Phase::Translate));
        assert!(rec.events.iter().any(|i| i.pc >= EVICTOR_ROUTINE));
    }

    #[test]
    fn shared_scope_dedups_identical_bodies() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let cfg = CodeCacheConfig::default().with_scope(CacheScope::Shared);
        let mut jit = JitState::new(cfg);
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE, &mut sink);
        // A different method with byte-identical code resolves to the
        // same installed segment without translating again.
        let other = MethodId {
            class: ClassId(7),
            index: 3,
        };
        assert!(!jit.is_compiled(other, 0));
        let mut profile = ProfileTable::new();
        let mode = ExecMode::Jit(jrt_codecache::JitPolicy::FirstInvocation);
        let before = jit.methods_translated;
        assert!(jit.ensure_compiled(
            &mode,
            &mut profile,
            CalleeSite {
                callee: other,
                tid: 0,
                def,
                code_addr: layout::CLASS_AREA_BASE,
            },
            &mut sink
        ));
        assert_eq!(jit.methods_translated, before, "no second translation");
        assert_eq!(jit.entry_addr(other, 0), jit.entry_addr(mid, 0));
    }

    #[test]
    fn per_thread_scope_translates_per_thread() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let cfg = CodeCacheConfig::default().with_scope(CacheScope::PerThread);
        let mut jit = JitState::new(cfg);
        let mut profile = ProfileTable::new();
        let mode = ExecMode::Jit(jrt_codecache::JitPolicy::FirstInvocation);
        let mut sink = jrt_trace::CountingSink::new();
        assert!(jit.ensure_compiled(
            &mode,
            &mut profile,
            CalleeSite {
                callee: mid,
                tid: 0,
                def,
                code_addr: layout::CLASS_AREA_BASE,
            },
            &mut sink
        ));
        assert!(!jit.is_compiled(mid, 1), "thread 1 has a private cache");
        assert!(jit.ensure_compiled(
            &mode,
            &mut profile,
            CalleeSite {
                callee: mid,
                tid: 1,
                def,
                code_addr: layout::CLASS_AREA_BASE,
            },
            &mut sink
        ));
        assert_eq!(jit.methods_translated, 2);
        assert_ne!(jit.entry_addr(mid, 0), jit.entry_addr(mid, 1));
    }

    #[test]
    fn tiered_upgrade_recompiles_denser_code() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let mut profile = ProfileTable::new();
        let mode = ExecMode::Jit(jrt_codecache::JitPolicy::Tiered { t1: 1, t2: 4 });
        let mut sink = jrt_trace::CountingSink::new();
        profile.record_invocation(mid);
        let site = CalleeSite {
            callee: mid,
            tid: 0,
            def,
            code_addr: layout::CLASS_AREA_BASE,
        };
        assert!(jit.ensure_compiled(&mode, &mut profile, site, &mut sink));
        let t1_bytes = jit.compiled(mid, 0).unwrap().code_bytes;
        assert_eq!(jit.compiled(mid, 0).unwrap().tier, TIER_BASELINE);
        for _ in 0..4 {
            profile.record_invocation(mid);
        }
        assert!(jit.ensure_compiled(&mode, &mut profile, site, &mut sink));
        let cm = jit.compiled(mid, 0).unwrap();
        assert_eq!(cm.tier, TIER_OPT);
        assert_eq!(cm.reg_locals, TIER2_REG_LOCALS);
        assert!(cm.code_bytes < t1_bytes, "opt tier emits denser code");
        assert_eq!(jit.tier2_recompiles, 1);
        assert_eq!(jit.methods_translated, 2);
        assert_eq!(jit.cache_stats().evictions, 0, "upgrade is not an eviction");
    }

    #[test]
    fn ir_interp_mode_lowers_once_and_never_installs() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = jit();
        let mut profile = ProfileTable::new();
        let mode = ExecMode::IrInterp;
        let mut rec = RecordingSink::new();
        let site = CalleeSite {
            callee: mid,
            tid: 0,
            def,
            code_addr: layout::CLASS_AREA_BASE,
        };
        assert!(!jit.ensure_compiled(&mode, &mut profile, site, &mut rec));
        assert!(
            !jit.is_compiled(mid, 0),
            "IR interpretation installs nothing"
        );
        assert_eq!(jit.methods_translated, 0);
        assert_eq!(jit.ir.methods_lowered, 1);
        assert!(jit.translate_insts > 0, "lowering is translate work");
        let lowering = jit.translate_insts;
        assert!(rec.events.iter().all(|i| i.phase == Phase::Translate));
        // Packed-IR stores land in the IR buffer (VM data), never the
        // code cache.
        assert!(rec
            .events
            .iter()
            .filter(|i| i.is_write())
            .all(|i| Region::classify(i.mem.unwrap().addr) == Some(Region::VmData)));
        // Memoized: re-entering the method costs nothing.
        assert!(!jit.ensure_compiled(&mode, &mut profile, site, &mut rec));
        assert_eq!(jit.ir.methods_lowered, 1);
        assert_eq!(jit.translate_insts, lowering);
        let lm = jit.lowered(mid).expect("lowered record");
        assert!(lm.ir.stats.ir_insts > 0);
        assert!(lm.ir.stats.ir_insts < lm.ir.stats.bytecodes, "fusion won");
        assert!(lm.base >= IR_BUFFER_BASE);
    }

    #[test]
    fn ir_jit_installs_denser_code_than_baseline() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut profile = ProfileTable::new();
        let mut sink = jrt_trace::CountingSink::new();
        let site = CalleeSite {
            callee: mid,
            tid: 0,
            def,
            code_addr: layout::CLASS_AREA_BASE,
        };

        let mut a = jit();
        assert!(a.ensure_compiled(
            &ExecMode::Jit(jrt_codecache::JitPolicy::FirstInvocation),
            &mut profile,
            site,
            &mut sink
        ));
        let stack = a.compiled(mid, 0).unwrap().clone();

        let mut b = jit();
        assert!(b.ensure_compiled(
            &ExecMode::IrJit(jrt_codecache::JitPolicy::FirstInvocation),
            &mut profile,
            site,
            &mut sink
        ));
        let ir = b.compiled(mid, 0).unwrap().clone();
        assert!(
            ir.code_bytes < stack.code_bytes,
            "fusion installs denser code: {} vs {}",
            ir.code_bytes,
            stack.code_bytes
        );
        // Every bytecode keeps a decoded record and a native address
        // for the stepper, fused or not.
        assert_eq!(ir.ops.len(), stack.ops.len());
        assert_eq!(ir.op_addr.len(), stack.op_addr.len());
        assert_eq!(b.ir.methods_lowered, 1);
        assert_eq!(b.methods_translated, 1);
    }
}
