//! The JIT translator, code cache, and call-site devirtualization.
//!
//! Translation happens in the critical path of execution, exactly as
//! the paper describes for Kaffe: the first invocation of a method
//! (under the configured [`JitPolicy`](crate::JitPolicy)) walks its
//! bytecode, and for every bytecode
//!
//! * reads the bytecode bytes (data loads from the class area),
//! * runs the per-opcode code-generation routine (the translator's
//!   own text — heavily reused across bytecodes, which the paper
//!   credits for the translate portion's *better* I-cache locality),
//! * writes the generated native instructions into the code cache
//!   (cold **write misses** — the dominant data-cache cost of
//!   translation the paper isolates in Figure 5).
//!
//! The installed [`CompiledMethod`] then maps bytecode offsets to
//! native addresses, so execution of the translated code exhibits
//! per-method instruction footprints (method locality instead of the
//! interpreter's bytecode locality).

use jrt_bytecode::{MethodDef, MethodId, Op};
use jrt_trace::{layout, Addr, NativeInst, Phase, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-call-site receiver profile used for devirtualization: the JIT
/// emits a direct call while a site stays monomorphic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum CallSite {
    /// Never executed.
    #[default]
    Unseen,
    /// One receiver method observed.
    Mono(MethodId),
    /// Multiple receiver methods observed.
    Poly,
}

impl CallSite {
    /// Records an observed target; returns the updated state.
    pub(crate) fn observe(self, target: MethodId) -> CallSite {
        match self {
            CallSite::Unseen => CallSite::Mono(target),
            CallSite::Mono(t) if t == target => self,
            _ => CallSite::Poly,
        }
    }
}

/// A translated method installed in the code cache.
#[derive(Debug, Clone)]
pub(crate) struct CompiledMethod {
    /// Entry address in the code cache.
    pub entry: Addr,
    /// Installed native code size in bytes.
    #[cfg_attr(not(test), allow(dead_code))]
    pub code_bytes: u32,
    /// Bytecode offset → installed native address.
    op_addr: HashMap<u32, Addr>,
    /// Pre-decoded instructions: offset → (op, encoded length).
    pub ops: HashMap<u32, (Op, u32)>,
}

impl CompiledMethod {
    /// Native address of the code generated for the bytecode at
    /// `pc`. Offsets between instructions map to the following
    /// instruction's address.
    pub fn addr(&self, pc: u32) -> Addr {
        self.op_addr.get(&pc).copied().unwrap_or(self.entry)
    }
}

/// Number of native instructions the translator generates for one
/// bytecode (static code size; a naive early JIT emits bulky
/// sequences).
fn gen_insts(op: &Op) -> u32 {
    match op {
        Op::Nop => 1,
        Op::IConst(_) | Op::AConstNull => 2, // sethi + or
        Op::ILoad(n) | Op::IStore(n) | Op::ALoad(n) | Op::AStore(n) => {
            if usize::from(*n) < 6 {
                1
            } else {
                2
            }
        }
        Op::Pop | Op::Dup | Op::DupX1 | Op::Swap => 1,
        Op::IAdd | Op::ISub | Op::IAnd | Op::IOr | Op::IXor | Op::IShl | Op::IShr | Op::IUshr => 1,
        Op::IMul => 2,
        Op::IDiv | Op::IRem => 4, // zero check + divide sequence
        Op::INeg => 1,
        Op::IInc(_, _) => 2,
        Op::If(_, _) | Op::IfNull(_) | Op::IfNonNull(_) => 2,
        Op::IfICmp(_, _) | Op::IfACmpEq(_) | Op::IfACmpNe(_) => 2,
        Op::Goto(_) => 1,
        Op::TableSwitch { targets, .. } => 4 + targets.len() as u32,
        Op::New(_) => 8,
        Op::GetField(_) => 3,
        Op::PutField(_) => 3,
        Op::GetStatic(_) => 2,
        Op::PutStatic(_) => 2,
        Op::NewArray(_) => 8,
        Op::ArrayLength => 2,
        Op::ArrLoad(_) => 4,
        Op::ArrStore(_) => 5,
        Op::InvokeStatic(_) | Op::InvokeSpecial(_) => 6,
        Op::InvokeVirtual(_) => 8,
        Op::Return | Op::IReturn | Op::AReturn => 3,
        Op::MonitorEnter | Op::MonitorExit => 6,
    }
}

const TRANSLATOR_STRIDE: Addr = 0x200;
const STUB_REGION_END: Addr = layout::CODE_CACHE_BASE + 0x1_0000;
const CODE_REGION_BASE: Addr = layout::CODE_CACHE_BASE + 0x10_0000;

/// Translator state: the code cache and per-method compilation
/// records.
#[derive(Debug, Default)]
pub(crate) struct JitState {
    compiled: HashMap<MethodId, Arc<CompiledMethod>>,
    /// Per-call-site devirtualization state, keyed by
    /// (caller, bytecode offset).
    call_sites: HashMap<(MethodId, u32), CallSite>,
    cursor: Addr,
    /// Bytes of native code installed (Table 1 footprint).
    pub code_cache_bytes: u64,
    /// Translator work-buffer high-water mark (footprint).
    pub translator_buffer_bytes: u64,
    /// Methods translated.
    pub methods_translated: u32,
    /// Total translator instructions emitted (sum of `T_i`).
    pub translate_insts: u64,
}

impl JitState {
    /// Creates an empty code cache.
    pub fn new() -> Self {
        JitState {
            cursor: CODE_REGION_BASE,
            ..JitState::default()
        }
    }

    /// Whether `mid` has been translated.
    pub fn is_compiled(&self, mid: MethodId) -> bool {
        self.compiled.contains_key(&mid)
    }

    /// The compiled record for `mid`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn compiled(&self, mid: MethodId) -> Option<&Arc<CompiledMethod>> {
        self.compiled.get(&mid)
    }

    /// Cheap shared handle to the compiled record (lets the caller
    /// keep the record while mutating the rest of the JIT state).
    pub fn compiled_shared(&self, mid: MethodId) -> Option<Arc<CompiledMethod>> {
        self.compiled.get(&mid).cloned()
    }

    /// Records an observed receiver at a virtual call site and
    /// returns the site's updated state.
    pub fn observe_call_site(&mut self, caller: MethodId, pc: u32, target: MethodId) -> CallSite {
        let slot = self.call_sites.entry((caller, pc)).or_default();
        *slot = slot.observe(target);
        *slot
    }

    /// Native entry address used by calls to `mid`: the installed
    /// entry when translated, a (deterministic) stub otherwise.
    pub fn entry_addr(&self, mid: MethodId) -> Addr {
        if let Some(cm) = self.compiled.get(&mid) {
            return cm.entry;
        }
        let key = (u64::from(mid.class.0) << 20) ^ u64::from(mid.index);
        layout::CODE_CACHE_BASE + (key * 16) % (STUB_REGION_END - layout::CODE_CACHE_BASE)
    }

    /// Translates `def` (whose bytecode image lives at `code_addr`),
    /// emitting the translation trace and installing the result.
    /// Returns the number of translator instructions emitted (`T_i`
    /// in the paper's cost model).
    ///
    /// # Panics
    ///
    /// Panics if called twice for the same method or on a native
    /// method (VM sequencing bugs).
    pub fn translate(
        &mut self,
        mid: MethodId,
        def: &MethodDef,
        code_addr: Addr,
        sink: &mut dyn TraceSink,
    ) -> u64 {
        assert!(!self.is_compiled(mid), "method translated twice");
        assert!(!def.flags.is_native, "native methods are not translated");

        let mut emitted = 0u64;
        let mut op_addr = HashMap::new();
        let mut ops = HashMap::new();
        let entry = self.cursor;
        let mut install = self.cursor;

        let mut pc = 0usize;
        while pc < def.code.len() {
            let (op, len) = Op::decode(&def.code, pc).expect("verified code decodes");
            let opcode = op.dispatch_index();
            // The per-opcode code-generation routine: high code reuse
            // across bytecodes of the same kind.
            let routine = layout::TRANSLATOR_TEXT_BASE + Addr::from(opcode) * TRANSLATOR_STRIDE;
            let mut tpc = routine;
            let mut emit = |i: NativeInst, emitted: &mut u64| {
                sink.accept(&i);
                *emitted += 1;
            };

            // Read the bytecode (and operands) from the class area.
            for k in 0..(len as u32).div_ceil(4) {
                emit(
                    NativeInst::load(
                        tpc,
                        code_addr + pc as u64 + u64::from(4 * k),
                        4,
                        Phase::Translate,
                    )
                    .with_dst(4),
                    &mut emitted,
                );
                tpc += 4;
            }
            // Decode / stack-simulation / CFG bookkeeping. The cost
            // is calibrated so translating a bytecode costs slightly
            // more than one interpretation of it — which is what makes
            // the paper's oracle (Figure 1) worth only 10-15%.
            for k in 0..10u8 {
                // Mostly independent bookkeeping (separate fields of
                // the translator's state), so the emission loop has
                // instruction-level parallelism like real compilers.
                emit(
                    NativeInst::alu(tpc, Phase::Translate).with_dst(16 + (k & 7)),
                    &mut emitted,
                );
                tpc += 4;
            }
            // Code-generation table lookups.
            emit(
                NativeInst::load(
                    tpc,
                    layout::VM_DATA_BASE + Addr::from(opcode) * 64,
                    4,
                    Phase::Translate,
                )
                .with_dst(6),
                &mut emitted,
            );
            tpc += 4;
            emit(
                NativeInst::load(
                    tpc,
                    layout::VM_DATA_BASE + 0x4000 + Addr::from(opcode) * 32,
                    4,
                    Phase::Translate,
                )
                .with_dst(6),
                &mut emitted,
            );
            tpc += 4;

            // Generate and install the native instructions: the
            // stores into the code cache are the compulsory write
            // misses of Figure 5.
            op_addr.insert(pc as u32, install);
            let n = gen_insts(&op);
            for k in 0..n {
                let reg = 24 + (k & 7) as u8;
                emit(
                    NativeInst::alu(tpc, Phase::Translate)
                        .with_dst(reg)
                        .with_srcs(6, None),
                    &mut emitted,
                );
                tpc += 4;
                emit(
                    NativeInst::store(tpc, install, 4, Phase::Translate).with_srcs(reg, None),
                    &mut emitted,
                );
                tpc += 4;
                install += 4;
            }

            ops.insert(pc as u32, (op, len as u32));
            pc += len;
        }

        let code_bytes = (install - entry) as u32;
        self.cursor = (install + 63) & !63;
        self.code_cache_bytes += u64::from(code_bytes);
        self.translator_buffer_bytes = self
            .translator_buffer_bytes
            .max(4 * u64::from(code_bytes) / 3 + 256);
        self.methods_translated += 1;
        self.translate_insts += emitted;

        self.compiled.insert(
            mid,
            Arc::new(CompiledMethod {
                entry,
                code_bytes,
                op_addr,
                ops,
            }),
        );
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::{ClassAsm, ClassId, MethodAsm, Program, RetKind};
    use jrt_trace::{InstMix, RecordingSink, Region};

    fn sample() -> (Program, MethodId) {
        let mut c = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0).returns(RetKind::Int);
        let top = m.new_label();
        let end = m.new_label();
        m.iconst(0).istore(0).iconst(0).istore(1);
        m.bind(top);
        m.iload(1).iconst(50).if_icmp_ge(end);
        m.iload(0).iload(1).iadd().istore(0);
        m.iinc(1, 1).goto(top);
        m.bind(end);
        m.iload(0).ireturn();
        c.add_method(m);
        let p = Program::build(vec![c], "Main", "main").unwrap();
        let mid = p.entry();
        (p, mid)
    }

    #[test]
    fn translation_emits_code_cache_writes() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = JitState::new();
        let mut rec = RecordingSink::new();
        let t = jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut rec);
        assert!(t > 0);
        assert_eq!(t as usize, rec.len());
        assert!(jit.is_compiled(mid));
        let writes: Vec<_> = rec
            .events
            .iter()
            .filter(|i| i.is_write())
            .map(|i| i.mem.unwrap().addr)
            .collect();
        assert!(!writes.is_empty());
        assert!(writes
            .iter()
            .all(|&a| Region::classify(a) == Some(Region::CodeCache)));
        // All of it is Translate phase.
        assert!(rec.events.iter().all(|i| i.phase == Phase::Translate));
    }

    #[test]
    fn translation_reads_bytecode_from_class_area() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = JitState::new();
        let mut mix = InstMix::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut mix);
        assert!(mix.count(jrt_trace::InstClass::Load) > 0);
        assert!(mix.count(jrt_trace::InstClass::Store) > 0);
    }

    #[test]
    fn installed_addresses_are_ordered_and_disjoint() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = JitState::new();
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut sink);
        let cm = jit.compiled(mid).unwrap();
        let mut addrs: Vec<Addr> = cm.ops.keys().map(|&pc| cm.addr(pc)).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), cm.ops.len(), "each bytecode gets its own code");
        assert!(cm.code_bytes > 0);
        assert_eq!(cm.entry, cm.addr(0));
    }

    #[test]
    fn entry_addr_is_stub_until_translated() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = JitState::new();
        let stub = jit.entry_addr(mid);
        assert!(stub < STUB_REGION_END);
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut sink);
        let real = jit.entry_addr(mid);
        assert!(real >= CODE_REGION_BASE);
        assert_ne!(stub, real);
    }

    #[test]
    fn second_method_installs_after_first() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = JitState::new();
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE + 64, &mut sink);
        let first_end = jit.cursor;
        let other = MethodId {
            class: ClassId(0),
            index: 99,
        };
        jit.translate(other, def, layout::CLASS_AREA_BASE + 964, &mut sink);
        assert!(jit.entry_addr(other) >= first_end);
        assert_eq!(jit.methods_translated, 2);
        assert!(jit.code_cache_bytes > 0);
    }

    #[test]
    fn call_site_profile_transitions() {
        let a = MethodId {
            class: ClassId(0),
            index: 1,
        };
        let b = MethodId {
            class: ClassId(0),
            index: 2,
        };
        let s = CallSite::Unseen;
        let s = s.observe(a);
        assert_eq!(s, CallSite::Mono(a));
        let s = s.observe(a);
        assert_eq!(s, CallSite::Mono(a));
        let s = s.observe(b);
        assert_eq!(s, CallSite::Poly);
        assert_eq!(s.observe(a), CallSite::Poly);
    }

    #[test]
    #[should_panic(expected = "translated twice")]
    fn double_translation_panics() {
        let (p, mid) = sample();
        let def = p.method_def(mid);
        let mut jit = JitState::new();
        let mut sink = jrt_trace::CountingSink::new();
        jit.translate(mid, def, layout::CLASS_AREA_BASE, &mut sink);
        jit.translate(mid, def, layout::CLASS_AREA_BASE, &mut sink);
    }
}
