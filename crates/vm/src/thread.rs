//! Green threads, frames, and their simulated stack addresses.
//!
//! The VM multiplexes deterministic green threads over one host
//! thread with a round-robin scheduler (quantum in bytecodes), which
//! keeps every experiment bit-reproducible. Each thread owns a region
//! of the simulated [`Stack`](jrt_trace::Region::Stack) address space;
//! frames carve locals and operand-stack slots out of it, so the
//! interpreter's push/pop traffic gets realistic, hot, per-thread
//! addresses.

use crate::heap::{Handle, Value};
use jrt_bytecode::{MethodDef, MethodId};
use jrt_trace::{layout, Addr};

/// Scheduler state of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Runnable.
    Ready,
    /// Blocked entering the monitor of the given object.
    Blocked(Handle),
    /// Waiting for another thread to finish (`Sys.join`).
    Joining(u16),
    /// Finished.
    Done,
}

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The executing method.
    pub method: MethodId,
    /// Bytecode offset of the next instruction.
    pub pc: u32,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Simulated base address of the locals.
    pub locals_addr: Addr,
    /// Simulated base address of the operand stack.
    pub stack_addr: Addr,
    /// Monitor to release on return (synchronized methods).
    pub sync_obj: Option<Handle>,
    /// Monitor still to acquire before the first instruction runs
    /// (synchronized methods block here under contention).
    pub sync_pending: Option<Handle>,
    /// Whether this activation runs translated (JIT) code.
    pub jit: bool,
    /// Native return address (the instruction after the call that
    /// created this frame); pairs calls with returns so the modelled
    /// return-address stack predicts correctly.
    pub ret_to: Addr,
}

impl Frame {
    /// Simulated address of operand-stack slot `depth`.
    pub fn stack_slot_addr(&self, depth: usize) -> Addr {
        self.stack_addr + 4 * depth as u64
    }

    /// Simulated address of local slot `n`.
    pub fn local_addr(&self, n: usize) -> Addr {
        self.locals_addr + 4 * n as u64
    }
}

/// Per-thread stack region size (4 MB).
const THREAD_STACK_SIZE: Addr = 0x40_0000;
const FRAME_HEADER: Addr = 32;

/// One green thread.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// Thread id (also the sync engine's thread id).
    pub id: u16,
    /// Activation stack; the last frame is the current one.
    pub frames: Vec<Frame>,
    /// Scheduler status.
    pub status: ThreadStatus,
    /// Value returned by the thread's root method.
    pub result: Option<Value>,
    /// Opcode of the last interpreted bytecode (selects the threaded
    /// dispatch site for the next one).
    pub last_opcode: u8,
    /// Length of the current interpreter folding run (0 = the next
    /// bytecode must dispatch).
    pub fold_run: u8,
    cursor: Addr,
}

impl ThreadState {
    /// Creates thread `id` with an empty activation stack.
    ///
    /// # Panics
    ///
    /// Panics if `id` would place the stack outside the stack region.
    pub fn new(id: u16) -> Self {
        let base = layout::STACK_BASE + Addr::from(id) * THREAD_STACK_SIZE;
        assert!(
            base + THREAD_STACK_SIZE <= layout::STACK_END,
            "too many threads for the stack region"
        );
        ThreadState {
            id,
            frames: Vec::new(),
            status: ThreadStatus::Ready,
            result: None,
            last_opcode: 0,
            fold_run: 0,
            cursor: base,
        }
    }

    /// Pushes a frame for `method`, moving `args` into its first
    /// local slots.
    pub fn push_frame(&mut self, method: MethodId, def: &MethodDef, args: Vec<Value>) -> &Frame {
        let max_locals = usize::from(def.max_locals.max(def.arg_slots()));
        let mut locals = vec![Value::Null; max_locals];
        locals[..args.len()].copy_from_slice(&args);

        let locals_addr = self.cursor + FRAME_HEADER;
        let stack_addr = locals_addr + 4 * max_locals as u64;
        self.cursor = stack_addr + 4 * u64::from(def.max_stack.max(4));

        self.frames.push(Frame {
            method,
            pc: 0,
            locals,
            stack: Vec::with_capacity(usize::from(def.max_stack)),
            locals_addr,
            stack_addr,
            sync_obj: None,
            sync_pending: None,
            jit: false,
            ret_to: 0,
        });
        self.frames.last().expect("just pushed")
    }

    /// Pops the current frame, releasing its stack space.
    ///
    /// # Panics
    ///
    /// Panics if there is no frame.
    pub fn pop_frame(&mut self) -> Frame {
        let f = self.frames.pop().expect("frame to pop");
        self.cursor = f.locals_addr - FRAME_HEADER;
        f
    }

    /// The current frame.
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("running thread has a frame")
    }

    /// The current frame, mutably.
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("running thread has a frame")
    }

    /// Whether the thread has finished (no frames left).
    pub fn is_done(&self) -> bool {
        self.frames.is_empty()
    }

    /// Depth of the activation stack.
    pub fn call_depth(&self) -> usize {
        self.frames.len()
    }

    /// All reference values reachable from this thread's frames
    /// (GC roots).
    pub fn roots(&self) -> impl Iterator<Item = Handle> + '_ {
        self.frames.iter().flat_map(|f| {
            f.locals
                .iter()
                .chain(f.stack.iter())
                .filter_map(|v| match v {
                    Value::Ref(h) => Some(*h),
                    _ => None,
                })
                .chain(f.sync_obj.iter().copied())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::{ClassId, MethodFlags, RetKind};

    fn def(max_locals: u16, max_stack: u16) -> MethodDef {
        MethodDef {
            name: "m".into(),
            nargs: 1,
            ret: RetKind::Void,
            max_locals,
            max_stack,
            code: vec![44], // return
            flags: MethodFlags {
                is_static: true,
                ..MethodFlags::default()
            },
        }
    }

    fn mid() -> MethodId {
        MethodId {
            class: ClassId(0),
            index: 0,
        }
    }

    #[test]
    fn frames_nest_and_release() {
        let mut t = ThreadState::new(0);
        t.push_frame(mid(), &def(4, 4), vec![Value::Int(1)]);
        let outer_stack = t.frame().stack_addr;
        t.push_frame(mid(), &def(2, 2), vec![Value::Int(2)]);
        assert!(t.frame().locals_addr > outer_stack);
        assert_eq!(t.call_depth(), 2);
        t.pop_frame();
        // Pushing again reuses the released space.
        t.push_frame(mid(), &def(2, 2), vec![Value::Int(3)]);
        assert_eq!(t.frame().locals[0], Value::Int(3));
        t.pop_frame();
        t.pop_frame();
        assert!(t.is_done());
    }

    #[test]
    fn addresses_are_per_thread() {
        let mut a = ThreadState::new(0);
        let mut b = ThreadState::new(1);
        a.push_frame(mid(), &def(2, 2), vec![Value::Null]);
        b.push_frame(mid(), &def(2, 2), vec![Value::Null]);
        assert!(b.frame().locals_addr - a.frame().locals_addr >= THREAD_STACK_SIZE);
        for f in [a.frame(), b.frame()] {
            assert_eq!(
                jrt_trace::Region::classify(f.stack_slot_addr(0)),
                Some(jrt_trace::Region::Stack)
            );
        }
    }

    #[test]
    fn args_fill_leading_locals() {
        let mut t = ThreadState::new(0);
        t.push_frame(mid(), &def(5, 2), vec![Value::Int(7), Value::Ref(3)]);
        assert_eq!(t.frame().locals[0], Value::Int(7));
        assert_eq!(t.frame().locals[1], Value::Ref(3));
        assert_eq!(t.frame().locals[4], Value::Null);
    }

    #[test]
    fn roots_cover_locals_stack_and_sync() {
        let mut t = ThreadState::new(0);
        t.push_frame(mid(), &def(2, 4), vec![Value::Ref(11)]);
        t.frame_mut().stack.push(Value::Ref(22));
        t.frame_mut().sync_obj = Some(33);
        let roots: Vec<Handle> = t.roots().collect();
        assert!(roots.contains(&11));
        assert!(roots.contains(&22));
        assert!(roots.contains(&33));
    }

    #[test]
    fn slot_addresses_are_contiguous() {
        let mut t = ThreadState::new(0);
        t.push_frame(mid(), &def(3, 4), vec![Value::Null]);
        let f = t.frame();
        assert_eq!(f.local_addr(1) - f.local_addr(0), 4);
        assert_eq!(f.stack_slot_addr(1) - f.stack_slot_addr(0), 4);
        assert!(f.stack_slot_addr(0) >= f.local_addr(2) + 4);
    }
}
