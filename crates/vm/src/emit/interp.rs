//! Trace emission for the switch-threaded interpreter.

use super::{Emit, InvokeKind};
use jrt_sync::LockCost;
use jrt_trace::{layout, Addr, InstClass, NativeInst, Phase, TraceSink};

/// Address of the dispatch loop (fetch/decode/indirect-jump).
pub(crate) const DISPATCH_BASE: Addr = layout::VM_TEXT_BASE + 0x100;
/// Base of the handler table; each of the ~220-case `switch`'s
/// handlers occupies up to 256 bytes, mirroring the paper's
/// description of the interpreter.
pub(crate) const HANDLER_BASE: Addr = layout::VM_TEXT_BASE + 0x1000;
const HANDLER_STRIDE: Addr = 0x100;
/// Offset of the replicated dispatch tail within each handler's
/// 256-byte slot (handler bodies use the first 0xC0 bytes).
const DISPATCH_TAIL_OFFSET: Addr = 0xC0;
/// VM runtime helpers (frame setup, allocation).
const RUNTIME_BASE: Addr = layout::VM_TEXT_BASE + 0x2_0000;
/// Monitor code.
const SYNC_BASE: Addr = layout::VM_TEXT_BASE + 0x3_0000;
/// Per-method invoke helpers: hashing the callee spreads targets so
/// the interpreter's call-dispatch behaves polymorphically, as the
/// paper observes.
const INVOKE_HELPER_BASE: Addr = layout::VM_TEXT_BASE + 0x4_0000;

/// Native address of the interpreter helper that enters `method_key`
/// (a small hash of the method id).
pub(crate) fn invoke_helper_addr(method_key: u64) -> Addr {
    INVOKE_HELPER_BASE + (method_key % 1024) * 0x40
}

/// Native address of the handler for `opcode`.
pub(crate) fn handler_addr(opcode: u8) -> Addr {
    HANDLER_BASE + Addr::from(opcode) * HANDLER_STRIDE
}

/// Emitter modelling a C interpreter on a SPARC-class RISC.
///
/// The dispatch sequence is emitted at the *tail of the previous
/// bytecode's handler* (threaded dispatch): optimizing C compilers
/// replicate the `switch` back-edge into each case arm, which is what
/// lets the BTB learn per-opcode successor correlations instead of
/// thrashing on a single jump site.
pub(crate) struct InterpEmitter {
    /// Bytecode base address of the current method (class area).
    code_addr: Addr,
    /// Bytecode offset of the current instruction.
    pc: u32,
    /// Opcode byte (selects the handler).
    opcode: u8,
    /// Previous bytecode's opcode (owns the dispatch tail).
    prev_opcode: u8,
    /// Simulated address of the current frame header (hot).
    frame_addr: Addr,
    /// Folded continuation: skip the dispatch/prologue (picoJava-style
    /// folding groups up to four simple bytecodes under one dispatch).
    folded: bool,
    cur_pc: Addr,
    count: u64,
    next_reg: u8,
    last_dst: u8,
}

impl InterpEmitter {
    /// Creates an emitter for the bytecode at `code_addr + pc`,
    /// dispatched from `prev_opcode`'s handler tail, with the current
    /// frame header at `frame_addr`.
    pub(crate) fn new(
        code_addr: Addr,
        pc: u32,
        opcode: u8,
        prev_opcode: u8,
        frame_addr: Addr,
    ) -> Self {
        InterpEmitter {
            code_addr,
            pc,
            opcode,
            prev_opcode,
            frame_addr,
            folded: false,
            cur_pc: handler_addr(opcode),
            count: 0,
            next_reg: 8,
            last_dst: 8,
        }
    }

    /// Marks this bytecode as folded into the previous dispatch group
    /// (its `begin` emits only the operand fetch the folded handler
    /// still performs).
    pub(crate) fn folded(mut self) -> Self {
        self.folded = true;
        self
    }

    fn reg(&mut self) -> u8 {
        let r = self.next_reg;
        self.next_reg = if self.next_reg >= 15 {
            8
        } else {
            self.next_reg + 1
        };
        self.last_dst = r;
        r
    }

    fn step_pc(&mut self) -> Addr {
        let pc = self.cur_pc;
        self.cur_pc += 4;
        pc
    }

    fn emit(&mut self, sink: &mut dyn TraceSink, inst: NativeInst) {
        sink.accept(&inst);
        self.count += 1;
    }

    fn handler_load(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        let pc = self.step_pc();
        let dst = self.reg();
        self.emit(
            sink,
            NativeInst::load(pc, addr, size, Phase::InterpHandler).with_dst(dst),
        );
    }

    fn handler_store(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::store(pc, addr, size, Phase::InterpHandler).with_srcs(src, None),
        );
    }
}

impl Emit for InterpEmitter {
    fn count(&self) -> u64 {
        self.count
    }

    fn begin(&mut self, sink: &mut dyn TraceSink) {
        if self.folded {
            // Folded: the previous dispatch already selected a fused
            // handler; only the opcode byte is consumed (one load),
            // with no table lookup, no checks, no indirect jump.
            let bc = self.code_addr + Addr::from(self.pc);
            self.emit(
                sink,
                NativeInst::load(self.cur_pc, bc, 1, Phase::InterpHandler).with_dst(1),
            );
            self.cur_pc += 4;
            return;
        }
        // Dispatch: load the opcode byte (bytecode-as-data!), index
        // the handler table, jump through a register. The sequence
        // sits at the tail of the previous handler (threaded
        // dispatch), so each of the ~50 dispatch-jump sites lets the
        // BTB learn that opcode's most likely successor.
        let tail = handler_addr(self.prev_opcode) + DISPATCH_TAIL_OFFSET;
        let bc = self.code_addr + Addr::from(self.pc);
        self.emit(
            sink,
            NativeInst::load(tail, bc, 1, Phase::InterpDispatch).with_dst(1),
        );
        // Handler-table index computation.
        self.emit(
            sink,
            NativeInst::alu(tail + 4, Phase::InterpDispatch)
                .with_dst(2)
                .with_srcs(1, None),
        );
        // Virtual-pc increment.
        self.emit(
            sink,
            NativeInst::alu(tail + 8, Phase::InterpDispatch).with_dst(3),
        );
        // Operand-pointer setup for the handler.
        self.emit(
            sink,
            NativeInst::alu(tail + 12, Phase::InterpDispatch)
                .with_dst(4)
                .with_srcs(3, None),
        );
        // Pending-exception / quantum check: a highly-biased
        // not-taken branch every iteration of the dispatch loop.
        self.emit(
            sink,
            NativeInst::branch(
                tail + 16,
                DISPATCH_BASE + 0x80,
                false,
                Phase::InterpDispatch,
            ),
        );
        // The jump's target register was computed well before the
        // tail (interpreters software-pipeline the next-opcode load),
        // so the jump carries no outstanding dependence: it resolves
        // at issue, and only the *prediction* of its target matters.
        self.emit(
            sink,
            NativeInst::indirect_jump(tail + 20, handler_addr(self.opcode), Phase::InterpDispatch),
        );
        self.cur_pc = handler_addr(self.opcode);
        // Handler prologue: frame/operand-stack bookkeeping every
        // handler performs (stack-pointer reload, tag checks) — the
        // per-bytecode overhead that made JDK 1.1.6's interpreter
        // slow, and that amortizes dispatch mispredictions.
        let pc1 = self.step_pc();
        self.emit(sink, NativeInst::alu(pc1, Phase::InterpHandler).with_dst(5));
        let pc2 = self.step_pc();
        self.emit(
            sink,
            NativeInst::load(pc2, self.frame_addr, 4, Phase::InterpHandler).with_dst(6),
        );
        let pc3 = self.step_pc();
        self.emit(
            sink,
            NativeInst::alu(pc3, Phase::InterpHandler)
                .with_dst(7)
                .with_srcs(6, None),
        );
        let pc4 = self.step_pc();
        self.emit(sink, NativeInst::alu(pc4, Phase::InterpHandler).with_dst(5));
    }

    fn operand_fetch(&mut self, sink: &mut dyn TraceSink, n: u32) {
        // Immediates come from the bytecode stream: more data loads.
        for k in 0..n.div_ceil(4) {
            let addr = self.code_addr + Addr::from(self.pc) + 1 + Addr::from(k * 4);
            self.handler_load(sink, addr, 4.min(n as u8));
        }
    }

    fn stack_pop(&mut self, sink: &mut dyn TraceSink, addr: Addr) {
        self.handler_load(sink, addr, 4);
    }

    fn stack_push(&mut self, sink: &mut dyn TraceSink, addr: Addr) {
        self.handler_store(sink, addr, 4);
    }

    fn local_read(&mut self, sink: &mut dyn TraceSink, _n: usize, addr: Addr) {
        self.handler_load(sink, addr, 4);
    }

    fn local_write(&mut self, sink: &mut dyn TraceSink, _n: usize, addr: Addr) {
        self.handler_store(sink, addr, 4);
    }

    fn heap_load(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        self.handler_load(sink, addr, size);
    }

    fn heap_store(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        self.handler_store(sink, addr, size);
    }

    fn ref_store_barrier(&mut self, sink: &mut dyn TraceSink, card: Addr) -> u64 {
        // Address-to-card shift, then the unconditional dirty-byte
        // store (the classic two-instruction card barrier).
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::alu(pc, Phase::GcBarrier)
                .with_dst(24)
                .with_srcs(src, None),
        );
        let pc = self.step_pc();
        self.emit(
            sink,
            NativeInst::store(pc, card, 1, Phase::GcBarrier).with_srcs(24, None),
        );
        2
    }

    fn alu(&mut self, sink: &mut dyn TraceSink, class: InstClass) {
        let pc = self.step_pc();
        let (s1, s2) = (self.last_dst, self.next_reg);
        let dst = self.reg();
        self.emit(
            sink,
            NativeInst::new(pc, class, Phase::InterpHandler)
                .with_dst(dst)
                .with_srcs(s1, Some(s2)),
        );
    }

    fn null_check(&mut self, sink: &mut dyn TraceSink) {
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x40, false, Phase::InterpHandler).with_srcs(src, None),
        );
    }

    fn bounds_check(&mut self, sink: &mut dyn TraceSink) {
        self.alu(sink, InstClass::IntAlu);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x40, false, Phase::InterpHandler).with_srcs(src, None),
        );
    }

    fn cond_branch(&mut self, sink: &mut dyn TraceSink, taken: bool, _bc_target: u32) {
        // The handler's native branch direction mirrors the bytecode
        // branch: `if (cond) vpc = target; else vpc += len`.
        self.alu(sink, InstClass::IntAlu);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x20, taken, Phase::InterpHandler).with_srcs(src, None),
        );
        // vpc update.
        self.alu(sink, InstClass::IntAlu);
    }

    fn goto_(&mut self, sink: &mut dyn TraceSink, _bc_target: u32) {
        self.alu(sink, InstClass::IntAlu); // vpc = target
    }

    fn switch(&mut self, sink: &mut dyn TraceSink, _bc_target: u32, _ncases: usize) {
        // Bounds test + table read from the bytecode stream + vpc
        // update; the actual transfer is the next dispatch.
        self.alu(sink, InstClass::IntAlu);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x40, false, Phase::InterpHandler).with_srcs(src, None),
        );
        let table = self.code_addr + Addr::from(self.pc) + 11;
        self.handler_load(sink, table, 4);
        self.alu(sink, InstClass::IntAlu);
    }

    fn invoke(&mut self, sink: &mut dyn TraceSink, _kind: InvokeKind, entry: Addr) -> Addr {
        // Method-block lookup (always through pointers in an
        // interpreter, regardless of the bytecode's invoke kind).
        let mb = layout::VM_DATA_BASE + (entry % 0x8000);
        self.handler_load(sink, mb, 4);
        self.handler_load(sink, mb + 8, 4);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::indirect_call(pc, entry, Phase::InterpHandler).with_srcs(src, None),
        );
        let ret_to = pc + 4;
        self.cur_pc = entry;
        ret_to
    }

    fn ret(&mut self, sink: &mut dyn TraceSink, ret_to: Addr) {
        // Restore caller frame pointers, then return.
        let fp = layout::VM_DATA_BASE + 0x100;
        self.handler_load(sink, fp, 4);
        self.handler_load(sink, fp + 8, 4);
        let pc = self.step_pc();
        self.emit(sink, NativeInst::ret(pc, ret_to, Phase::InterpHandler));
    }

    fn frame_setup(&mut self, sink: &mut dyn TraceSink, nlocals: usize, locals_addr: Addr) {
        let mut pc = RUNTIME_BASE;
        let mut emit = |i: NativeInst, count: &mut u64| {
            sink.accept(&i);
            *count += 1;
        };
        for k in 0..3 {
            emit(
                NativeInst::alu(pc, Phase::Runtime).with_dst(16 + k),
                &mut self.count,
            );
            pc += 4;
        }
        for n in 0..nlocals.min(32) {
            emit(
                NativeInst::store(pc, locals_addr + 4 * n as u64, 4, Phase::Runtime),
                &mut self.count,
            );
            pc += 4;
        }
        emit(
            NativeInst::store(pc, layout::VM_DATA_BASE + 0x100, 4, Phase::Runtime),
            &mut self.count,
        );
    }

    fn sync_op(&mut self, sink: &mut dyn TraceSink, cost: LockCost, lock_addr: Addr) {
        emit_sync(sink, cost, lock_addr, &mut self.count);
    }

    fn alloc(&mut self, sink: &mut dyn TraceSink, addr: Addr, bytes: u32) {
        emit_alloc(sink, addr, bytes, &mut self.count);
    }
}

/// Shared monitor-path emission (same VM runtime code for both
/// engines).
pub(crate) fn emit_sync(
    sink: &mut dyn TraceSink,
    cost: LockCost,
    lock_addr: Addr,
    count: &mut u64,
) {
    let mut pc = SYNC_BASE;
    for k in 0..cost.loads {
        sink.accept(
            &NativeInst::load(pc, lock_addr + Addr::from(k % 4) * 8, 4, Phase::Sync).with_dst(20),
        );
        *count += 1;
        pc += 4;
    }
    for _ in 0..cost.stores {
        sink.accept(&NativeInst::store(pc, lock_addr, 4, Phase::Sync).with_srcs(20, None));
        *count += 1;
        pc += 4;
    }
    if cost.atomic {
        sink.accept(
            &NativeInst::alu(pc, Phase::Sync)
                .with_dst(21)
                .with_srcs(20, None),
        );
        *count += 1;
        pc += 4;
    }
    let alus = cost
        .cycles
        .saturating_sub(u64::from(cost.loads + cost.stores + u32::from(cost.atomic)))
        .min(32);
    for _ in 0..alus {
        sink.accept(&NativeInst::alu(pc, Phase::Sync));
        *count += 1;
        pc += 4;
    }
}

/// Shared allocation-path emission.
pub(crate) fn emit_alloc(sink: &mut dyn TraceSink, addr: Addr, bytes: u32, count: &mut u64) {
    let mut pc = RUNTIME_BASE + 0x400;
    let emit_one = |sink: &mut dyn TraceSink, i: NativeInst, count: &mut u64| {
        sink.accept(&i);
        *count += 1;
    };
    // Bump-pointer arithmetic.
    emit_one(
        sink,
        NativeInst::alu(pc, Phase::Runtime).with_dst(22),
        count,
    );
    pc += 4;
    emit_one(
        sink,
        NativeInst::alu(pc, Phase::Runtime)
            .with_dst(23)
            .with_srcs(22, None),
        count,
    );
    pc += 4;
    // Header stores + zeroing (capped; large arrays use block zeroing).
    emit_one(sink, NativeInst::store(pc, addr, 4, Phase::Runtime), count);
    pc += 4;
    emit_one(
        sink,
        NativeInst::store(pc, addr + 4, 4, Phase::Runtime),
        count,
    );
    pc += 4;
    let zero_stores = (bytes / 8).min(64);
    for k in 0..zero_stores {
        emit_one(
            sink,
            NativeInst::store(pc, addr + 8 + Addr::from(k) * 8, 8, Phase::Runtime),
            count,
        );
        pc += 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::{InstMix, RecordingSink};

    #[test]
    fn dispatch_emits_indirect_jump() {
        let mut r = RecordingSink::new();
        let mut e = InterpEmitter::new(layout::CLASS_AREA_BASE, 10, 11, 0, layout::STACK_BASE);
        e.begin(&mut r);
        assert_eq!(r.events.len(), 10); // 6 dispatch + 4 prologue
        assert_eq!(r.events[0].class, InstClass::Load);
        assert_eq!(r.events[0].mem.unwrap().addr, layout::CLASS_AREA_BASE + 10);
        assert_eq!(r.events[5].class, InstClass::IndirectJump);
        assert_eq!(r.events[5].ctrl.unwrap().target, handler_addr(11));
        assert_eq!(e.count(), 10);
    }

    #[test]
    fn distinct_opcodes_use_distinct_handlers() {
        assert_ne!(handler_addr(1), handler_addr(2));
        let mut r1 = RecordingSink::new();
        let mut e1 = InterpEmitter::new(layout::CLASS_AREA_BASE, 0, 1, 0, layout::STACK_BASE);
        e1.begin(&mut r1);
        e1.alu(&mut r1, InstClass::IntAlu);
        assert_eq!(r1.events[6].pc, handler_addr(1)); // first prologue inst
    }

    #[test]
    fn stack_traffic_is_memory_traffic() {
        let mut mix = InstMix::new();
        let mut e = InterpEmitter::new(layout::CLASS_AREA_BASE, 0, 11, 0, layout::STACK_BASE);
        e.begin(&mut mix);
        e.stack_pop(&mut mix, layout::STACK_BASE);
        e.stack_pop(&mut mix, layout::STACK_BASE + 4);
        e.alu(&mut mix, InstClass::IntAlu);
        e.stack_push(&mut mix, layout::STACK_BASE);
        // iadd: 6 dispatch + 4 prologue + 2 loads + 1 alu + 1 store.
        assert_eq!(mix.total(), 14);
        assert!(mix.memory_fraction() > 0.3);
    }

    #[test]
    fn invoke_is_indirect_and_pairs_with_ret() {
        let mut r = RecordingSink::new();
        let mut e = InterpEmitter::new(layout::CLASS_AREA_BASE, 0, 42, 0, layout::STACK_BASE);
        e.begin(&mut r);
        let entry = invoke_helper_addr(123);
        let ret_to = e.invoke(&mut r, InvokeKind::VirtualPoly, entry);
        let call = r
            .events
            .iter()
            .find(|i| i.class == InstClass::IndirectCall)
            .expect("indirect call");
        assert_eq!(call.ctrl.unwrap().target, entry);
        assert_eq!(ret_to, call.pc + 4);
        e.ret(&mut r, ret_to);
        let ret = r
            .events
            .iter()
            .find(|i| i.class == InstClass::Ret)
            .expect("ret");
        assert_eq!(ret.ctrl.unwrap().target, ret_to);
    }

    #[test]
    fn cond_branch_direction_mirrors_bytecode() {
        for taken in [true, false] {
            let mut r = RecordingSink::new();
            let mut e = InterpEmitter::new(layout::CLASS_AREA_BASE, 0, 24, 0, layout::STACK_BASE);
            e.cond_branch(&mut r, taken, 99);
            let br = r
                .events
                .iter()
                .find(|i| i.class == InstClass::CondBranch)
                .expect("branch");
            assert_eq!(br.ctrl.unwrap().taken, taken);
        }
    }

    #[test]
    fn sync_emission_matches_cost() {
        let mut r = RecordingSink::new();
        let mut count = 0;
        emit_sync(
            &mut r,
            LockCost::new(10, 2, 1, true),
            layout::HEAP_BASE,
            &mut count,
        );
        let loads = r
            .events
            .iter()
            .filter(|i| i.class == InstClass::Load)
            .count();
        let stores = r
            .events
            .iter()
            .filter(|i| i.class == InstClass::Store)
            .count();
        assert_eq!(loads, 2);
        assert_eq!(stores, 1);
        assert_eq!(count as usize, r.events.len());
        assert!(r.events.iter().all(|i| i.phase == Phase::Sync));
    }

    #[test]
    fn alloc_zeroing_scales_with_size_but_is_capped() {
        let mut small = RecordingSink::new();
        let mut c1 = 0;
        emit_alloc(&mut small, layout::HEAP_BASE, 16, &mut c1);
        let mut big = RecordingSink::new();
        let mut c2 = 0;
        emit_alloc(&mut big, layout::HEAP_BASE, 100_000, &mut c2);
        assert!(big.events.len() > small.events.len());
        assert!(big.events.len() <= 70, "zeroing capped");
    }

    #[test]
    fn operand_fetch_reads_bytecode_stream() {
        let mut r = RecordingSink::new();
        let mut e = InterpEmitter::new(layout::CLASS_AREA_BASE, 20, 1, 0, layout::STACK_BASE);
        e.operand_fetch(&mut r, 4);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].mem.unwrap().addr, layout::CLASS_AREA_BASE + 21);
        assert_eq!(
            jrt_trace::Region::classify(r.events[0].mem.unwrap().addr),
            Some(jrt_trace::Region::ClassArea)
        );
    }
}
