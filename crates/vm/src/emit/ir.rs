//! Trace emission for the register-IR execution tier.
//!
//! Two emitters live here:
//!
//! * [`IrInterpEmitter`] — the IR interpreter. Like the stack
//!   interpreter it is a threaded dispatch loop, but it walks the
//!   method's packed IR words (VM data) instead of the bytecode
//!   stream, its operand stack lives in a register file (push/pop are
//!   free, as in translated code), and fused pcs ride along without a
//!   dispatch of their own. Locals stay in memory — that is the
//!   residual traffic the register IR cannot remove without a
//!   translation tier.
//! * [`IrJitEmitter`] — a filter over [`JitEmitter`] for code the
//!   IR-backed translator installed: fused register moves disappear
//!   from the native stream, and elided pcs cost nothing at all.

use super::interp::{emit_alloc, emit_sync};
use super::{Emit, InvokeKind, JitEmitter};
use jrt_ir::PcPlan;
use jrt_sync::LockCost;
use jrt_trace::{layout, Addr, InstClass, NativeInst, Phase, TraceSink};

/// Base of the IR interpreter's handler table — its own text region
/// past the stack interpreter's handlers, runtime helpers, and
/// intrinsics, so the two tiers have disjoint I-footprints.
pub(crate) const IR_HANDLER_BASE: Addr = layout::VM_TEXT_BASE + 0x8_0000;
const IR_HANDLER_STRIDE: Addr = 0x100;
/// Offset of the replicated dispatch tail within each handler's slot
/// (mirrors the stack interpreter's threaded-dispatch layout).
const IR_DISPATCH_TAIL_OFFSET: Addr = 0xC0;

/// Native address of the IR handler for opcode `slot`.
pub(crate) fn ir_handler_addr(slot: u8) -> Addr {
    IR_HANDLER_BASE + Addr::from(slot) * IR_HANDLER_STRIDE
}

/// Emitter modelling the register-IR interpreter.
///
/// The per-pc [`PcPlan`] computed by lowering drives the cost:
/// `Exec` pcs pay a dispatch (IR-word fetches + decode + indirect
/// jump into the handler); `Covered` pcs emit only their own memory
/// and ALU micro-ops inside the covering handler; `Elided` pcs emit
/// nothing.
pub(crate) struct IrInterpEmitter {
    plan: PcPlan,
    /// Handler slot: the pc's IR opcode (`Exec`) or the slot whose
    /// handler text hosts this pc's fused micro-ops (`Covered`).
    slot: u8,
    /// Previous dispatch's handler slot (owns the dispatch tail).
    prev_slot: u8,
    /// Simulated VM-data base address of the method's packed IR words.
    ir_base: Addr,
    cur_pc: Addr,
    count: u64,
    next_reg: u8,
    last_dst: u8,
}

impl IrInterpEmitter {
    /// Creates an emitter for one bytecode whose lowering plan is
    /// `plan`, handled at slot `slot`, dispatched from `prev_slot`'s
    /// tail, with the method's IR words at `ir_base`.
    pub(crate) fn new(plan: PcPlan, slot: u8, prev_slot: u8, ir_base: Addr) -> Self {
        IrInterpEmitter {
            plan,
            slot,
            prev_slot,
            ir_base,
            cur_pc: ir_handler_addr(slot),
            count: 0,
            next_reg: 8,
            last_dst: 8,
        }
    }

    fn elided(&self) -> bool {
        matches!(self.plan, PcPlan::Elided)
    }

    fn reg(&mut self) -> u8 {
        let r = self.next_reg;
        self.next_reg = if self.next_reg >= 15 {
            8
        } else {
            self.next_reg + 1
        };
        self.last_dst = r;
        r
    }

    fn step_pc(&mut self) -> Addr {
        let pc = self.cur_pc;
        self.cur_pc += 4;
        pc
    }

    fn emit(&mut self, sink: &mut dyn TraceSink, inst: NativeInst) {
        sink.accept(&inst);
        self.count += 1;
    }

    fn handler_load(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        let pc = self.step_pc();
        let dst = self.reg();
        self.emit(
            sink,
            NativeInst::load(pc, addr, size, Phase::InterpHandler).with_dst(dst),
        );
    }

    fn handler_store(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::store(pc, addr, size, Phase::InterpHandler).with_srcs(src, None),
        );
    }

    fn handler_alu(&mut self, sink: &mut dyn TraceSink, class: InstClass) {
        let pc = self.step_pc();
        let (s1, s2) = (self.last_dst, self.next_reg);
        let dst = self.reg();
        self.emit(
            sink,
            NativeInst::new(pc, class, Phase::InterpHandler)
                .with_dst(dst)
                .with_srcs(s1, Some(s2)),
        );
    }
}

impl Emit for IrInterpEmitter {
    fn count(&self) -> u64 {
        self.count
    }

    fn begin(&mut self, sink: &mut dyn TraceSink) {
        let PcPlan::Exec { word_off, words } = self.plan else {
            // Covered and elided pcs dispatch nothing: their work (if
            // any) rides inside the covering handler.
            return;
        };
        // Dispatch from the previous handler's tail: fetch the packed
        // IR words (data loads from the IR buffer in VM data), decode
        // the operand bytes, jump through a register into the handler.
        let tail = ir_handler_addr(self.prev_slot) + IR_DISPATCH_TAIL_OFFSET;
        for k in 0..u32::from(words) {
            self.emit(
                sink,
                NativeInst::load(
                    tail + Addr::from(4 * k),
                    self.ir_base + Addr::from(word_off + k) * 4,
                    4,
                    Phase::InterpDispatch,
                )
                .with_dst(1),
            );
        }
        let off = Addr::from(4 * u32::from(words));
        self.emit(
            sink,
            NativeInst::alu(tail + off, Phase::InterpDispatch)
                .with_dst(2)
                .with_srcs(1, None),
        );
        self.emit(
            sink,
            NativeInst::indirect_jump(
                tail + off + 4,
                ir_handler_addr(self.slot),
                Phase::InterpDispatch,
            ),
        );
        self.cur_pc = ir_handler_addr(self.slot);
    }

    fn operand_fetch(&mut self, _sink: &mut dyn TraceSink, _n: u32) {
        // Operands travel inside the IR words fetched at dispatch.
    }

    fn stack_pop(&mut self, _sink: &mut dyn TraceSink, _addr: Addr) {
        // The IR interpreter keeps the operand stack in registers.
    }

    fn stack_push(&mut self, _sink: &mut dyn TraceSink, _addr: Addr) {}

    fn local_read(&mut self, sink: &mut dyn TraceSink, _n: usize, addr: Addr) {
        if !self.elided() {
            self.handler_load(sink, addr, 4);
        }
    }

    fn local_write(&mut self, sink: &mut dyn TraceSink, _n: usize, addr: Addr) {
        if !self.elided() {
            self.handler_store(sink, addr, 4);
        }
    }

    fn heap_load(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        if !self.elided() {
            self.handler_load(sink, addr, size);
        }
    }

    fn heap_store(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        if !self.elided() {
            self.handler_store(sink, addr, size);
        }
    }

    fn ref_store_barrier(&mut self, sink: &mut dyn TraceSink, card: Addr) -> u64 {
        // Fusion cannot remove a barrier whose store survived, but an
        // elided pc has no store and therefore no barrier either.
        if self.elided() {
            return 0;
        }
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::alu(pc, Phase::GcBarrier)
                .with_dst(24)
                .with_srcs(src, None),
        );
        let pc = self.step_pc();
        self.emit(
            sink,
            NativeInst::store(pc, card, 1, Phase::GcBarrier).with_srcs(24, None),
        );
        2
    }

    fn alu(&mut self, sink: &mut dyn TraceSink, class: InstClass) {
        if !self.elided() {
            self.handler_alu(sink, class);
        }
    }

    fn null_check(&mut self, sink: &mut dyn TraceSink) {
        if self.elided() {
            return;
        }
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x40, false, Phase::InterpHandler).with_srcs(src, None),
        );
    }

    fn bounds_check(&mut self, sink: &mut dyn TraceSink) {
        if self.elided() {
            return;
        }
        self.handler_alu(sink, InstClass::IntAlu);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x40, false, Phase::InterpHandler).with_srcs(src, None),
        );
    }

    fn cond_branch(&mut self, sink: &mut dyn TraceSink, taken: bool, _bc_target: u32) {
        // Compare, branch with the bytecode direction, IR-cursor
        // update — branch pcs are always `Exec`.
        self.handler_alu(sink, InstClass::IntAlu);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x20, taken, Phase::InterpHandler).with_srcs(src, None),
        );
        self.handler_alu(sink, InstClass::IntAlu);
    }

    fn goto_(&mut self, sink: &mut dyn TraceSink, _bc_target: u32) {
        self.handler_alu(sink, InstClass::IntAlu); // IR cursor = target
    }

    fn switch(&mut self, sink: &mut dyn TraceSink, _bc_target: u32, _ncases: usize) {
        // Bounds test + table read from the IR words + cursor update.
        self.handler_alu(sink, InstClass::IntAlu);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x40, false, Phase::InterpHandler).with_srcs(src, None),
        );
        let table = match self.plan {
            PcPlan::Exec { word_off, .. } => self.ir_base + Addr::from(word_off) * 4 + 8,
            _ => self.ir_base,
        };
        self.handler_load(sink, table, 4);
        self.handler_alu(sink, InstClass::IntAlu);
    }

    fn invoke(&mut self, sink: &mut dyn TraceSink, _kind: InvokeKind, entry: Addr) -> Addr {
        // Method-block lookup through pointers, same as the stack
        // interpreter's call path.
        let mb = layout::VM_DATA_BASE + (entry % 0x8000);
        self.handler_load(sink, mb, 4);
        self.handler_load(sink, mb + 8, 4);
        let pc = self.step_pc();
        let src = self.last_dst;
        self.emit(
            sink,
            NativeInst::indirect_call(pc, entry, Phase::InterpHandler).with_srcs(src, None),
        );
        let ret_to = pc + 4;
        self.cur_pc = entry;
        ret_to
    }

    fn ret(&mut self, sink: &mut dyn TraceSink, ret_to: Addr) {
        let fp = layout::VM_DATA_BASE + 0x100;
        self.handler_load(sink, fp, 4);
        self.handler_load(sink, fp + 8, 4);
        let pc = self.step_pc();
        self.emit(sink, NativeInst::ret(pc, ret_to, Phase::InterpHandler));
    }

    fn frame_setup(&mut self, sink: &mut dyn TraceSink, nlocals: usize, locals_addr: Addr) {
        // Same VM runtime helper as the stack interpreter: locals are
        // memory in both interpreted tiers.
        let mut pc = layout::VM_TEXT_BASE + 0x2_0000;
        let mut emit = |i: NativeInst, count: &mut u64| {
            sink.accept(&i);
            *count += 1;
        };
        for k in 0..3 {
            emit(
                NativeInst::alu(pc, Phase::Runtime).with_dst(16 + k),
                &mut self.count,
            );
            pc += 4;
        }
        for n in 0..nlocals.min(32) {
            emit(
                NativeInst::store(pc, locals_addr + 4 * n as u64, 4, Phase::Runtime),
                &mut self.count,
            );
            pc += 4;
        }
        emit(
            NativeInst::store(pc, layout::VM_DATA_BASE + 0x100, 4, Phase::Runtime),
            &mut self.count,
        );
    }

    fn sync_op(&mut self, sink: &mut dyn TraceSink, cost: LockCost, lock_addr: Addr) {
        emit_sync(sink, cost, lock_addr, &mut self.count);
    }

    fn alloc(&mut self, sink: &mut dyn TraceSink, addr: Addr, bytes: u32) {
        emit_alloc(sink, addr, bytes, &mut self.count);
    }
}

/// Emitter for code installed by the IR-backed translator: delegates
/// to [`JitEmitter`] but suppresses what fusion removed — covered
/// register moves and everything at elided pcs.
pub(crate) struct IrJitEmitter<'a> {
    inner: JitEmitter<'a>,
    plan: PcPlan,
    reg_locals: usize,
}

impl<'a> IrJitEmitter<'a> {
    /// Wraps `inner` with the lowering plan for the current pc.
    pub(crate) fn new(inner: JitEmitter<'a>, plan: PcPlan, reg_locals: usize) -> Self {
        IrJitEmitter {
            inner,
            plan,
            reg_locals,
        }
    }

    fn elided(&self) -> bool {
        matches!(self.plan, PcPlan::Elided)
    }
}

impl Emit for IrJitEmitter<'_> {
    fn count(&self) -> u64 {
        self.inner.count()
    }

    fn begin(&mut self, sink: &mut dyn TraceSink) {
        self.inner.begin(sink);
    }

    fn operand_fetch(&mut self, sink: &mut dyn TraceSink, n: u32) {
        self.inner.operand_fetch(sink, n);
    }

    fn stack_pop(&mut self, sink: &mut dyn TraceSink, addr: Addr) {
        // Always forwarded: the inner emitter tracks register-stack
        // depth through these (they emit nothing).
        self.inner.stack_pop(sink, addr);
    }

    fn stack_push(&mut self, sink: &mut dyn TraceSink, addr: Addr) {
        self.inner.stack_push(sink, addr);
    }

    fn local_read(&mut self, sink: &mut dyn TraceSink, n: usize, addr: Addr) {
        // A covered local access whose slot is register-allocated was
        // fused into its consumer: the move disappears. Spilled locals
        // still hit memory even when fused.
        if self.elided() || (matches!(self.plan, PcPlan::Covered) && n < self.reg_locals) {
            return;
        }
        self.inner.local_read(sink, n, addr);
    }

    fn local_write(&mut self, sink: &mut dyn TraceSink, n: usize, addr: Addr) {
        if self.elided() || (matches!(self.plan, PcPlan::Covered) && n < self.reg_locals) {
            return;
        }
        self.inner.local_write(sink, n, addr);
    }

    fn heap_load(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        if !self.elided() {
            self.inner.heap_load(sink, addr, size);
        }
    }

    fn heap_store(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        if !self.elided() {
            self.inner.heap_store(sink, addr, size);
        }
    }

    fn ref_store_barrier(&mut self, sink: &mut dyn TraceSink, card: Addr) -> u64 {
        if self.elided() {
            0
        } else {
            self.inner.ref_store_barrier(sink, card)
        }
    }

    fn alu(&mut self, sink: &mut dyn TraceSink, class: InstClass) {
        if !self.elided() {
            self.inner.alu(sink, class);
        }
    }

    fn null_check(&mut self, sink: &mut dyn TraceSink) {
        if !self.elided() {
            self.inner.null_check(sink);
        }
    }

    fn bounds_check(&mut self, sink: &mut dyn TraceSink) {
        if !self.elided() {
            self.inner.bounds_check(sink);
        }
    }

    fn cond_branch(&mut self, sink: &mut dyn TraceSink, taken: bool, bc_target: u32) {
        self.inner.cond_branch(sink, taken, bc_target);
    }

    fn goto_(&mut self, sink: &mut dyn TraceSink, bc_target: u32) {
        self.inner.goto_(sink, bc_target);
    }

    fn switch(&mut self, sink: &mut dyn TraceSink, bc_target: u32, ncases: usize) {
        self.inner.switch(sink, bc_target, ncases);
    }

    fn invoke(&mut self, sink: &mut dyn TraceSink, kind: InvokeKind, entry: Addr) -> Addr {
        self.inner.invoke(sink, kind, entry)
    }

    fn ret(&mut self, sink: &mut dyn TraceSink, ret_to: Addr) {
        self.inner.ret(sink, ret_to);
    }

    fn frame_setup(&mut self, sink: &mut dyn TraceSink, nlocals: usize, locals_addr: Addr) {
        self.inner.frame_setup(sink, nlocals, locals_addr);
    }

    fn sync_op(&mut self, sink: &mut dyn TraceSink, cost: LockCost, lock_addr: Addr) {
        self.inner.sync_op(sink, cost, lock_addr);
    }

    fn alloc(&mut self, sink: &mut dyn TraceSink, addr: Addr, bytes: u32) {
        self.inner.alloc(sink, addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::{InstMix, RecordingSink, Region};

    #[test]
    fn exec_dispatch_fetches_ir_words_and_jumps() {
        let mut r = RecordingSink::new();
        let ir_base = layout::VM_DATA_BASE + 0x100_0000;
        let mut e = IrInterpEmitter::new(
            PcPlan::Exec {
                word_off: 3,
                words: 2,
            },
            7,
            1,
            ir_base,
        );
        e.begin(&mut r);
        // 2 word fetches + decode + indirect jump.
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.events[0].class, InstClass::Load);
        assert_eq!(r.events[0].mem.unwrap().addr, ir_base + 12);
        assert_eq!(
            Region::classify(r.events[0].mem.unwrap().addr),
            Some(Region::VmData)
        );
        assert_eq!(r.events[3].class, InstClass::IndirectJump);
        assert_eq!(r.events[3].ctrl.unwrap().target, ir_handler_addr(7));
        // Dispatch text sits at the previous handler's tail, in its
        // own region past the stack interpreter's handlers.
        assert_eq!(r.events[0].pc, ir_handler_addr(1) + IR_DISPATCH_TAIL_OFFSET);
    }

    #[test]
    fn covered_pc_skips_dispatch_but_keeps_micro_ops() {
        let mut mix = InstMix::new();
        let mut e = IrInterpEmitter::new(PcPlan::Covered, 6, 0, layout::VM_DATA_BASE);
        e.begin(&mut mix);
        assert_eq!(mix.total(), 0, "no dispatch for covered pcs");
        e.local_read(&mut mix, 0, layout::STACK_BASE);
        e.alu(&mut mix, InstClass::IntAlu);
        assert_eq!(mix.total(), 2, "memory and ALU micro-ops still run");
    }

    #[test]
    fn elided_pc_emits_nothing() {
        let mut mix = InstMix::new();
        let mut e = IrInterpEmitter::new(PcPlan::Elided, 0, 0, layout::VM_DATA_BASE);
        e.begin(&mut mix);
        e.local_read(&mut mix, 0, layout::STACK_BASE);
        e.alu(&mut mix, InstClass::IntAlu);
        e.stack_push(&mut mix, layout::STACK_BASE);
        assert_eq!(mix.total(), 0);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn ir_stack_traffic_stays_in_registers() {
        // The fused iadd under the IR interpreter: dispatch (1 word +
        // decode + jump) + two local reads + alu + local write, with
        // zero operand-stack memory traffic.
        let mut mix = InstMix::new();
        let mut e = IrInterpEmitter::new(
            PcPlan::Exec {
                word_off: 0,
                words: 1,
            },
            6,
            6,
            layout::VM_DATA_BASE,
        );
        e.begin(&mut mix);
        e.stack_pop(&mut mix, layout::STACK_BASE);
        e.stack_pop(&mut mix, layout::STACK_BASE + 4);
        e.alu(&mut mix, InstClass::IntAlu);
        e.stack_push(&mut mix, layout::STACK_BASE);
        // 3 dispatch + 1 alu; compare 14 for the stack interpreter.
        assert_eq!(mix.total(), 4);
    }

    #[test]
    fn ir_handlers_are_disjoint_from_stack_handlers() {
        assert!(ir_handler_addr(0) > super::super::interp::handler_addr(255));
    }

    #[test]
    fn ir_jit_suppresses_covered_register_moves() {
        let addr_of = |pc: u32| layout::CODE_CACHE_BASE + 0x100 + Addr::from(pc) * 8;
        let mut r = RecordingSink::new();
        let inner = JitEmitter::new(&addr_of, 0, 0, 6);
        let mut e = IrJitEmitter::new(inner, PcPlan::Covered, 6);
        e.local_read(&mut r, 0, layout::STACK_BASE); // register-allocated: fused away
        e.local_read(&mut r, 10, layout::STACK_BASE + 40); // spilled: still a load
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].class, InstClass::Load);
    }

    #[test]
    fn ir_jit_elided_pc_is_free_but_tracks_depth() {
        let addr_of = |pc: u32| layout::CODE_CACHE_BASE + 0x100 + Addr::from(pc) * 8;
        let mut r = RecordingSink::new();
        let inner = JitEmitter::new(&addr_of, 0, 0, 6);
        let mut e = IrJitEmitter::new(inner, PcPlan::Elided, 6);
        e.begin(&mut r);
        e.alu(&mut r, InstClass::IntAlu);
        e.stack_push(&mut r, layout::STACK_BASE);
        assert_eq!(r.events.len(), 0);
    }
}
