//! Trace emission for JIT-translated native code.

use super::interp::{emit_alloc, emit_sync};
use super::{Emit, InvokeKind};
use jrt_sync::LockCost;
use jrt_trace::{Addr, InstClass, NativeInst, Phase, TraceSink};

/// Register assigned to operand-stack depth `d`: translated code keeps
/// the expression stack in registers (the paper's explanation for the
/// JIT mode's lower memory-access frequency).
fn stack_reg(depth: usize) -> u8 {
    8 + (depth % 16) as u8
}

fn local_reg(n: usize) -> u8 {
    1 + n as u8
}

/// Emitter modelling execution of code the translator installed in
/// the code cache. `addr_of` maps bytecode offsets to installed
/// native addresses (provided by the
/// [`CompiledMethod`](crate::jit::CompiledMethod)).
pub(crate) struct JitEmitter<'a> {
    addr_of: &'a dyn Fn(u32) -> Addr,
    cur_pc: Addr,
    depth: usize,
    /// Leading locals the translation tier keeps in registers; the
    /// rest spill to the frame.
    reg_locals: usize,
    count: u64,
}

impl<'a> JitEmitter<'a> {
    /// Creates an emitter positioned at the installed code for the
    /// bytecode at `pc`, with the operand stack currently `depth`
    /// slots deep and the method's first `reg_locals` locals held in
    /// registers.
    pub(crate) fn new(
        addr_of: &'a dyn Fn(u32) -> Addr,
        pc: u32,
        depth: usize,
        reg_locals: usize,
    ) -> Self {
        JitEmitter {
            addr_of,
            cur_pc: addr_of(pc),
            depth,
            reg_locals,
            count: 0,
        }
    }

    fn step_pc(&mut self) -> Addr {
        let pc = self.cur_pc;
        self.cur_pc += 4;
        pc
    }

    fn emit(&mut self, sink: &mut dyn TraceSink, inst: NativeInst) {
        sink.accept(&inst);
        self.count += 1;
    }
}

impl Emit for JitEmitter<'_> {
    fn count(&self) -> u64 {
        self.count
    }

    fn begin(&mut self, _sink: &mut dyn TraceSink) {
        // No dispatch: control simply flows to the installed code.
    }

    fn operand_fetch(&mut self, _sink: &mut dyn TraceSink, _n: u32) {
        // Immediates were baked into the generated instructions.
    }

    fn stack_pop(&mut self, _sink: &mut dyn TraceSink, _addr: Addr) {
        self.depth = self.depth.saturating_sub(1);
    }

    fn stack_push(&mut self, _sink: &mut dyn TraceSink, _addr: Addr) {
        self.depth += 1;
    }

    fn local_read(&mut self, sink: &mut dyn TraceSink, n: usize, addr: Addr) {
        let pc = self.step_pc();
        let dst = stack_reg(self.depth);
        if n < self.reg_locals {
            // Register-to-register move.
            self.emit(
                sink,
                NativeInst::alu(pc, Phase::NativeExec)
                    .with_dst(dst)
                    .with_srcs(local_reg(n), None),
            );
        } else {
            self.emit(
                sink,
                NativeInst::load(pc, addr, 4, Phase::NativeExec).with_dst(dst),
            );
        }
    }

    fn local_write(&mut self, sink: &mut dyn TraceSink, n: usize, addr: Addr) {
        let pc = self.step_pc();
        let src = stack_reg(self.depth.saturating_sub(1));
        if n < self.reg_locals {
            self.emit(
                sink,
                NativeInst::alu(pc, Phase::NativeExec)
                    .with_dst(local_reg(n))
                    .with_srcs(src, None),
            );
        } else {
            self.emit(
                sink,
                NativeInst::store(pc, addr, 4, Phase::NativeExec).with_srcs(src, None),
            );
        }
    }

    fn heap_load(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        let pc = self.step_pc();
        let base = stack_reg(self.depth.saturating_sub(1));
        let dst = stack_reg(self.depth);
        self.emit(
            sink,
            NativeInst::load(pc, addr, size, Phase::NativeExec)
                .with_dst(dst)
                .with_srcs(base, None),
        );
    }

    fn heap_store(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8) {
        let pc = self.step_pc();
        let src = stack_reg(self.depth.saturating_sub(1));
        self.emit(
            sink,
            NativeInst::store(pc, addr, size, Phase::NativeExec).with_srcs(src, None),
        );
    }

    fn ref_store_barrier(&mut self, sink: &mut dyn TraceSink, card: Addr) -> u64 {
        // Translated code inlines the same two-instruction card
        // barrier after every reference store.
        let pc = self.step_pc();
        let src = stack_reg(self.depth.saturating_sub(1));
        self.emit(
            sink,
            NativeInst::alu(pc, Phase::GcBarrier)
                .with_dst(24)
                .with_srcs(src, None),
        );
        let pc = self.step_pc();
        self.emit(
            sink,
            NativeInst::store(pc, card, 1, Phase::GcBarrier).with_srcs(24, None),
        );
        2
    }

    fn alu(&mut self, sink: &mut dyn TraceSink, class: InstClass) {
        let pc = self.step_pc();
        // Binary op over the two top stack registers: a real
        // register-allocated dependence chain.
        let s1 = stack_reg(self.depth.saturating_sub(1));
        let s2 = stack_reg(self.depth.saturating_sub(2));
        self.emit(
            sink,
            NativeInst::new(pc, class, Phase::NativeExec)
                .with_dst(s2)
                .with_srcs(s1, Some(s2)),
        );
    }

    fn null_check(&mut self, sink: &mut dyn TraceSink) {
        let pc = self.step_pc();
        let src = stack_reg(self.depth.saturating_sub(1));
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x200, false, Phase::NativeExec).with_srcs(src, None),
        );
    }

    fn bounds_check(&mut self, sink: &mut dyn TraceSink) {
        let pc = self.step_pc();
        let src = stack_reg(self.depth.saturating_sub(1));
        self.emit(
            sink,
            NativeInst::new(pc, InstClass::IntAlu, Phase::NativeExec)
                .with_dst(30)
                .with_srcs(src, None),
        );
        let pc = self.step_pc();
        self.emit(
            sink,
            NativeInst::branch(pc, pc + 0x200, false, Phase::NativeExec).with_srcs(30, None),
        );
    }

    fn cond_branch(&mut self, sink: &mut dyn TraceSink, taken: bool, bc_target: u32) {
        let pc = self.step_pc();
        let src = stack_reg(self.depth.saturating_sub(1));
        let target = (self.addr_of)(bc_target);
        self.emit(
            sink,
            NativeInst::branch(pc, target, taken, Phase::NativeExec).with_srcs(src, None),
        );
        if taken {
            self.cur_pc = target;
        }
    }

    fn goto_(&mut self, sink: &mut dyn TraceSink, bc_target: u32) {
        let pc = self.step_pc();
        let target = (self.addr_of)(bc_target);
        self.emit(sink, NativeInst::jump(pc, target, Phase::NativeExec));
        self.cur_pc = target;
    }

    fn switch(&mut self, sink: &mut dyn TraceSink, bc_target: u32, _ncases: usize) {
        // Translated tableswitch: bounds check, table load, indirect
        // jump — the JIT mode's residual indirect branches.
        self.bounds_check(sink);
        let pc = self.step_pc();
        let table = pc + 0x100;
        self.emit(
            sink,
            NativeInst::load(pc, table, 4, Phase::NativeExec).with_dst(29),
        );
        let pc = self.step_pc();
        let target = (self.addr_of)(bc_target);
        self.emit(
            sink,
            NativeInst::indirect_jump(pc, target, Phase::NativeExec).with_srcs(29, None),
        );
        self.cur_pc = target;
    }

    fn invoke(&mut self, sink: &mut dyn TraceSink, kind: InvokeKind, entry: Addr) -> Addr {
        match kind {
            InvokeKind::Direct | InvokeKind::VirtualMono => {
                // Devirtualized / static: one direct call (mono sites
                // keep an inline class guard).
                if kind == InvokeKind::VirtualMono {
                    let pc = self.step_pc();
                    self.emit(
                        sink,
                        NativeInst::branch(pc, pc + 0x200, false, Phase::NativeExec),
                    );
                }
                let pc = self.step_pc();
                self.emit(sink, NativeInst::call(pc, entry, Phase::NativeExec));
                self.cur_pc = entry;
                pc + 4
            }
            InvokeKind::VirtualPoly => {
                // vtable dispatch: class word load, vtable entry load
                // (both in VM data), indirect call.
                let vtable = jrt_trace::layout::VM_DATA_BASE + (entry & 0xFFFF);
                let pc = self.step_pc();
                self.emit(
                    sink,
                    NativeInst::load(pc, vtable, 4, Phase::NativeExec).with_dst(28),
                );
                let pc = self.step_pc();
                self.emit(
                    sink,
                    NativeInst::load(pc, vtable + 0x40, 4, Phase::NativeExec)
                        .with_dst(29)
                        .with_srcs(28, None),
                );
                let pc = self.step_pc();
                self.emit(
                    sink,
                    NativeInst::indirect_call(pc, entry, Phase::NativeExec).with_srcs(29, None),
                );
                self.cur_pc = entry;
                pc + 4
            }
        }
    }

    fn ret(&mut self, sink: &mut dyn TraceSink, ret_to: Addr) {
        let pc = self.step_pc();
        self.emit(sink, NativeInst::ret(pc, ret_to, Phase::NativeExec));
        self.cur_pc = ret_to;
    }

    fn frame_setup(&mut self, sink: &mut dyn TraceSink, nlocals: usize, locals_addr: Addr) {
        // Translated prologue: register-window style, much lighter
        // than the interpreter's frame build.
        let pc = self.step_pc();
        self.emit(sink, NativeInst::alu(pc, Phase::Runtime).with_dst(31));
        let pc = self.step_pc();
        self.emit(sink, NativeInst::alu(pc, Phase::Runtime));
        // Only spilled locals (beyond the register file) hit memory.
        for n in self.reg_locals..nlocals.min(self.reg_locals + 8) {
            let pc = self.step_pc();
            self.emit(
                sink,
                NativeInst::store(pc, locals_addr + 4 * n as u64, 4, Phase::Runtime),
            );
        }
    }

    fn sync_op(&mut self, sink: &mut dyn TraceSink, cost: LockCost, lock_addr: Addr) {
        emit_sync(sink, cost, lock_addr, &mut self.count);
    }

    fn alloc(&mut self, sink: &mut dyn TraceSink, addr: Addr, bytes: u32) {
        emit_alloc(sink, addr, bytes, &mut self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_trace::{layout, InstMix, RecordingSink};

    fn addr_of(pc: u32) -> Addr {
        layout::CODE_CACHE_BASE + 0x100 + Addr::from(pc) * 8
    }

    #[test]
    fn stack_ops_emit_no_memory_traffic() {
        let mut mix = InstMix::new();
        let f = addr_of;
        let mut e = JitEmitter::new(&f, 0, 0, 6);
        e.begin(&mut mix);
        e.stack_push(&mut mix, 0);
        e.stack_push(&mut mix, 0);
        e.alu(&mut mix, InstClass::IntAlu);
        e.stack_pop(&mut mix, 0);
        // iadd compiles to exactly one ALU op.
        assert_eq!(mix.total(), 1);
        assert_eq!(mix.memory_fraction(), 0.0);
    }

    #[test]
    fn code_addresses_live_in_code_cache() {
        let mut r = RecordingSink::new();
        let f = addr_of;
        let mut e = JitEmitter::new(&f, 12, 0, 6);
        e.alu(&mut r, InstClass::IntAlu);
        assert_eq!(
            jrt_trace::Region::classify(r.events[0].pc),
            Some(jrt_trace::Region::CodeCache)
        );
        assert_eq!(r.events[0].pc, addr_of(12));
    }

    #[test]
    fn leading_locals_are_registers_others_spill() {
        let mut r = RecordingSink::new();
        let f = addr_of;
        let mut e = JitEmitter::new(&f, 0, 0, 6);
        e.local_read(&mut r, 0, layout::STACK_BASE);
        e.local_read(&mut r, 10, layout::STACK_BASE + 40);
        assert_eq!(r.events[0].class, InstClass::IntAlu);
        assert_eq!(r.events[1].class, InstClass::Load);
    }

    #[test]
    fn branches_target_translated_addresses() {
        let mut r = RecordingSink::new();
        let f = addr_of;
        let mut e = JitEmitter::new(&f, 0, 1, 6);
        e.cond_branch(&mut r, true, 40);
        assert_eq!(r.events[0].ctrl.unwrap().target, addr_of(40));
        assert!(r.events[0].ctrl.unwrap().taken);
    }

    #[test]
    fn mono_calls_are_direct_poly_calls_indirect() {
        let f = addr_of;
        let mut r = RecordingSink::new();
        let mut e = JitEmitter::new(&f, 0, 0, 6);
        e.invoke(&mut r, InvokeKind::VirtualMono, 0x0200_9000);
        assert!(r.events.iter().any(|i| i.class == InstClass::Call));
        assert!(!r.events.iter().any(|i| i.class == InstClass::IndirectCall));

        let mut r2 = RecordingSink::new();
        let mut e2 = JitEmitter::new(&f, 0, 0, 6);
        e2.invoke(&mut r2, InvokeKind::VirtualPoly, 0x0200_9000);
        assert!(r2.events.iter().any(|i| i.class == InstClass::IndirectCall));
    }

    #[test]
    fn call_ret_addresses_pair() {
        let f = addr_of;
        let mut r = RecordingSink::new();
        let mut e = JitEmitter::new(&f, 0, 0, 6);
        let ret_to = e.invoke(&mut r, InvokeKind::Direct, 0x0200_9000);
        e.ret(&mut r, ret_to);
        let ret = r.events.iter().find(|i| i.class == InstClass::Ret).unwrap();
        assert_eq!(ret.ctrl.unwrap().target, ret_to);
    }

    #[test]
    fn switch_keeps_an_indirect_jump() {
        let f = addr_of;
        let mut r = RecordingSink::new();
        let mut e = JitEmitter::new(&f, 0, 1, 6);
        e.switch(&mut r, 16, 5);
        assert!(r.events.iter().any(|i| i.class == InstClass::IndirectJump));
    }
}
