//! Native-trace emission for the two execution engines.
//!
//! Both engines run the same semantic core ([`crate::step`]); an
//! [`Emit`] implementation translates each semantic micro-action into
//! the native instructions the corresponding real engine would
//! execute:
//!
//! * [`InterpEmitter`] — the `switch`-threaded interpreter: every
//!   bytecode starts with a dispatch (opcode *data* load from the
//!   bytecode area + table lookup + register-indirect jump into the
//!   handler), operands live on an in-memory operand stack, and
//!   immediates are fetched from the bytecode stream (more data
//!   loads);
//! * [`JitEmitter`] — translated native code: instructions are fetched
//!   from the method's code-cache addresses (per-method I-footprint),
//!   operand-stack and leading locals live in registers, bytecode
//!   branches become direct native branches, and calls are direct
//!   when the site is monomorphic;
//! * [`IrInterpEmitter`] / [`IrJitEmitter`] — the register-IR tier
//!   (`emit::ir`): the IR interpreter dispatches packed IR words with
//!   the operand stack in registers, and the IR-backed JIT filter
//!   drops the traffic fusion removed from translated code.

pub(crate) mod interp;
pub(crate) mod ir;
pub(crate) mod jit;

pub(crate) use interp::InterpEmitter;
pub(crate) use ir::{IrInterpEmitter, IrJitEmitter};
pub(crate) use jit::JitEmitter;

use jrt_sync::LockCost;
use jrt_trace::{Addr, InstClass, TraceSink};

/// The flavor of a method invocation, which decides the native call
/// instruction the engines emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InvokeKind {
    /// `invokestatic` / `invokespecial`: direct call.
    Direct,
    /// `invokevirtual` at a site that has only ever seen one target:
    /// the JIT devirtualizes it into a direct call.
    VirtualMono,
    /// `invokevirtual` with multiple observed targets: indirect call.
    VirtualPoly,
}

/// Emission interface shared by the engines. One emitter instance
/// lives for the duration of a single bytecode.
pub(crate) trait Emit {
    /// Instructions emitted so far by this emitter.
    fn count(&self) -> u64;

    /// Per-bytecode prologue (interpreter dispatch; nothing for JIT).
    fn begin(&mut self, sink: &mut dyn TraceSink);

    /// Fetch `n` bytes of instruction operands from the bytecode
    /// stream (interpreter only — translated code has immediates
    /// inline).
    fn operand_fetch(&mut self, sink: &mut dyn TraceSink, n: u32);

    /// Pop one operand-stack slot whose simulated address is `addr`.
    fn stack_pop(&mut self, sink: &mut dyn TraceSink, addr: Addr);

    /// Push one operand-stack slot.
    fn stack_push(&mut self, sink: &mut dyn TraceSink, addr: Addr);

    /// Read local `n`.
    fn local_read(&mut self, sink: &mut dyn TraceSink, n: usize, addr: Addr);

    /// Write local `n`.
    fn local_write(&mut self, sink: &mut dyn TraceSink, n: usize, addr: Addr);

    /// A data load from the heap/class/VM-data areas.
    fn heap_load(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8);

    /// A data store.
    fn heap_store(&mut self, sink: &mut dyn TraceSink, addr: Addr, size: u8);

    /// Card-marking write barrier following a reference store: the
    /// address-to-card shift and the one-byte dirty store to `card`,
    /// emitted under [`Phase::GcBarrier`](jrt_trace::Phase). Returns
    /// the number of instructions emitted, so the VM's
    /// `gc_barrier_insts` counter matches the trace exactly (the IR
    /// tier emits nothing at elided pcs).
    fn ref_store_barrier(&mut self, sink: &mut dyn TraceSink, card: Addr) -> u64;

    /// An arithmetic operation of the given class.
    fn alu(&mut self, sink: &mut dyn TraceSink, class: InstClass);

    /// A (never-taken) null-pointer check.
    fn null_check(&mut self, sink: &mut dyn TraceSink);

    /// A (never-taken) array-bounds check.
    fn bounds_check(&mut self, sink: &mut dyn TraceSink);

    /// A bytecode conditional branch resolved with direction `taken`.
    fn cond_branch(&mut self, sink: &mut dyn TraceSink, taken: bool, bc_target: u32);

    /// A bytecode `goto`.
    fn goto_(&mut self, sink: &mut dyn TraceSink, bc_target: u32);

    /// A `tableswitch` landing on `bc_target`.
    fn switch(&mut self, sink: &mut dyn TraceSink, bc_target: u32, ncases: usize);

    /// A method invocation to native entry `entry`; returns the
    /// native return address the callee should return to.
    fn invoke(&mut self, sink: &mut dyn TraceSink, kind: InvokeKind, entry: Addr) -> Addr;

    /// A method return to `ret_to`.
    fn ret(&mut self, sink: &mut dyn TraceSink, ret_to: Addr);

    /// Callee frame setup (locals zeroing, bookkeeping) — VM runtime
    /// work.
    fn frame_setup(&mut self, sink: &mut dyn TraceSink, nlocals: usize, locals_addr: Addr);

    /// A monitor operation of the given modelled cost, touching the
    /// lock word / monitor-cache structures at `lock_addr`.
    fn sync_op(&mut self, sink: &mut dyn TraceSink, cost: LockCost, lock_addr: Addr);

    /// Object/array allocation of `bytes` at `addr` (header
    /// initialization and allocator bookkeeping).
    fn alloc(&mut self, sink: &mut dyn TraceSink, addr: Addr, bytes: u32);
}
