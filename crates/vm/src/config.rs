//! VM configuration: execution mode, JIT policy, code-cache
//! management, sync engine choice.
//!
//! The when-to-translate policy ([`JitPolicy`]) and the oracle
//! ([`OracleDecisions`]) live in `jrt-codecache` next to the eviction
//! and tiering machinery they drive; they are re-exported here so VM
//! users keep a single configuration surface.

pub use jrt_codecache::{CacheScope, CodeCacheConfig, EvictionPolicy, JitPolicy, OracleDecisions};

/// How the VM executes bytecode.
#[derive(Debug, Clone)]
pub enum ExecMode {
    /// Pure interpretation.
    Interp,
    /// JIT compilation governed by a [`JitPolicy`]; methods the policy
    /// declines to translate are interpreted.
    Jit(JitPolicy),
    /// Register-IR interpretation: every method is lowered once
    /// (stack→register superinstruction fusion, constant folding,
    /// redundant-load elimination) and then executed by the IR
    /// interpreter, which dispatches at most one packed IR
    /// instruction per bytecode and keeps the operand stack in
    /// registers.
    IrInterp,
    /// Register-IR JIT: methods are lowered as in
    /// [`ExecMode::IrInterp`], and a [`JitPolicy`] decides which
    /// lowered methods the IR-backed translator compiles into the
    /// code cache (denser code — fused pcs generate nothing); methods
    /// the policy declines, and evicted ones, run on the IR
    /// interpreter.
    IrJit(JitPolicy),
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Jit(JitPolicy::default())
    }
}

impl ExecMode {
    /// Short label for tables ("interp" / "jit" / "opt" / "thresh" /
    /// "tiered" / "ir-interp" / "ir-jit").
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Interp => "interp",
            ExecMode::Jit(JitPolicy::FirstInvocation) => "jit",
            ExecMode::Jit(JitPolicy::Threshold(_)) => "thresh",
            ExecMode::Jit(JitPolicy::Oracle(_)) => "opt",
            ExecMode::Jit(JitPolicy::Tiered { .. }) => "tiered",
            ExecMode::IrInterp => "ir-interp",
            ExecMode::IrJit(_) => "ir-jit",
        }
    }

    /// Whether this mode runs through the register-IR tier (methods
    /// are lowered before execution).
    pub fn is_ir(&self) -> bool {
        matches!(self, ExecMode::IrInterp | ExecMode::IrJit(_))
    }
}

/// Which monitor implementation the VM uses (Section 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncKind {
    /// JDK 1.1.6 monitor cache (fat locks).
    #[default]
    MonitorCache,
    /// Bacon-style 24-bit thin locks.
    ThinLock,
    /// The paper's proposed 1-bit lock.
    OneBit,
}

impl SyncKind {
    /// All kinds, in paper order.
    pub const ALL: [SyncKind; 3] = [SyncKind::MonitorCache, SyncKind::ThinLock, SyncKind::OneBit];
}

/// Garbage-collection configuration.
///
/// The default ([`GcConfig::Legacy`]) reproduces the original
/// single-space heap: allocation bumps from the heap base and a full
/// stop-the-world collection runs only when
/// [`VmConfig::gc_threshold`] bytes have been allocated since the
/// last collection — which the paper-suite workloads never reach, so
/// every pre-existing experiment trace is byte-identical.
/// [`GcConfig::Generational`] switches the heap to a nursery +
/// tenured layout with card-marking write barriers
/// ([`Phase::GcBarrier`](jrt_trace::Phase) trace events at every
/// reference store), copying minor collections driven by the
/// remembered set, and copying-compaction major collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcConfig {
    /// Original growth-only heap with threshold-triggered mark-sweep.
    #[default]
    Legacy,
    /// Generational copying GC: bump-allocating nursery evacuated
    /// into tenured space on minor collections, card-marking write
    /// barriers, remembered-set scanning, copying compaction of
    /// tenured space on major collections.
    Generational {
        /// Nursery capacity in bytes; a minor collection triggers
        /// when a nursery allocation would not fit. Tiny nurseries
        /// force frequent collections (the GC-equivalence tests use
        /// this).
        nursery_bytes: u64,
        /// Tenured-space budget in bytes allocated since the last
        /// major collection before a full collection triggers.
        tenured_bytes: u64,
    },
}

impl GcConfig {
    /// The generational configuration with production-shaped defaults
    /// (256 KiB nursery, 8 MiB tenured budget).
    pub fn generational() -> Self {
        GcConfig::Generational {
            nursery_bytes: 256 << 10,
            tenured_bytes: 8 << 20,
        }
    }

    /// A deliberately tiny nursery that forces frequent minor
    /// collections even on tiny workloads — the GC-stress
    /// configuration used by the equivalence tests and the gc-smoke
    /// CI job.
    pub fn tiny_nursery() -> Self {
        GcConfig::Generational {
            nursery_bytes: 2 << 10,
            tenured_bytes: 64 << 10,
        }
    }

    /// Whether this configuration enables the generational collector
    /// (and therefore write-barrier emission).
    pub fn is_generational(&self) -> bool {
        matches!(self, GcConfig::Generational { .. })
    }
}

/// Full VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// Monitor implementation.
    pub sync: SyncKind,
    /// Code-cache management: capacity, eviction policy, sharing
    /// scope. The default (unbounded, per-VM) reproduces the paper's
    /// append-only code cache.
    pub code_cache: CodeCacheConfig,
    /// Heap budget in bytes before a GC is triggered.
    pub gc_threshold: u64,
    /// Garbage-collector choice; the default keeps the original
    /// growth-only heap (no barriers, no moving collections).
    pub gc: GcConfig,
    /// Scheduler quantum in bytecodes.
    pub quantum: u32,
    /// Whether to enable per-method profiling (needed to derive the
    /// oracle; small overhead otherwise).
    pub profiling: bool,
    /// Upper bound on executed bytecodes (guards against runaway
    /// programs; `u64::MAX` = unlimited).
    pub max_bytecodes: u64,
    /// Per-tenant fuel budget in bytecodes; `None` = unmetered. Fuel
    /// is deterministic instruction-count metering — never wall
    /// clock — checked before every bytecode, so a run with fuel `F`
    /// traps with [`VmError::FuelExhausted`](crate::VmError) after
    /// exactly `F` bytecodes on every engine configuration. Unlike
    /// [`VmConfig::max_bytecodes`] (a safety rail against runaway
    /// programs), fuel models a serving-tier admission contract and
    /// is settable per job via `Vm::set_fuel`.
    pub fuel: Option<u64>,
    /// picoJava-style folding in the interpreter (Section 4.4): runs
    /// of up to four simple bytecodes (constants, local moves,
    /// arithmetic, stack shuffles) share one dispatch, mitigating the
    /// dispatch jump's target misprediction.
    pub folding: bool,
    /// Harness self-test hook (sabotage): when `Some(n)`, the
    /// generational heap silently drops its `n`-th remembered-set
    /// enrollment — a seeded "missed write barrier" that a correct
    /// collector turns into premature reclamation of a live nursery
    /// object. Used only by the GC differential fuzzer's must-fail CI
    /// job to prove the equivalence layer catches a single lost
    /// barrier. `None` (the default) for every real run.
    pub gc_sabotage_drop_barrier: Option<u64>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mode: ExecMode::default(),
            sync: SyncKind::default(),
            code_cache: CodeCacheConfig::default(),
            gc_threshold: 24 << 20,
            gc: GcConfig::default(),
            quantum: 200,
            profiling: true,
            max_bytecodes: u64::MAX,
            fuel: None,
            folding: false,
            gc_sabotage_drop_barrier: None,
        }
    }
}

impl VmConfig {
    /// Interpreter-mode configuration.
    pub fn interpreter() -> Self {
        VmConfig {
            mode: ExecMode::Interp,
            ..VmConfig::default()
        }
    }

    /// JIT-mode (translate on first invocation) configuration.
    pub fn jit() -> Self {
        VmConfig {
            mode: ExecMode::Jit(JitPolicy::FirstInvocation),
            ..VmConfig::default()
        }
    }

    /// Register-IR interpreter configuration.
    pub fn ir_interp() -> Self {
        VmConfig {
            mode: ExecMode::IrInterp,
            ..VmConfig::default()
        }
    }

    /// Register-IR JIT (translate on first invocation) configuration.
    pub fn ir_jit() -> Self {
        VmConfig {
            mode: ExecMode::IrJit(JitPolicy::FirstInvocation),
            ..VmConfig::default()
        }
    }

    /// Oracle ("opt") configuration from precomputed decisions.
    pub fn oracle(decisions: OracleDecisions) -> Self {
        VmConfig {
            mode: ExecMode::Jit(JitPolicy::Oracle(decisions)),
            ..VmConfig::default()
        }
    }

    /// Sets the monitor implementation (builder style).
    pub fn with_sync(mut self, sync: SyncKind) -> Self {
        self.sync = sync;
        self
    }

    /// Enables interpreter instruction folding (builder style).
    pub fn with_folding(mut self) -> Self {
        self.folding = true;
        self
    }

    /// Sets the code-cache management configuration (builder style).
    pub fn with_code_cache(mut self, code_cache: CodeCacheConfig) -> Self {
        self.code_cache = code_cache;
        self
    }

    /// Sets a per-tenant fuel budget in bytecodes (builder style).
    /// See [`VmConfig::fuel`] for the semantics.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the garbage-collector configuration (builder style).
    pub fn with_gc(mut self, gc: GcConfig) -> Self {
        self.gc = gc;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_labels() {
        assert_eq!(ExecMode::Interp.label(), "interp");
        assert_eq!(ExecMode::Jit(JitPolicy::FirstInvocation).label(), "jit");
        assert_eq!(
            ExecMode::Jit(JitPolicy::Oracle(OracleDecisions::default())).label(),
            "opt"
        );
        assert_eq!(ExecMode::Jit(JitPolicy::Threshold(5)).label(), "thresh");
        assert_eq!(
            ExecMode::Jit(JitPolicy::Tiered { t1: 4, t2: 64 }).label(),
            "tiered"
        );
        assert_eq!(ExecMode::IrInterp.label(), "ir-interp");
        assert_eq!(
            ExecMode::IrJit(JitPolicy::FirstInvocation).label(),
            "ir-jit"
        );
        assert!(ExecMode::IrInterp.is_ir());
        assert!(ExecMode::IrJit(JitPolicy::Threshold(2)).is_ir());
        assert!(!ExecMode::Interp.is_ir());
        assert!(!ExecMode::Jit(JitPolicy::FirstInvocation).is_ir());
    }

    #[test]
    fn default_code_cache_is_unbounded_per_vm() {
        let cfg = VmConfig::default();
        assert_eq!(cfg.code_cache, CodeCacheConfig::default());
        assert_eq!(cfg.code_cache.capacity_bytes, u64::MAX);
        assert_eq!(cfg.code_cache.eviction, EvictionPolicy::Unbounded);
        assert_eq!(cfg.code_cache.scope, CacheScope::PerVm);
    }
}
