//! VM configuration: execution mode, JIT policy, sync engine choice.

use crate::profile::ProfileTable;
use jrt_bytecode::MethodId;
use std::collections::HashMap;

/// When (or whether) to translate a method to native code — the
/// question of Section 3 of the paper.
#[derive(Debug, Clone, Default)]
pub enum JitPolicy {
    /// Translate every method on its first invocation (the Kaffe /
    /// JDK 1.2 default the paper calls the "naive heuristic").
    #[default]
    FirstInvocation,
    /// Interpret a method until its invocation count reaches the
    /// threshold, then translate (a HotSpot-style counter heuristic;
    /// included as an ablation of the design space the paper opens).
    Threshold(u32),
    /// The paper's *opt* oracle: per-method decisions computed offline
    /// from a profile — translate method `i` on first invocation iff
    /// `n_i > N_i = T_i / (I_i − E_i)`, otherwise always interpret.
    Oracle(OracleDecisions),
}

/// Per-method translate/interpret decisions for [`JitPolicy::Oracle`].
#[derive(Debug, Clone, Default)]
pub struct OracleDecisions {
    decisions: HashMap<MethodId, bool>,
}

impl OracleDecisions {
    /// Computes the oracle from interpreter and JIT profiles of the
    /// same program (the paper's `opt` bar in Figure 1).
    ///
    /// For each method: `I_i` = mean interpret cycles per invocation,
    /// `E_i` = mean translated-code cycles per invocation, `T_i` =
    /// translation cycles, `n_i` = invocation count. Translate iff
    /// `I_i > E_i` and `n_i > T_i / (I_i − E_i)`.
    pub fn from_profiles(interp: &ProfileTable, jit: &ProfileTable) -> Self {
        let mut decisions = HashMap::new();
        for (mid, ip) in interp.iter() {
            let Some(jp) = jit.get(mid) else { continue };
            let n = ip.invocations.max(1) as f64;
            let i_per = ip.interp_cycles as f64 / n;
            let e_per = jp.native_cycles as f64 / jp.invocations.max(1) as f64;
            let t = jp.translate_cycles as f64;
            let translate = i_per > e_per && n > t / (i_per - e_per);
            decisions.insert(mid, translate);
        }
        OracleDecisions { decisions }
    }

    /// Forces a decision for one method (tests, what-if studies).
    pub fn set(&mut self, method: MethodId, translate: bool) {
        self.decisions.insert(method, translate);
    }

    /// Whether to translate `method`; methods absent from the profile
    /// default to interpretation.
    pub fn should_translate(&self, method: MethodId) -> bool {
        self.decisions.get(&method).copied().unwrap_or(false)
    }

    /// Number of methods decided.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no decisions are recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

/// How the VM executes bytecode.
#[derive(Debug, Clone)]
pub enum ExecMode {
    /// Pure interpretation.
    Interp,
    /// JIT compilation governed by a [`JitPolicy`]; methods the policy
    /// declines to translate are interpreted.
    Jit(JitPolicy),
}

impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Jit(JitPolicy::default())
    }
}

impl ExecMode {
    /// Short label for tables ("interp" / "jit" / "opt" / "thresh").
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Interp => "interp",
            ExecMode::Jit(JitPolicy::FirstInvocation) => "jit",
            ExecMode::Jit(JitPolicy::Threshold(_)) => "thresh",
            ExecMode::Jit(JitPolicy::Oracle(_)) => "opt",
        }
    }
}

/// Which monitor implementation the VM uses (Section 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncKind {
    /// JDK 1.1.6 monitor cache (fat locks).
    #[default]
    MonitorCache,
    /// Bacon-style 24-bit thin locks.
    ThinLock,
    /// The paper's proposed 1-bit lock.
    OneBit,
}

impl SyncKind {
    /// All kinds, in paper order.
    pub const ALL: [SyncKind; 3] = [SyncKind::MonitorCache, SyncKind::ThinLock, SyncKind::OneBit];
}

/// Full VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Execution mode.
    pub mode: ExecMode,
    /// Monitor implementation.
    pub sync: SyncKind,
    /// Heap budget in bytes before a GC is triggered.
    pub gc_threshold: u64,
    /// Scheduler quantum in bytecodes.
    pub quantum: u32,
    /// Whether to enable per-method profiling (needed to derive the
    /// oracle; small overhead otherwise).
    pub profiling: bool,
    /// Upper bound on executed bytecodes (guards against runaway
    /// programs; `u64::MAX` = unlimited).
    pub max_bytecodes: u64,
    /// picoJava-style folding in the interpreter (Section 4.4): runs
    /// of up to four simple bytecodes (constants, local moves,
    /// arithmetic, stack shuffles) share one dispatch, mitigating the
    /// dispatch jump's target misprediction.
    pub folding: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mode: ExecMode::default(),
            sync: SyncKind::default(),
            gc_threshold: 24 << 20,
            quantum: 200,
            profiling: true,
            max_bytecodes: u64::MAX,
            folding: false,
        }
    }
}

impl VmConfig {
    /// Interpreter-mode configuration.
    pub fn interpreter() -> Self {
        VmConfig {
            mode: ExecMode::Interp,
            ..VmConfig::default()
        }
    }

    /// JIT-mode (translate on first invocation) configuration.
    pub fn jit() -> Self {
        VmConfig {
            mode: ExecMode::Jit(JitPolicy::FirstInvocation),
            ..VmConfig::default()
        }
    }

    /// Oracle ("opt") configuration from precomputed decisions.
    pub fn oracle(decisions: OracleDecisions) -> Self {
        VmConfig {
            mode: ExecMode::Jit(JitPolicy::Oracle(decisions)),
            ..VmConfig::default()
        }
    }

    /// Sets the monitor implementation (builder style).
    pub fn with_sync(mut self, sync: SyncKind) -> Self {
        self.sync = sync;
        self
    }

    /// Enables interpreter instruction folding (builder style).
    pub fn with_folding(mut self) -> Self {
        self.folding = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::{ClassId, MethodId};

    fn mid(i: u32) -> MethodId {
        MethodId {
            class: ClassId(0),
            index: i,
        }
    }

    #[test]
    fn oracle_translates_hot_methods() {
        let mut interp = ProfileTable::default();
        let mut jit = ProfileTable::default();
        // Hot method: 1000 invocations, interp 100 cyc/inv, exec 20,
        // translate 500 -> N = 500/80 = 6.25 < 1000 -> translate.
        interp.record_invocation(mid(0));
        jit.record_invocation(mid(0));
        {
            let p = interp.get_mut(mid(0));
            p.invocations = 1000;
            p.interp_cycles = 100_000;
        }
        {
            let p = jit.get_mut(mid(0));
            p.invocations = 1000;
            p.native_cycles = 20_000;
            p.translate_cycles = 500;
        }
        // Cold method: 1 invocation, translate cost dominates.
        interp.record_invocation(mid(1));
        jit.record_invocation(mid(1));
        {
            let p = interp.get_mut(mid(1));
            p.invocations = 1;
            p.interp_cycles = 100;
        }
        {
            let p = jit.get_mut(mid(1));
            p.invocations = 1;
            p.native_cycles = 20;
            p.translate_cycles = 5000;
        }
        let d = OracleDecisions::from_profiles(&interp, &jit);
        assert!(d.should_translate(mid(0)));
        assert!(!d.should_translate(mid(1)));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(ExecMode::Interp.label(), "interp");
        assert_eq!(ExecMode::Jit(JitPolicy::FirstInvocation).label(), "jit");
        assert_eq!(
            ExecMode::Jit(JitPolicy::Oracle(OracleDecisions::default())).label(),
            "opt"
        );
        assert_eq!(ExecMode::Jit(JitPolicy::Threshold(5)).label(), "thresh");
    }

    #[test]
    fn unknown_method_defaults_to_interpret() {
        let d = OracleDecisions::default();
        assert!(!d.should_translate(mid(9)));
        assert!(d.is_empty());
    }
}
