//! Lazy class loading, resolution, and runtime linking.
//!
//! Classes are loaded on first use (entry class at startup, others on
//! `new`/static access/invocation), as in a real JVM — the paper's
//! Figure 6 attributes the interpreter's initial miss spikes to class
//! loading. Loading a class:
//!
//! * places its bytecode image in the simulated
//!   [`ClassArea`](jrt_trace::Region::ClassArea) (interpreters later
//!   *read bytecodes as data* from these addresses);
//! * flattens the instance-field layout over the superclass chain and
//!   assigns static storage in the VM-data region;
//! * builds the virtual dispatch table;
//! * allocates the class object (used by synchronized static methods);
//! * emits a class-load trace: reads of the class image, stores into
//!   the method/constant tables, and a verifier sweep.

use crate::heap::{Handle, Heap, Value};
use jrt_bytecode::{ClassId, MethodId, Program};
use jrt_trace::{layout, Addr, NativeInst, Phase, TraceSink};
use std::collections::HashMap;

/// Runtime view of one loaded class.
#[derive(Debug, Clone)]
pub struct LoadedClass {
    /// The class id.
    pub id: ClassId,
    /// Flattened instance-field names: superclass fields first.
    pub field_names: Vec<String>,
    field_index: HashMap<String, usize>,
    /// Static-field name → slot in this class's static storage.
    static_index: HashMap<String, usize>,
    /// Virtual dispatch table: method name → implementing method.
    vtable: HashMap<String, MethodId>,
    /// Base address of this class's bytecode image.
    pub image_addr: Addr,
    /// Size of the loaded image in bytes (code + pool + tables).
    pub image_bytes: u32,
    /// Per-method bytecode base address (index = method slot).
    pub code_addr: Vec<Addr>,
    /// Base address of static storage.
    pub static_addr: Addr,
    /// The class object (receiver of static synchronized methods).
    pub class_object: Handle,
}

impl LoadedClass {
    /// Slot of instance field `name` in the flattened layout.
    pub fn field_slot(&self, name: &str) -> Option<usize> {
        self.field_index.get(name).copied()
    }

    /// Number of instance fields (flattened).
    pub fn num_fields(&self) -> usize {
        self.field_names.len()
    }

    /// Slot of static field `name` declared by this class.
    pub fn static_slot(&self, name: &str) -> Option<usize> {
        self.static_index.get(name).copied()
    }

    /// Virtual lookup of `name` starting at this class.
    pub fn vtable_lookup(&self, name: &str) -> Option<MethodId> {
        self.vtable.get(name).copied()
    }
}

/// The runtime linker: loaded classes, static storage, address
/// assignment, and class-load trace emission.
#[derive(Debug)]
pub struct Linker {
    loaded: Vec<Option<LoadedClass>>,
    statics: Vec<Vec<Value>>,
    class_cursor: Addr,
    static_cursor: Addr,
    loader_pc: Addr,
    /// Total bytes of loaded class images (footprint accounting).
    pub loaded_bytes: u64,
    /// Number of classes loaded.
    pub classes_loaded: u32,
}

const LOADER_TEXT_BASE: Addr = layout::VM_TEXT_BASE + 0x8000;
const LOADER_TEXT_SIZE: Addr = 0x4000; // 16 KB of loader/verifier code

impl Linker {
    /// Creates an empty linker for a program with `num_classes`
    /// classes.
    pub fn new(num_classes: usize) -> Self {
        Linker {
            loaded: vec![None; num_classes],
            statics: vec![Vec::new(); num_classes],
            class_cursor: layout::CLASS_AREA_BASE,
            static_cursor: layout::VM_DATA_BASE + 0x10_0000,
            loader_pc: LOADER_TEXT_BASE,
            loaded_bytes: 0,
            classes_loaded: 0,
        }
    }

    /// Whether `id` is loaded.
    pub fn is_loaded(&self, id: ClassId) -> bool {
        self.loaded[id.0 as usize].is_some()
    }

    /// The loaded class `id`.
    ///
    /// # Panics
    ///
    /// Panics if the class has not been loaded (a VM sequencing bug).
    pub fn class(&self, id: ClassId) -> &LoadedClass {
        self.loaded[id.0 as usize]
            .as_ref()
            .expect("class must be loaded before use")
    }

    /// Reads static slot `idx` of class `id`.
    pub fn get_static(&self, id: ClassId, idx: usize) -> Value {
        self.statics[id.0 as usize][idx]
    }

    /// Writes static slot `idx` of class `id`.
    pub fn set_static(&mut self, id: ClassId, idx: usize, v: Value) {
        self.statics[id.0 as usize][idx] = v;
    }

    /// Raw 32-bit images of every class's static slots, in class
    /// order (unloaded classes contribute empty vectors). Part of the
    /// engine-independent observable state the differential fuzzer
    /// compares.
    pub fn statics_snapshot(&self) -> Vec<Vec<i32>> {
        self.statics
            .iter()
            .map(|slots| slots.iter().map(|v| v.to_raw()).collect())
            .collect()
    }

    /// Class objects of all loaded classes (GC roots; receivers of
    /// static synchronized methods).
    pub fn class_objects(&self) -> impl Iterator<Item = Handle> + '_ {
        self.loaded.iter().flatten().map(|c| c.class_object)
    }

    /// All static values (GC roots).
    pub fn static_roots(&self) -> impl Iterator<Item = Handle> + '_ {
        self.statics.iter().flatten().filter_map(|v| match v {
            Value::Ref(h) => Some(*h),
            _ => None,
        })
    }

    /// Bytecode base address of `mid` (requires the class loaded).
    pub fn code_addr(&self, mid: MethodId) -> Addr {
        self.class(mid.class).code_addr[mid.index as usize]
    }

    /// Ensures `id` (and its superclasses) are loaded, emitting the
    /// class-load trace for anything newly loaded.
    pub fn ensure_loaded(
        &mut self,
        id: ClassId,
        program: &Program,
        heap: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> u64 {
        if self.is_loaded(id) {
            return 0;
        }
        let mut emitted = 0u64;

        // Load the superclass chain first (root to leaf).
        let chain = program.ancestry(id);
        for &cid in chain.iter().rev() {
            if !self.is_loaded(cid) {
                emitted += self.load_one(cid, program, heap, sink);
            }
        }
        emitted
    }

    fn loader_step(&mut self) -> Addr {
        // The loader/verifier has a sizeable code footprint; walk it
        // so class loading shows up in the I-cache (Figure 6 startup
        // spikes).
        let pc = self.loader_pc;
        self.loader_pc += 4;
        if self.loader_pc >= LOADER_TEXT_BASE + LOADER_TEXT_SIZE {
            self.loader_pc = LOADER_TEXT_BASE;
        }
        pc
    }

    fn load_one(
        &mut self,
        id: ClassId,
        program: &Program,
        heap: &mut Heap,
        sink: &mut dyn TraceSink,
    ) -> u64 {
        let cf = program.class_file(id);

        // Layout: superclass fields first.
        let mut field_names = Vec::new();
        if let Some(super_name) = &cf.super_name {
            let sid = program.class(super_name).expect("verified superclass");
            field_names.extend(self.class(sid).field_names.iter().cloned());
        }
        let mut static_names = Vec::new();
        for f in &cf.fields {
            if f.is_static {
                static_names.push(f.name.clone());
            } else {
                field_names.push(f.name.clone());
            }
        }
        let field_index = field_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let static_index: HashMap<String, usize> = static_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();

        // Vtable: superclass entries, overridden by local methods.
        let mut vtable: HashMap<String, MethodId> = match &cf.super_name {
            Some(s) => {
                let sid = program.class(s).expect("verified superclass");
                self.class(sid).vtable.clone()
            }
            None => HashMap::new(),
        };
        for (i, m) in cf.methods.iter().enumerate() {
            if !m.flags.is_static {
                vtable.insert(
                    m.name.clone(),
                    MethodId {
                        class: id,
                        index: i as u32,
                    },
                );
            }
        }

        // Address assignment.
        let pool_bytes = cf.pool.loaded_size();
        let code_bytes = cf.code_size();
        let table_bytes = 32 * cf.methods.len() as u32 + 16 * cf.fields.len() as u32;
        let image_bytes = pool_bytes + code_bytes + table_bytes + 64;
        let image_addr = self.class_cursor;
        self.class_cursor += u64::from(image_bytes.next_multiple_of(64));

        let mut code_addr = Vec::with_capacity(cf.methods.len());
        let mut cursor = image_addr + 64 + u64::from(pool_bytes);
        for m in &cf.methods {
            code_addr.push(cursor);
            cursor += m.code.len() as u64;
        }

        let static_addr = self.static_cursor;
        self.static_cursor += 4 * static_names.len().max(1) as u64;
        self.statics[id.0 as usize] = vec![Value::Null; static_names.len()];

        let class_object = heap
            .alloc_object(id, 0)
            .expect("class-object allocation cannot exhaust a fresh region");

        // Class-load trace: read the image, build tables, verify.
        let mut emitted = 0u64;
        let mut emit = |inst: NativeInst| {
            sink.accept(&inst);
        };
        // Read image (simulating classfile parse): one load per 8
        // bytes, one table store per 32 bytes.
        let parse_loads = (image_bytes / 8).max(4);
        for k in 0..parse_loads {
            let pc = self.loader_step();
            emit(NativeInst::load(
                pc,
                image_addr + u64::from(k * 8),
                4,
                Phase::ClassLoad,
            ));
            emitted += 1;
            if k % 4 == 0 {
                let pc2 = self.loader_step();
                emit(NativeInst::store(
                    pc2,
                    layout::VM_DATA_BASE + u64::from(k * 8 % 0x8000),
                    4,
                    Phase::ClassLoad,
                ));
                emitted += 1;
            }
            let pc3 = self.loader_step();
            emit(NativeInst::alu(pc3, Phase::ClassLoad));
            emitted += 1;
        }
        // Verifier sweep over the code.
        for k in 0..(code_bytes / 4).max(1) {
            let pc = self.loader_step();
            emit(NativeInst::load(
                pc,
                code_addr.first().copied().unwrap_or(image_addr) + u64::from(k * 4),
                4,
                Phase::ClassLoad,
            ));
            let pc2 = self.loader_step();
            emit(NativeInst::branch(
                pc2,
                LOADER_TEXT_BASE,
                k % 7 == 0,
                Phase::ClassLoad,
            ));
            emitted += 2;
        }

        self.loaded_bytes += u64::from(image_bytes);
        self.classes_loaded += 1;
        self.loaded[id.0 as usize] = Some(LoadedClass {
            id,
            field_names,
            field_index,
            static_index,
            vtable,
            image_addr,
            image_bytes,
            code_addr,
            static_addr,
            class_object,
        });
        emitted
    }

    /// Resolves the static-field owner and slot for `(class, name)`,
    /// searching the superclass chain.
    pub fn resolve_static(
        &self,
        program: &Program,
        class: ClassId,
        name: &str,
    ) -> Option<(ClassId, usize)> {
        for cid in program.ancestry(class) {
            if let Some(slot) = self.class(cid).static_slot(name) {
                return Some((cid, slot));
            }
        }
        None
    }

    /// Simulated address of a static slot.
    pub fn static_slot_addr(&self, class: ClassId, slot: usize) -> Addr {
        self.class(class).static_addr + 4 * slot as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jrt_bytecode::{ClassAsm, MethodAsm};
    use jrt_trace::CountingSink;

    fn program() -> Program {
        let mut base = ClassAsm::new("Base");
        base.add_field("a");
        base.add_static_field("sb");
        let mut greet = MethodAsm::new_instance("greet", 0);
        greet.ret();
        base.add_method(greet);

        let mut derived = ClassAsm::with_super("Derived", "Base");
        derived.add_field("b");
        let mut greet2 = MethodAsm::new_instance("greet", 0);
        greet2.ret();
        derived.add_method(greet2);
        let mut other = MethodAsm::new_instance("other", 0);
        other.ret();
        derived.add_method(other);

        let mut main = ClassAsm::new("Main");
        let mut m = MethodAsm::new("main", 0);
        m.ret();
        main.add_method(m);

        Program::build(vec![base, derived, main], "Main", "main").unwrap()
    }

    #[test]
    fn loads_super_chain_and_flattens_fields() {
        let p = program();
        let mut linker = Linker::new(p.num_classes());
        let mut heap = Heap::new();
        let mut sink = CountingSink::new();
        let derived = p.class("Derived").unwrap();
        linker.ensure_loaded(derived, &p, &mut heap, &mut sink);

        assert!(linker.is_loaded(p.class("Base").unwrap()));
        let lc = linker.class(derived);
        assert_eq!(lc.field_names, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(lc.field_slot("a"), Some(0));
        assert_eq!(lc.field_slot("b"), Some(1));
        assert_eq!(lc.num_fields(), 2);
        assert!(sink.phase(Phase::ClassLoad) > 0);
        assert_eq!(linker.classes_loaded, 2);
    }

    #[test]
    fn vtable_overrides() {
        let p = program();
        let mut linker = Linker::new(p.num_classes());
        let mut heap = Heap::new();
        let mut sink = CountingSink::new();
        let base = p.class("Base").unwrap();
        let derived = p.class("Derived").unwrap();
        linker.ensure_loaded(derived, &p, &mut heap, &mut sink);

        let g = linker.class(derived).vtable_lookup("greet").unwrap();
        assert_eq!(g.class, derived, "override wins");
        let g0 = linker.class(base).vtable_lookup("greet").unwrap();
        assert_eq!(g0.class, base);
        assert!(linker.class(derived).vtable_lookup("other").is_some());
        assert!(linker.class(base).vtable_lookup("other").is_none());
    }

    #[test]
    fn statics_resolve_through_chain() {
        let p = program();
        let mut linker = Linker::new(p.num_classes());
        let mut heap = Heap::new();
        let mut sink = CountingSink::new();
        let derived = p.class("Derived").unwrap();
        linker.ensure_loaded(derived, &p, &mut heap, &mut sink);

        let (owner, slot) = linker.resolve_static(&p, derived, "sb").unwrap();
        assert_eq!(owner, p.class("Base").unwrap());
        linker.set_static(owner, slot, Value::Int(5));
        assert_eq!(linker.get_static(owner, slot), Value::Int(5));
        let addr = linker.static_slot_addr(owner, slot);
        assert_eq!(
            jrt_trace::Region::classify(addr),
            Some(jrt_trace::Region::VmData)
        );
    }

    #[test]
    fn loading_twice_is_idempotent() {
        let p = program();
        let mut linker = Linker::new(p.num_classes());
        let mut heap = Heap::new();
        let mut sink = CountingSink::new();
        let base = p.class("Base").unwrap();
        let first = linker.ensure_loaded(base, &p, &mut heap, &mut sink);
        let second = linker.ensure_loaded(base, &p, &mut heap, &mut sink);
        assert!(first > 0);
        assert_eq!(second, 0);
        assert_eq!(linker.classes_loaded, 1);
    }

    #[test]
    fn code_addresses_live_in_class_area() {
        let p = program();
        let mut linker = Linker::new(p.num_classes());
        let mut heap = Heap::new();
        let mut sink = CountingSink::new();
        let main = p.class("Main").unwrap();
        linker.ensure_loaded(main, &p, &mut heap, &mut sink);
        let addr = linker.code_addr(p.entry());
        assert_eq!(
            jrt_trace::Region::classify(addr),
            Some(jrt_trace::Region::ClassArea)
        );
    }
}
