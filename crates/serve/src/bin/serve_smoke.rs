//! CI smoke check for the real (wall-clock) VM fleet: drains a tiny
//! multi-tenant traffic stream through the work-stealing pool at 1
//! and 8 workers and asserts the canonical per-job results are
//! identical — VM reuse plus stealing must not change any outcome.

use jrt_serve::pool::{jobs_of, run_fleet, FleetConfig};
use jrt_serve::{Traffic, TrafficConfig};
use jrt_workloads::Size;

fn main() {
    let traffic = Traffic::generate(&TrafficConfig {
        seed: 0x5EED_0042,
        requests: 64,
        tenants: 8,
        fuzz_programs: 3,
        size: Size::Tiny,
    });
    let jobs = jobs_of(&traffic);

    let one = run_fleet(&traffic.programs, &jobs, &FleetConfig::default());
    let eight = run_fleet(
        &traffic.programs,
        &jobs,
        &FleetConfig {
            workers: 8,
            ..FleetConfig::default()
        },
    );
    assert_eq!(
        one.results, eight.results,
        "fleet results must be schedule-independent"
    );

    let ok = one.results.iter().filter(|r| r.outcome.is_ok()).count();
    let exhausted = one.results.iter().filter(|r| r.fuel_exhausted).count();
    assert!(ok > 0, "smoke traffic must complete some jobs");
    assert!(
        one.cache.shared_dedup_hits > 0,
        "single resident worker must dedup repeated contents: {:?}",
        one.cache
    );

    println!(
        "serve smoke: {} jobs | ok {} | fuel-exhausted {} | other traps {}",
        jobs.len(),
        ok,
        exhausted,
        jobs.len() - ok - exhausted
    );
    println!(
        "  1-worker cache: lookups {} dedup hits {} ({:.1}% dedup)",
        one.cache.shared_lookups,
        one.cache.shared_dedup_hits,
        one.cache.dedup_rate() * 100.0
    );
    println!(
        "  8-worker cache: lookups {} dedup hits {}",
        eight.cache.shared_lookups, eight.cache.shared_dedup_hits
    );
    println!("serve smoke: PASS (1-worker and 8-worker results identical)");
}
