//! Deterministic per-job cost measurement for the fleet simulator.
//!
//! The serving study's clock is *virtual*: one simulated nanosecond
//! per trace instruction. Costs therefore come from isolated,
//! deterministic VM runs — never from wall time — and split along
//! the paper's own line:
//!
//! * **execute** work ([`JobCost::exec_insts`]): everything a job
//!   emits outside the Translate phase. Every job of the same
//!   `(program, fuel)` pair pays this in full.
//! * **translate** work ([`ProgramCost::contents`]): the per-method
//!   translation costs, keyed by a hash of the method's bytecode
//!   *content*. Under the fleet's shared code cache, only the first
//!   job to touch a content pays its translation; later jobs — any
//!   tenant, any program with a byte-identical body — hit the warm
//!   install. The simulator replays exactly that accounting against
//!   a fleet-wide content set.

use crate::serve_config;
use crate::traffic::Traffic;
use jrt_bytecode::Program;
use jrt_trace::CountingSink;
use jrt_vm::Vm;

/// FNV-1a over bytecode bytes: the content identity used for
/// cross-tenant dedup accounting (the simulator's analog of the
/// shared cache's content interning).
pub fn content_hash(code: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in code {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A program's translation cost profile: every method the serving
/// configuration translates, as `(content hash, translate
/// instructions)`, sorted by hash and deduplicated (byte-identical
/// bodies within one program already collapse in the shared cache).
#[derive(Debug, Clone, Default)]
pub struct ProgramCost {
    /// `(content hash, translate instructions)`, sorted by hash.
    pub contents: Vec<(u64, u64)>,
}

impl ProgramCost {
    /// Total translate instructions across contents.
    pub fn translate_insts(&self) -> u64 {
        self.contents.iter().map(|&(_, t)| t).sum()
    }
}

/// Measured cost and outcome of one `(program, fuel)` job class.
#[derive(Debug, Clone)]
pub struct JobCost {
    /// The job's engine-independent outcome (exit value or rendered
    /// trap), identical for every job of the class.
    pub outcome: Result<Option<i32>, String>,
    /// Whether the job trapped on its fuel budget.
    pub fuel_exhausted: bool,
    /// Bytecodes executed.
    pub bytecodes: u64,
    /// Non-translate trace instructions — the virtual service time
    /// every job of this class pays (translate costs are charged by
    /// the simulator only on shared-cache misses).
    pub exec_insts: u64,
}

/// Measures a program's translation content profile: one full run
/// under the serving configuration (fuel-capped at the generous
/// tenant budget), reading per-method translate costs from the
/// profile table and interning them by bytecode content.
pub fn measure_program(program: &Program) -> ProgramCost {
    let cfg = serve_config().with_fuel(crate::traffic::AMPLE_FUEL);
    let mut vm = Vm::new(program, cfg);
    let mut sink = CountingSink::new();
    let profile = match vm.run(&mut sink) {
        Ok(r) => r.profile,
        // A trapping program (fuzz tail, metered tenants) still
        // translated methods on the way; the table is intact on the
        // fault path.
        Err(_) => vm.profile().clone(),
    };
    let mut contents: Vec<(u64, u64)> = profile
        .iter()
        .filter(|(_, p)| p.translate_cycles > 0)
        .map(|(mid, p)| {
            (
                content_hash(&program.method_def(mid).code),
                p.translate_cycles,
            )
        })
        .collect();
    contents.sort_unstable();
    contents.dedup_by_key(|&mut (h, _)| h);
    ProgramCost { contents }
}

/// Measures one `(program, fuel)` job class in an isolated VM:
/// deterministic observables plus the execute-phase instruction
/// count. Scheduling never touches this — the same pair always
/// measures identically, which is what makes the study's report
/// byte-stable at any `--jobs`.
pub fn measure_job(program: &Program, fuel: u64) -> JobCost {
    let cfg = serve_config().with_fuel(fuel);
    let mut vm = Vm::new(program, cfg);
    let mut sink = CountingSink::new();
    let run = vm.run_observed(&mut sink);
    let fuel_exhausted = run
        .observables
        .outcome
        .as_ref()
        .err()
        .is_some_and(|e| e.starts_with("fuel exhausted"));
    JobCost {
        outcome: run.observables.outcome,
        fuel_exhausted,
        bytecodes: run.observables.bytecodes,
        exec_insts: sink.total() - sink.translate(),
    }
}

/// The complete cost model a traffic stream needs: per-program
/// content costs plus per-`(program, fuel)` job costs.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Parallel to [`Traffic::programs`].
    pub programs: Vec<ProgramCost>,
    /// `((program index, fuel), cost)`, sorted by key.
    pairs: Vec<((usize, u64), JobCost)>,
}

impl CostModel {
    /// The distinct `(program, fuel)` classes appearing in
    /// `traffic`, sorted — the measurement work list (callers may
    /// fan the measurements out in parallel; results are
    /// per-class-deterministic).
    pub fn distinct_pairs(traffic: &Traffic) -> Vec<(usize, u64)> {
        let mut pairs: Vec<(usize, u64)> = traffic
            .requests
            .iter()
            .map(|r| (r.program, traffic.fuel_of(r)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Measures everything sequentially. For a parallel measurement
    /// phase, measure [`CostModel::distinct_pairs`] and the programs
    /// yourself and assemble with [`CostModel::from_parts`].
    pub fn build(traffic: &Traffic) -> CostModel {
        let programs = traffic
            .programs
            .iter()
            .map(|p| measure_program(p))
            .collect();
        let pairs = Self::distinct_pairs(traffic)
            .into_iter()
            .map(|(pi, fuel)| ((pi, fuel), measure_job(&traffic.programs[pi], fuel)))
            .collect();
        CostModel { programs, pairs }
    }

    /// Assembles a model from externally measured parts. `pairs`
    /// must be keyed by `(program index, fuel)`; they are sorted
    /// here.
    pub fn from_parts(programs: Vec<ProgramCost>, mut pairs: Vec<((usize, u64), JobCost)>) -> Self {
        pairs.sort_unstable_by_key(|&(k, _)| k);
        CostModel { programs, pairs }
    }

    /// The measured cost of job class `(program, fuel)`.
    ///
    /// # Panics
    ///
    /// Panics if the class was not measured.
    pub fn job(&self, program: usize, fuel: u64) -> &JobCost {
        let i = self
            .pairs
            .binary_search_by_key(&(program, fuel), |&(k, _)| k)
            .expect("job class measured");
        &self.pairs[i].1
    }

    /// Mean execute-phase service instructions over the requests of
    /// `traffic` (the simulator's arrival-rate calibration input).
    pub fn mean_service_insts(&self, traffic: &Traffic) -> u64 {
        if traffic.requests.is_empty() {
            return 1;
        }
        let sum: u128 = traffic
            .requests
            .iter()
            .map(|r| u128::from(self.job(r.program, traffic.fuel_of(r)).exec_insts))
            .sum();
        (sum / traffic.requests.len() as u128).max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{TrafficConfig, AMPLE_FUEL, STINGY_FUEL};
    use jrt_workloads::{db, Size};

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
    }

    #[test]
    fn job_measurement_is_deterministic_and_splits_translate() {
        let p = db::program(Size::Tiny);
        let a = measure_job(&p, AMPLE_FUEL);
        let b = measure_job(&p, AMPLE_FUEL);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.exec_insts, b.exec_insts);
        assert!(a.outcome.is_ok());
        assert!(!a.fuel_exhausted);
        assert!(a.exec_insts > 0);
        // A metered run traps at exactly the budget.
        let m = measure_job(&p, STINGY_FUEL);
        assert!(m.fuel_exhausted);
        assert_eq!(m.bytecodes, STINGY_FUEL);
        assert!(m.exec_insts < a.exec_insts);
    }

    #[test]
    fn program_costs_name_translated_contents() {
        let p = db::program(Size::Tiny);
        let c = measure_program(&p);
        assert!(!c.contents.is_empty());
        assert!(c.translate_insts() > 0);
        // Sorted and unique by hash.
        for w in c.contents.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn model_covers_every_request_class() {
        let cfg = TrafficConfig {
            seed: 0x5EED_0042,
            requests: 48,
            tenants: 6,
            fuzz_programs: 2,
            size: Size::Tiny,
        };
        let t = crate::Traffic::generate(&cfg);
        let m = CostModel::build(&t);
        for r in &t.requests {
            let j = m.job(r.program, t.fuel_of(r));
            assert!(j.exec_insts > 0);
        }
        assert!(m.mean_service_insts(&t) > 0);
        assert_eq!(m.programs.len(), t.programs.len());
    }
}
