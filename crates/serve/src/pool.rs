//! A work-stealing fleet of reusable VM workers.
//!
//! This is the *real-execution* half of the serving tier (the
//! virtual-clock half lives in [`crate::sim`]): `W` OS threads, each
//! owning one long-lived [`Vm`] that is [`Vm::reset_for`]-reused
//! across jobs instead of rebuilt — arena reuse, the cheap-reset
//! pattern. Each worker keeps its own deque of job indices; when its
//! deque drains it steals from the fronts of the others, so a skewed
//! job mix cannot idle the fleet.
//!
//! Correctness invariant (tested here and over the committed fuzz
//! corpus in `tests/`): a reused VM is observationally equal to a
//! fresh one. Whatever worker runs a job, and in whatever order, the
//! per-job [`JobResult`]s land in canonical job order and match a
//! fresh-VM sequential reference exactly.

use crate::traffic::Traffic;
use jrt_bytecode::Program;
use jrt_trace::CountingSink;
use jrt_vm::{CodeCacheStats, Vm, VmConfig};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One unit of fleet work.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Index into the program catalog passed to [`run_fleet`].
    pub program: usize,
    /// The tenant's fuel budget for this job, in bytecodes.
    pub fuel: u64,
    /// Owning tenant (carried through for reporting).
    pub tenant: u16,
}

/// What one job produced, independent of worker and schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Exit value or rendered trap.
    pub outcome: Result<Option<i32>, String>,
    /// Bytecodes the job executed.
    pub bytecodes: u64,
    /// Whether the job trapped on its fuel budget.
    pub fuel_exhausted: bool,
}

/// Fleet parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (and resident VMs).
    pub workers: usize,
    /// VM configuration for every worker (fuel is overridden
    /// per-job).
    pub vm: VmConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 1,
            vm: crate::serve_config(),
        }
    }
}

/// What a fleet run produced: per-job results in canonical job
/// order, plus the summed per-worker code-cache statistics.
#[derive(Debug)]
pub struct FleetReport {
    /// `results[i]` is job `i`'s result, regardless of which worker
    /// ran it.
    pub results: Vec<JobResult>,
    /// Code-cache statistics summed across the workers' resident
    /// VMs (each worker's shared cache deduplicates across the jobs
    /// *it* ran).
    pub cache: CodeCacheStats,
}

fn sum_stats(into: &mut CodeCacheStats, s: &CodeCacheStats) {
    into.installs += s.installs;
    into.evictions += s.evictions;
    into.retranslations += s.retranslations;
    into.install_failures += s.install_failures;
    into.largest_install_bytes = into.largest_install_bytes.max(s.largest_install_bytes);
    into.shared_lookups += s.shared_lookups;
    into.shared_dedup_hits += s.shared_dedup_hits;
}

fn run_one(vm: &mut Vm<'_>, job: Job) -> JobResult {
    vm.set_fuel(Some(job.fuel));
    let mut sink = CountingSink::new();
    let run = vm.run_observed(&mut sink);
    let fuel_exhausted = run
        .observables
        .outcome
        .as_ref()
        .err()
        .is_some_and(|e| e.starts_with("fuel exhausted"));
    JobResult {
        outcome: run.observables.outcome,
        bytecodes: run.observables.bytecodes,
        fuel_exhausted,
    }
}

/// Drains `jobs` through a work-stealing pool of `cfg.workers`
/// resident VMs over the `programs` catalog. Results come back in
/// canonical job order; scheduling affects only which worker's
/// shared cache serves which job.
///
/// # Panics
///
/// Panics if `cfg.workers` is zero or a job names a program outside
/// the catalog.
pub fn run_fleet(programs: &[Arc<Program>], jobs: &[Job], cfg: &FleetConfig) -> FleetReport {
    assert!(cfg.workers > 0, "fleet needs at least one worker");
    let workers = cfg.workers.min(jobs.len()).max(1);

    // Seed the deques round-robin so every worker starts with a
    // slice of the stream; stealing rebalances from there.
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, _) in jobs.iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back(i);
    }
    let slots: Vec<Mutex<Option<JobResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    let stats = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            handles.push(scope.spawn(move || {
                let mut vm: Option<Vm<'_>> = None;
                loop {
                    // Own deque first (LIFO back for locality), then
                    // sweep the others' fronts.
                    let job_idx = {
                        let own = deques[w].lock().unwrap().pop_back();
                        match own {
                            Some(i) => Some(i),
                            None => (0..workers)
                                .filter(|&v| v != w)
                                .find_map(|v| deques[v].lock().unwrap().pop_front()),
                        }
                    };
                    let Some(i) = job_idx else { break };
                    let job = jobs[i];
                    let program = &programs[job.program];
                    let vm = match &mut vm {
                        Some(vm) => {
                            vm.reset_for(program);
                            vm
                        }
                        None => vm.insert(Vm::new(program, cfg.vm.clone())),
                    };
                    *slots[i].lock().unwrap() = Some(run_one(vm, job));
                }
                vm.map(|vm| vm.cache_stats())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut cache = CodeCacheStats::default();
    for s in stats.iter().flatten() {
        sum_stats(&mut cache, s);
    }
    let results = slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every job ran"))
        .collect();
    FleetReport { results, cache }
}

/// Builds the fleet job list for a traffic stream (arrival order,
/// admission not applied — the real pool drains everything; shed
/// policy is exercised by the open-loop simulator).
pub fn jobs_of(traffic: &Traffic) -> Vec<Job> {
    traffic
        .requests
        .iter()
        .map(|r| Job {
            program: r.program,
            fuel: traffic.fuel_of(r),
            tenant: r.tenant,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Traffic, TrafficConfig, STINGY_FUEL};
    use jrt_workloads::Size;

    fn tiny_traffic() -> Traffic {
        Traffic::generate(&TrafficConfig {
            seed: 0x5EED_0042,
            requests: 40,
            tenants: 8,
            fuzz_programs: 2,
            size: Size::Tiny,
        })
    }

    /// Fresh-VM sequential reference: what every job must produce.
    fn reference(programs: &[Arc<Program>], jobs: &[Job]) -> Vec<JobResult> {
        jobs.iter()
            .map(|&job| {
                let mut vm = Vm::new(&programs[job.program], crate::serve_config());
                run_one(&mut vm, job)
            })
            .collect()
    }

    #[test]
    fn fleet_matches_fresh_vm_reference_at_any_width() {
        let t = tiny_traffic();
        let jobs = jobs_of(&t);
        assert!(jobs.iter().any(|j| j.fuel == STINGY_FUEL));
        let want = reference(&t.programs, &jobs);
        for workers in [1, 3, 8] {
            let cfg = FleetConfig {
                workers,
                ..FleetConfig::default()
            };
            let report = run_fleet(&t.programs, &jobs, &cfg);
            assert_eq!(report.results, want, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_shared_cache_deduplicates_across_jobs() {
        let t = tiny_traffic();
        let jobs = jobs_of(&t);
        let report = run_fleet(&t.programs, &jobs, &FleetConfig::default());
        // The Zipf head repeats programs constantly: the resident
        // worker's shared cache must observe content dedup.
        assert!(report.cache.shared_lookups > 0);
        assert!(
            report.cache.shared_dedup_hits > 0,
            "repeated programs on one worker must dedup: {:?}",
            report.cache
        );
        assert!(report.cache.dedup_rate() > 0.0);
    }

    #[test]
    fn fuel_exhaustion_is_reported_per_job() {
        let t = tiny_traffic();
        let jobs = jobs_of(&t);
        let report = run_fleet(
            &t.programs,
            &jobs,
            &FleetConfig {
                workers: 4,
                ..FleetConfig::default()
            },
        );
        let exhausted: Vec<_> = report
            .results
            .iter()
            .zip(&jobs)
            .filter(|(r, _)| r.fuel_exhausted)
            .collect();
        assert!(!exhausted.is_empty(), "metered tenants must trap");
        for (r, j) in exhausted {
            assert_eq!(r.bytecodes, j.fuel, "trap lands exactly on the budget");
        }
    }
}
