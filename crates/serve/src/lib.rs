//! `jrt-serve`: a multi-tenant VM fleet.
//!
//! The paper characterizes one JVM running one program; the
//! ROADMAP's north star is a runtime *service*: thousands of small
//! programs from many tenants draining through a bounded pool of VM
//! instances. This crate is that serving tier, built from the
//! workspace's own pieces:
//!
//! * [`pool`] — a work-stealing thread pool executing `(program,
//!   fuel, tenant)` jobs on **reusable** [`Vm`](jrt_vm::Vm)
//!   instances: one VM per worker, [`Vm::reset_for`](jrt_vm::Vm)
//!   between jobs (the rwasm `reusable_pool` pattern), with a
//!   [`CacheScope::Shared`](jrt_vm::CacheScope) code cache that
//!   stays warm across jobs so byte-identical method bodies from
//!   different tenants reuse one translation (ShareJIT-style
//!   cross-tenant dedup).
//! * [`traffic`] — a seeded synthetic traffic generator: a
//!   heavy-tailed mix of the paper's workloads plus fuzzer-generated
//!   programs, assigned to tenants with per-tenant fuel budgets and
//!   concurrency caps.
//! * [`admission`] — the shed policy: a bounded queue plus
//!   per-tenant concurrency caps, with a [`ShedReason`] for every
//!   rejected request.
//! * [`cost`] — deterministic per-job cost measurement: trace
//!   instruction counts (never wall clock) from isolated runs, split
//!   into execute vs translate work, plus per-content translation
//!   costs keyed by bytecode-content hash.
//! * [`sim`] — a discrete-event fleet simulation on a **virtual
//!   clock** driven by those measured costs: open-loop arrivals,
//!   admission, FIFO dispatch to `W` simulated workers, and
//!   fleet-wide shared-cache accounting. Because every input is a
//!   deterministic instruction count, the reported throughput,
//!   latency quantiles, shed rates, and dedup rates are
//!   byte-identical on every machine and at any `--jobs` setting —
//!   wall-clock serving throughput lives in `jrt-bench` instead.
//!
//! Fuel semantics: a tenant's budget is an instruction count,
//! enforced by the VM before every bytecode
//! ([`VmConfig::fuel`](jrt_vm::VmConfig)). A job that runs out traps
//! with `FuelExhausted` after exactly `budget` bytecodes on every
//! engine configuration — metering is part of program semantics, not
//! of the host's clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cost;
pub mod pool;
pub mod sim;
pub mod traffic;

pub use admission::{AdmissionConfig, ShedReason};
pub use cost::{measure_job, measure_program, CostModel, JobCost, ProgramCost};
pub use pool::{run_fleet, FleetConfig, FleetReport, Job, JobResult};
pub use sim::{simulate, SimConfig, SimResult};
pub use traffic::{Request, Tenant, Traffic, TrafficConfig};

use jrt_vm::{CacheScope, CodeCacheConfig, VmConfig};

/// The serving tier's VM configuration: first-invocation JIT over a
/// [`CacheScope::Shared`] code cache, so a pooled VM keeps installed
/// code across [`Vm::reset_for`](jrt_vm::Vm) and byte-identical
/// method bodies deduplicate across jobs, programs, and tenants.
pub fn serve_config() -> VmConfig {
    VmConfig::jit().with_code_cache(CodeCacheConfig::default().with_scope(CacheScope::Shared))
}
