//! Admission control: a bounded queue plus per-tenant concurrency
//! caps, shedding with a reason.
//!
//! The serving tier is open-loop — arrivals do not wait for
//! capacity — so overload must be shed at the door, deterministically
//! and with a reason the operator can act on:
//!
//! * [`ShedReason::QueueFull`] — the fleet-wide backlog bound was
//!   hit. Protects latency for already-admitted jobs: a deeper queue
//!   converts shed into tail latency.
//! * [`ShedReason::TenantCap`] — the tenant already has its
//!   contracted number of jobs in the system (queued + running).
//!   Protects tenants from each other: a heavy-tailed tenant mix
//!   would otherwise let one tenant own the queue.
//!
//! The queue bound is checked first: it is the cheaper, fleet-wide
//! protection, and a full queue sheds every tenant equally.

use crate::traffic::Tenant;

/// Why a request was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full.
    QueueFull,
    /// The tenant's concurrency cap (queued + running) was reached.
    TenantCap,
}

/// Admission parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Fleet-wide bound on queued (admitted, not yet running) jobs.
    pub queue_capacity: usize,
}

/// Admission state: the queue depth and per-tenant queued counts.
/// The caller (the fleet simulator) owns the actual queue and the
/// running-job bookkeeping; this tracks exactly what the admission
/// decision needs.
#[derive(Debug, Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    tenants: Vec<Tenant>,
    queued: Vec<u32>,
    queue_len: usize,
}

impl Admission {
    /// Creates admission state for `tenants` under `cfg`.
    pub fn new(cfg: AdmissionConfig, tenants: &[Tenant]) -> Self {
        Admission {
            cfg,
            tenants: tenants.to_vec(),
            queued: vec![0; tenants.len()],
            queue_len: 0,
        }
    }

    /// Decides admission for a request from `tenant` that currently
    /// has `running` jobs executing. On success the request is
    /// counted as queued; the caller must pair it with
    /// [`Admission::dequeue`] when a worker picks it up.
    ///
    /// # Errors
    ///
    /// Returns the [`ShedReason`] when the request must be shed.
    pub fn try_admit(&mut self, tenant: u16, running: u32) -> Result<(), ShedReason> {
        if self.queue_len >= self.cfg.queue_capacity {
            return Err(ShedReason::QueueFull);
        }
        let t = usize::from(tenant);
        if self.queued[t] + running >= self.tenants[t].cap {
            return Err(ShedReason::TenantCap);
        }
        self.queued[t] += 1;
        self.queue_len += 1;
        Ok(())
    }

    /// Records that a queued request of `tenant` was handed to a
    /// worker (it is now `running`, no longer queued).
    pub fn dequeue(&mut self, tenant: u16) {
        let t = usize::from(tenant);
        debug_assert!(self.queued[t] > 0 && self.queue_len > 0);
        self.queued[t] -= 1;
        self.queue_len -= 1;
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Vec<Tenant> {
        vec![Tenant { fuel: 1000, cap: 2 }, Tenant { fuel: 1000, cap: 1 }]
    }

    #[test]
    fn queue_bound_sheds_everyone() {
        let mut a = Admission::new(AdmissionConfig { queue_capacity: 1 }, &two_tenants());
        assert!(a.try_admit(0, 0).is_ok());
        assert_eq!(a.try_admit(0, 0), Err(ShedReason::QueueFull));
        assert_eq!(a.try_admit(1, 0), Err(ShedReason::QueueFull));
        a.dequeue(0);
        assert_eq!(a.queue_len(), 0);
        assert!(a.try_admit(1, 0).is_ok());
    }

    #[test]
    fn tenant_cap_counts_queued_plus_running() {
        let mut a = Admission::new(AdmissionConfig { queue_capacity: 10 }, &two_tenants());
        // Tenant 0, cap 2: one running + one queued = at cap.
        assert!(a.try_admit(0, 1).is_ok());
        assert_eq!(a.try_admit(0, 1), Err(ShedReason::TenantCap));
        // Other tenants are unaffected.
        assert!(a.try_admit(1, 0).is_ok());
        assert_eq!(a.try_admit(1, 1), Err(ShedReason::TenantCap));
        // Once the running job finishes, tenant 0 fits again.
        assert!(a.try_admit(0, 0).is_ok());
    }

    #[test]
    fn queue_full_takes_precedence_over_tenant_cap() {
        let mut a = Admission::new(AdmissionConfig { queue_capacity: 1 }, &two_tenants());
        assert!(a.try_admit(0, 0).is_ok());
        // Tenant 1 at cap AND queue full: the fleet-wide reason wins.
        assert_eq!(a.try_admit(1, 1), Err(ShedReason::QueueFull));
    }
}
