//! Discrete-event fleet simulation on a virtual clock.
//!
//! The study question — "what does a fleet of `W` VM workers do to
//! throughput, tail latency, shed rate, and cache dedup?" — must be
//! answered *deterministically* (the report is golden-pinned and
//! diffed across `--jobs` settings in CI), so wall time is banned
//! from the model. Instead:
//!
//! * One **virtual nanosecond** per measured trace instruction
//!   ([`crate::cost`]). A job's base service time is its
//!   execute-phase instruction count.
//! * Arrivals are **open-loop**: the traffic stream's abstract
//!   arrival units are scaled by [`SimConfig::interarrival_unit_ns`]
//!   and never wait for capacity — overload is shed at admission,
//!   exactly as [`crate::admission`] specifies.
//! * Dispatch is non-preemptive FIFO to the earliest-free of `W`
//!   workers (lowest index breaking ties). The real pool steals
//!   rather than FIFOs, but the modeled fleet and the real fleet
//!   agree on everything the report claims: per-job outcomes,
//!   admission decisions, and cache accounting.
//! * The shared code cache is modeled as one fleet-wide set of
//!   translated bytecode contents, charged in **dispatch order**: the
//!   first job to touch a content pays its translate instructions as
//!   extra service time; every later job — any tenant — hits.
//!
//! Same `(traffic, costs, config)` in, byte-identical [`SimResult`]
//! out, on every machine, at any `--jobs`.

use crate::admission::{Admission, AdmissionConfig, ShedReason};
use crate::cost::CostModel;
use crate::traffic::Traffic;
use jrt_testkit::stats::LatencyHistogram;
use std::collections::{HashSet, VecDeque};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulated workers (resident VMs).
    pub workers: usize,
    /// Bound on queued (admitted, not yet dispatched) jobs.
    pub queue_capacity: usize,
    /// Virtual nanoseconds per 1000 abstract arrival units — the
    /// knob that sets offered load against the measured service
    /// times.
    pub interarrival_unit_ns: u64,
}

/// What the simulated fleet did.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Requests offered (the whole arrival stream).
    pub offered: usize,
    /// Requests that ran to an outcome.
    pub completed: usize,
    /// Requests shed because the bounded queue was full.
    pub shed_queue_full: usize,
    /// Requests shed at the tenant's concurrency cap.
    pub shed_tenant_cap: usize,
    /// Completed requests whose outcome was a fuel trap.
    pub fuel_exhausted: usize,
    /// Translated-content lookups served by the fleet-wide cache.
    pub cache_hits: u64,
    /// Contents translated (charged to the first toucher).
    pub cache_misses: u64,
    /// Virtual time of the last completion.
    pub makespan_ns: u64,
    /// Sojourn times (completion − arrival) of completed requests.
    pub latencies: LatencyHistogram,
}

impl SimResult {
    /// Completions per virtual second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / self.makespan_ns as f64
    }

    /// Shed requests (both reasons).
    pub fn shed(&self) -> usize {
        self.shed_queue_full + self.shed_tenant_cap
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed() as f64 / self.offered as f64
    }

    /// Fraction of cache lookups served warm (cross-job,
    /// cross-tenant content dedup).
    pub fn dedup_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// A dispatched job's bookkeeping.
struct Running {
    tenant: u16,
    completion_ns: u64,
}

/// Runs the fleet model over `traffic` with measured `costs`.
///
/// # Panics
///
/// Panics if `cfg.workers` is zero.
pub fn simulate(traffic: &Traffic, costs: &CostModel, cfg: &SimConfig) -> SimResult {
    assert!(cfg.workers > 0, "simulated fleet needs a worker");
    let mut admission = Admission::new(
        AdmissionConfig {
            queue_capacity: cfg.queue_capacity,
        },
        &traffic.tenants,
    );
    let mut worker_free = vec![0u64; cfg.workers];
    // Queue of admitted request indices, FIFO.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut running: Vec<Running> = Vec::new();
    let mut translated: HashSet<u64> = HashSet::new();

    let mut result = SimResult {
        offered: traffic.requests.len(),
        completed: 0,
        shed_queue_full: 0,
        shed_tenant_cap: 0,
        fuel_exhausted: 0,
        cache_hits: 0,
        cache_misses: 0,
        makespan_ns: 0,
        latencies: LatencyHistogram::new(),
    };

    let arrival_ns = |unit: u64| -> u64 {
        (u128::from(unit) * u128::from(cfg.interarrival_unit_ns) / 1000) as u64
    };

    // Dispatches queued jobs to workers that are (or become) free no
    // later than `now`. Charges the shared cache in dispatch order.
    let dispatch = |now: u64,
                    queue: &mut VecDeque<usize>,
                    worker_free: &mut [u64],
                    admission: &mut Admission,
                    running: &mut Vec<Running>,
                    translated: &mut HashSet<u64>,
                    result: &mut SimResult| {
        while let Some(&req_idx) = queue.front() {
            let (w, free) = worker_free
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(i, f)| (f, i))
                .expect("workers > 0");
            if free > now {
                break;
            }
            queue.pop_front();
            let r = &traffic.requests[req_idx];
            admission.dequeue(r.tenant);
            let fuel = traffic.fuel_of(r);
            let job = costs.job(r.program, fuel);
            let mut service = job.exec_insts.max(1);
            for &(hash, tcost) in &costs.programs[r.program].contents {
                if translated.insert(hash) {
                    service += tcost;
                    result.cache_misses += 1;
                } else {
                    result.cache_hits += 1;
                }
            }
            let start = free.max(arrival_ns(r.arrival_unit));
            let completion = start + service;
            worker_free[w] = completion;
            running.push(Running {
                tenant: r.tenant,
                completion_ns: completion,
            });
            result.completed += 1;
            if job.fuel_exhausted {
                result.fuel_exhausted += 1;
            }
            result.makespan_ns = result.makespan_ns.max(completion);
            result
                .latencies
                .record(completion - arrival_ns(r.arrival_unit));
        }
    };

    for (i, r) in traffic.requests.iter().enumerate() {
        let now = arrival_ns(r.arrival_unit);
        dispatch(
            now,
            &mut queue,
            &mut worker_free,
            &mut admission,
            &mut running,
            &mut translated,
            &mut result,
        );
        let in_flight = running
            .iter()
            .filter(|j| j.tenant == r.tenant && j.completion_ns > now)
            .count() as u32;
        match admission.try_admit(r.tenant, in_flight) {
            Ok(()) => {
                queue.push_back(i);
                // A free worker takes the job immediately.
                dispatch(
                    now,
                    &mut queue,
                    &mut worker_free,
                    &mut admission,
                    &mut running,
                    &mut translated,
                    &mut result,
                );
            }
            Err(ShedReason::QueueFull) => result.shed_queue_full += 1,
            Err(ShedReason::TenantCap) => result.shed_tenant_cap += 1,
        }
    }
    // No further arrivals: drain the backlog.
    dispatch(
        u64::MAX,
        &mut queue,
        &mut worker_free,
        &mut admission,
        &mut running,
        &mut translated,
        &mut result,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficConfig;
    use jrt_workloads::Size;

    fn study_inputs() -> (Traffic, CostModel) {
        let t = Traffic::generate(&TrafficConfig {
            seed: 0x5EED_0042,
            requests: 120,
            tenants: 8,
            fuzz_programs: 2,
            size: Size::Tiny,
        });
        let m = CostModel::build(&t);
        (t, m)
    }

    fn cfg(workers: usize, traffic: &Traffic, costs: &CostModel) -> SimConfig {
        // Oversubscribe: mean service ≈ 12× the scaled mean
        // interarrival, so even 8 workers stay saturated.
        let mean = costs.mean_service_insts(traffic);
        SimConfig {
            workers,
            queue_capacity: 16,
            interarrival_unit_ns: (mean / 12).max(1),
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let (t, m) = study_inputs();
        let c = cfg(4, &t, &m);
        let a = simulate(&t, &m, &c);
        let b = simulate(&t, &m, &c);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed_queue_full, b.shed_queue_full);
        assert_eq!(a.shed_tenant_cap, b.shed_tenant_cap);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.latencies.quantiles(), b.latencies.quantiles());
    }

    #[test]
    fn more_workers_complete_more_under_overload() {
        let (t, m) = study_inputs();
        let one = simulate(&t, &m, &cfg(1, &t, &m));
        let eight = simulate(&t, &m, &cfg(8, &t, &m));
        assert!(one.shed() > 0, "one worker must shed under 12x load");
        assert!(eight.completed >= one.completed);
        assert!(
            eight.throughput_per_sec() > one.throughput_per_sec() * 2.0,
            "8 workers: {:.1}/s vs 1 worker: {:.1}/s",
            eight.throughput_per_sec(),
            one.throughput_per_sec()
        );
    }

    #[test]
    fn shared_cache_dedups_across_jobs_and_tenants() {
        let (t, m) = study_inputs();
        let r = simulate(&t, &m, &cfg(4, &t, &m));
        assert!(r.cache_misses > 0, "first touch translates");
        assert!(r.cache_hits > 0, "the Zipf head repeats contents");
        assert!(r.dedup_rate() > 0.0);
        // Misses are bounded by the distinct contents in the catalog.
        let distinct: std::collections::HashSet<u64> = m
            .programs
            .iter()
            .flat_map(|p| p.contents.iter().map(|&(h, _)| h))
            .collect();
        assert!(r.cache_misses <= distinct.len() as u64);
    }

    #[test]
    fn conservation_offered_equals_completed_plus_shed() {
        let (t, m) = study_inputs();
        for workers in [1, 2, 8] {
            let r = simulate(&t, &m, &cfg(workers, &t, &m));
            assert_eq!(r.offered, r.completed + r.shed());
            assert_eq!(r.latencies.len(), r.completed);
            assert!(r.makespan_ns > 0);
        }
    }
}
