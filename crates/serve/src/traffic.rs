//! Seeded synthetic traffic: a heavy-tailed program mix over
//! multiple tenants.
//!
//! Real serving traffic is skewed twice over: a few *programs*
//! receive most requests (which is what makes a shared code cache
//! pay — the popular program's methods are translated once and hit
//! forever after), and a few *tenants* send most requests (which is
//! what admission control's per-tenant caps exist to contain). The
//! generator reproduces both skews with Zipf-like integer weights
//! from a seeded [`Rng`], so the same `(seed, config)` always yields
//! the same request stream, byte for byte.
//!
//! The program catalog mixes the paper's workloads with
//! fuzzer-generated programs ([`jrt_fuzz::gen_case`]): the former
//! model the popular, method-reusing services; the latter model the
//! long tail of one-off tenant code.

use jrt_bytecode::Program;
use jrt_fuzz::{gen_case, lower, Coverage};
use jrt_testkit::Rng;
use jrt_workloads::{suite_with_hello, Size};
use std::sync::Arc;

/// Fuel budget of an ordinary tenant: effectively unmetered for the
/// workload sizes served here, but still enforced — every tenant
/// runs under a budget.
pub const AMPLE_FUEL: u64 = 200_000_000;
/// Fuel budget of a metered ("stingy") tenant: enough to make real
/// progress, small enough that full workload runs trap
/// `FuelExhausted` mid-flight.
pub const STINGY_FUEL: u64 = 3_000;

/// Workload programs in the serving catalog, in popularity order
/// (the head of the Zipf distribution).
const CATALOG: [&str; 4] = ["hello", "compress", "db", "jess"];

/// Traffic generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Seed for every random draw.
    pub seed: u64,
    /// Number of requests in the open-loop arrival stream.
    pub requests: usize,
    /// Number of tenants.
    pub tenants: u16,
    /// Fuzzer-generated programs appended to the catalog tail.
    pub fuzz_programs: usize,
    /// Scale of the workload programs.
    pub size: Size,
}

/// One tenant's serving contract.
#[derive(Debug, Clone, Copy)]
pub struct Tenant {
    /// Per-request fuel budget in bytecodes.
    pub fuel: u64,
    /// Concurrency cap: the tenant's requests queued + running may
    /// not exceed this; excess arrivals are shed with
    /// [`ShedReason::TenantCap`](crate::ShedReason).
    pub cap: u32,
}

/// One request in the open-loop arrival stream.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Arrival time in abstract units (mean interarrival = 1000
    /// units); the simulator scales units to virtual nanoseconds
    /// against the measured service costs.
    pub arrival_unit: u64,
    /// Index into [`Traffic::programs`].
    pub program: usize,
    /// Index into [`Traffic::tenants`].
    pub tenant: u16,
}

/// A generated request stream plus the catalog it draws from.
pub struct Traffic {
    /// The program catalog, popularity order.
    pub programs: Vec<Arc<Program>>,
    /// Display names parallel to [`Traffic::programs`].
    pub names: Vec<String>,
    /// Tenant contracts.
    pub tenants: Vec<Tenant>,
    /// Requests in arrival order (`arrival_unit` nondecreasing).
    pub requests: Vec<Request>,
}

/// Draws an index from Zipf-like integer weights `w_i = 1000/(i+1)`
/// over `n` items.
fn zipf(rng: &mut Rng, n: usize) -> usize {
    let weights: Vec<u64> = (0..n).map(|i| 1000 / (i as u64 + 1)).collect();
    let total: u64 = weights.iter().sum();
    let mut r = rng.u64_in(0..total);
    for (i, w) in weights.iter().enumerate() {
        if r < *w {
            return i;
        }
        r -= w;
    }
    n - 1
}

impl Traffic {
    /// Generates the catalog, tenants, and request stream for `cfg`.
    /// Deterministic in `cfg` (including the seed).
    pub fn generate(cfg: &TrafficConfig) -> Traffic {
        let suite = suite_with_hello();
        let mut programs = Vec::new();
        let mut names = Vec::new();
        for name in CATALOG {
            let spec = suite
                .iter()
                .find(|s| s.name == name)
                .expect("catalog workload exists");
            programs.push(Arc::new((spec.build)(cfg.size)));
            names.push(name.to_string());
        }
        // The long tail: fuzzer-generated one-off tenant programs.
        // Each is generated from its own case index of the traffic
        // seed, exactly like a fuzzing round, then lowered through
        // the ordinary pipeline.
        let cov = Coverage::new();
        for i in 0..cfg.fuzz_programs {
            let spec = gen_case(cfg.seed ^ 0x5EED_CAFE, i as u64, &cov);
            programs.push(Arc::new(lower(&spec).expect("generated specs lower")));
            names.push(format!("fuzz-{i}"));
        }

        // Tenants: every fourth runs metered; caps cycle 1..=3 so
        // the admission study sees heterogeneous contracts.
        let tenants: Vec<Tenant> = (0..cfg.tenants)
            .map(|t| Tenant {
                fuel: if t % 4 == 3 { STINGY_FUEL } else { AMPLE_FUEL },
                cap: 1 + u32::from(t % 3),
            })
            .collect();

        // Open-loop arrivals: uniform interarrivals in [500, 1500)
        // units (mean 1000), program and tenant drawn heavy-tailed.
        let mut rng = Rng::for_case(cfg.seed, 0);
        let mut clock = 0u64;
        let requests = (0..cfg.requests)
            .map(|_| {
                clock += rng.u64_in(500..1500);
                Request {
                    arrival_unit: clock,
                    program: zipf(&mut rng, programs.len()),
                    tenant: zipf(&mut rng, tenants.len()) as u16,
                }
            })
            .collect();

        Traffic {
            programs,
            names,
            tenants,
            requests,
        }
    }

    /// The fuel budget governing `r` (its tenant's contract).
    pub fn fuel_of(&self, r: &Request) -> u64 {
        self.tenants[usize::from(r.tenant)].fuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TrafficConfig {
        TrafficConfig {
            seed: 0x5EED_0042,
            requests: 64,
            tenants: 8,
            fuzz_programs: 3,
            size: Size::Tiny,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Traffic::generate(&tiny_cfg());
        let b = Traffic::generate(&tiny_cfg());
        assert_eq!(a.names, b.names);
        assert_eq!(a.requests.len(), 64);
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!(
                (x.arrival_unit, x.program, x.tenant),
                (y.arrival_unit, y.program, y.tenant)
            );
        }
    }

    #[test]
    fn arrivals_are_open_loop_and_sorted() {
        let t = Traffic::generate(&tiny_cfg());
        let mut prev = 0;
        for r in &t.requests {
            assert!(r.arrival_unit > prev, "strictly increasing arrivals");
            prev = r.arrival_unit;
            assert!(r.program < t.programs.len());
            assert!(usize::from(r.tenant) < t.tenants.len());
        }
    }

    #[test]
    fn mix_is_heavy_tailed_with_metered_tenants() {
        let cfg = TrafficConfig {
            requests: 512,
            ..tiny_cfg()
        };
        let t = Traffic::generate(&cfg);
        let mut per_program = vec![0usize; t.programs.len()];
        for r in &t.requests {
            per_program[r.program] += 1;
        }
        // The head of the catalog dominates the tail.
        assert!(per_program[0] > per_program[t.programs.len() - 1]);
        assert!(
            per_program[0] * 3 > t.requests.len(),
            "the most popular program draws over a third of traffic"
        );
        // Both tenant classes are present.
        assert!(t.tenants.iter().any(|x| x.fuel == STINGY_FUEL));
        assert!(t.tenants.iter().any(|x| x.fuel == AMPLE_FUEL));
        assert!(t.tenants.iter().all(|x| (1..=3).contains(&x.cap)));
    }
}
